"""Pluggable distance/top-k kernels over pre-encoded ("coded") layouts.

The default neighbour path (:class:`~repro.neighbors.distance.MixedMetric`
over float64 encoded matrices) is exact and bit-pinned against the seed.
This module is the opt-in fast path: rows are packed once into a
:class:`CodedLayout` — a contiguous float32 numeric block plus int32
categorical codes — and :func:`kneighbors_blocked` streams query×base tiles
through a swappable squared-distance kernel, keeping a running k-best per
query so the full n×m distance matrix is never materialized.

Backends live in the ``DISTANCE_BACKENDS`` registry
(:mod:`repro.engine.registry`): ``"numpy"`` (float32 BLAS norm-expansion)
and ``"numba"`` (njit direct accumulation, soft-falling back to the numpy
kernel when numba is absent or fails to compile).  Selection is
``FroteConfig(distance_backend=...)`` or the ``backend=`` argument on
:class:`~repro.neighbors.brute.BruteKNN` and the samplers.

Precision and tie contract (documented in ``docs/architecture.md``):

* Distances are accumulated in float32 and returned as float64; expect
  agreement with the exact path within ~1 ulp of float32 accumulation.
* Neighbour *sets* match the exact path on tie-free data.  When several
  rows are equidistant at the k-th slot, which of them survive a tile's
  ``argpartition`` boundary is implementation-defined (but deterministic
  for a given blocking); the returned neighbours are always sorted by
  ``(distance, index)``.
* ``exclude_self`` uses :data:`CODED_SELF_DISTANCE_TOL` (plus a
  norm-relative float32 cancellation allowance) instead of the exact
  path's 1e-6 — float32 norm expansion cannot certify a zero distance
  more tightly.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass

import numpy as np

__all__ = [
    "CODED_SELF_DISTANCE_TOL",
    "CodedLayout",
    "NumbaDistanceBackend",
    "NumpyDistanceBackend",
    "NUMBA_BACKEND",
    "NUMPY_BACKEND",
    "kneighbors_blocked",
    "resolve_distance_backend",
]


#: Distances below this are treated as "the query itself" for
#: ``exclude_self`` on the coded (float32) path.  The exact path's 1e-6
#: (:data:`repro.neighbors.brute.SELF_DISTANCE_TOL`) is unreachable here:
#: the float32 norm expansion ``q²+b²-2qb`` of a self-match cancels with
#: error proportional to the row norm, so the tolerance is the max of this
#: floor and a norm-relative allowance (see :func:`kneighbors_blocked`).
CODED_SELF_DISTANCE_TOL = 1e-3

# Norm-relative squared-distance allowance for self-match detection:
# ~64 ulps of the float32 intermediates involved in the cancellation.
_SELF_SQDIST_RTOL = 64.0 * float(np.finfo(np.float32).eps)

#: Default tile shape: 256×1024 float32 distances ≈ 1 MiB — sized so a
#: tile plus its operand slices stay L2-resident on common cores.
DEFAULT_QUERY_BLOCK = 256
DEFAULT_BASE_BLOCK = 1024


@dataclass(frozen=True)
class CodedLayout:
    """Rows packed for the kernel layer: split, contiguous, narrow.

    Attributes
    ----------
    num:
        ``(n, d_num)`` float32, C-contiguous — range-scaled numeric
        features (the numeric block of the float64 encoding, cast once).
    cat:
        ``(n, d_cat)`` int32, C-contiguous — categorical codes.  Integer
        compares replace the exact path's float64 broadcast ``!=``.
    num_sq:
        ``(n,)`` float32 — per-row squared norms of ``num``, precomputed
        for the norm-expansion kernel.
    """

    num: np.ndarray
    cat: np.ndarray
    num_sq: np.ndarray

    @property
    def n_rows(self) -> int:
        return self.num.shape[0]

    @classmethod
    def from_encoded(cls, E: np.ndarray, cat_mask: np.ndarray) -> "CodedLayout":
        """Pack a float64 encoded matrix (scaled numerics + cat codes).

        The float64 scaling happens first (in
        :meth:`~repro.neighbors.distance.TableNeighborSpace.encode`), then
        the cast — so a cached layout is bitwise-reproducible from the
        exact encoding regardless of how it was built.
        """
        E = np.asarray(E, dtype=np.float64)
        cat_mask = np.asarray(cat_mask, dtype=bool)
        if E.ndim != 2:
            raise ValueError(f"encoded matrix must be 2-D, got shape {E.shape}")
        if cat_mask.size != E.shape[1]:
            raise ValueError(
                f"cat_mask has {cat_mask.size} entries for {E.shape[1]} columns"
            )
        num = np.ascontiguousarray(E[:, ~cat_mask], dtype=np.float32)
        cat = np.ascontiguousarray(E[:, cat_mask], dtype=np.int32)
        num_sq = np.einsum("ij,ij->i", num, num)  # float32 accumulation
        return cls(num=num, cat=cat, num_sq=num_sq)

    def take(self, indices: np.ndarray) -> "CodedLayout":
        """Row-gathered sub-layout (for querying a subset against the base)."""
        indices = np.asarray(indices)
        return CodedLayout(
            num=np.ascontiguousarray(self.num[indices]),
            cat=np.ascontiguousarray(self.cat[indices]),
            num_sq=np.ascontiguousarray(self.num_sq[indices]),
        )

    def slice(self, start: int, stop: int) -> "CodedLayout":
        """Zero-copy row slice (tiles of a C-contiguous layout stay views)."""
        return CodedLayout(
            num=self.num[start:stop],
            cat=self.cat[start:stop],
            num_sq=self.num_sq[start:stop],
        )


class NumpyDistanceBackend:
    """Default tile kernel: float32 sgemm norm expansion + int32 compares.

    Computes *squared* HEOM distances for one query×base tile; the blocked
    driver defers the sqrt to the selected k rows.
    """

    name = "numpy"

    @property
    def available(self) -> bool:
        return True

    def sqdist_tile(
        self,
        qnum: np.ndarray,
        qsq: np.ndarray,
        qcat: np.ndarray,
        bnum: np.ndarray,
        bsq: np.ndarray,
        bcat: np.ndarray,
    ) -> np.ndarray:
        if qnum.shape[1]:
            sq = qsq[:, None] + bsq[None, :] - 2.0 * (qnum @ bnum.T)
            np.maximum(sq, 0.0, out=sq)
        else:
            sq = np.zeros((qnum.shape[0], bnum.shape[0]), dtype=np.float32)
        for j in range(qcat.shape[1]):
            sq += qcat[:, j][:, None] != bcat[:, j][None, :]
        return sq


class NumbaDistanceBackend:
    """Optional njit tile kernel with a warn-once soft fallback.

    The compiled kernel accumulates squared differences directly (no norm
    expansion), which is numerically *different* from the numpy kernel but
    inside the same float32 parity envelope.  When numba is missing — or
    import/compilation fails for any reason — the backend falls back to
    :class:`NumpyDistanceBackend`, whose output it then matches bitwise,
    and warns exactly once.
    """

    name = "numba"

    def __init__(self) -> None:
        self._kernel = None
        self._failed = False
        self._warned = False
        self._fallback = NumpyDistanceBackend()

    @property
    def available(self) -> bool:
        """Whether the compiled kernel is (or can plausibly become) usable."""
        if self._failed:
            return False
        if self._kernel is not None:
            return True
        try:
            import numba  # noqa: F401
        except Exception:
            return False
        return True

    def _ensure_kernel(self):
        if self._kernel is not None or self._failed:
            return self._kernel
        try:
            from numba import njit

            @njit(cache=False, fastmath=False, parallel=False)
            def _sqdist(qnum, qcat, bnum, bcat, out):  # pragma: no cover
                for i in range(out.shape[0]):
                    for j in range(out.shape[1]):
                        acc = np.float32(0.0)
                        for f in range(qnum.shape[1]):
                            d = qnum[i, f] - bnum[j, f]
                            acc += d * d
                        for f in range(qcat.shape[1]):
                            if qcat[i, f] != bcat[j, f]:
                                acc += np.float32(1.0)
                        out[i, j] = acc

            # Compile eagerly on a 1×1 probe so any failure surfaces here
            # (and is downgraded to the fallback) rather than mid-query.
            probe_num = np.zeros((1, 1), dtype=np.float32)
            probe_cat = np.zeros((1, 1), dtype=np.int32)
            probe_out = np.empty((1, 1), dtype=np.float32)
            _sqdist(probe_num, probe_cat, probe_num, probe_cat, probe_out)
            self._kernel = _sqdist
        except Exception as exc:  # any import/compile failure → numpy
            self._failed = True
            if not self._warned:
                self._warned = True
                warnings.warn(
                    f"numba distance backend unavailable ({exc!r}); "
                    "falling back to the numpy kernel",
                    RuntimeWarning,
                    stacklevel=4,
                )
        return self._kernel

    def sqdist_tile(self, qnum, qsq, qcat, bnum, bsq, bcat) -> np.ndarray:
        kernel = self._ensure_kernel()
        if kernel is None:
            return self._fallback.sqdist_tile(qnum, qsq, qcat, bnum, bsq, bcat)
        out = np.empty((qnum.shape[0], bnum.shape[0]), dtype=np.float32)
        kernel(qnum, qcat, bnum, bcat, out)
        return out


# Singletons: registry entries are *instances* so per-process state (the
# numba warn-once flag, the compiled kernel) persists across lookups.
NUMPY_BACKEND = NumpyDistanceBackend()
NUMBA_BACKEND = NumbaDistanceBackend()


def resolve_distance_backend(backend):
    """Accept a backend instance or a ``DISTANCE_BACKENDS`` name."""
    if backend is None:
        return NUMPY_BACKEND
    if isinstance(backend, str):
        # Imported lazily: the registry module pulls the whole engine
        # package, which transitively imports this module.
        from repro.engine.registry import DISTANCE_BACKENDS

        return DISTANCE_BACKENDS.get(backend)
    return backend


def _sort_tile_by_dist_then_index(tile_d, tile_i):
    """Sort each row's candidates by ``(distance, index)`` via two stable passes."""
    order = np.argsort(tile_i, axis=1, kind="stable")
    tile_d = np.take_along_axis(tile_d, order, axis=1)
    tile_i = np.take_along_axis(tile_i, order, axis=1)
    order = np.argsort(tile_d, axis=1, kind="stable")
    return (
        np.take_along_axis(tile_d, order, axis=1),
        np.take_along_axis(tile_i, order, axis=1),
    )


def kneighbors_blocked(
    query: CodedLayout,
    base: CodedLayout,
    k: int,
    *,
    exclude_self: bool = False,
    backend=None,
    query_block: int = DEFAULT_QUERY_BLOCK,
    base_block: int = DEFAULT_BASE_BLOCK,
) -> tuple[np.ndarray, np.ndarray]:
    """Blocked k-nearest-neighbour search over coded layouts.

    Processes ``query_block × base_block`` tiles and keeps a per-query
    running k-best, so peak distance storage is one tile plus the k-best —
    never the full ``n_query × n_base`` matrix.

    Returns ``(distances, indices)`` shaped like
    :meth:`repro.neighbors.brute.BruteKNN.kneighbors`: float64 distances
    sorted ascending per row (ties broken by index) and ``intp`` indices
    into the base layout.
    """
    if k <= 0:
        raise ValueError(f"k must be positive, got {k}")
    be = resolve_distance_backend(backend)
    n_q, n_b = query.n_rows, base.n_rows
    budget = k + 1 if exclude_self else k
    k_eff = min(budget, n_b)
    if k_eff == 0:
        return np.zeros((n_q, 0)), np.zeros((n_q, 0), dtype=np.intp)

    out_k = min(k, max(k_eff - 1, 0)) if exclude_self else k_eff
    if exclude_self and out_k == 0:
        return np.zeros((n_q, 0)), np.zeros((n_q, 0), dtype=np.intp)
    dist_out = np.empty((n_q, out_k), dtype=np.float64)
    idx_out = np.empty((n_q, out_k), dtype=np.intp)

    for qs in range(0, n_q, query_block):
        qe = min(qs + query_block, n_q)
        q = query.slice(qs, qe)
        best_d = None  # (qe-qs, <=k_eff) squared distances, (d, i)-sorted
        best_i = None
        for bs in range(0, n_b, base_block):
            be_stop = min(bs + base_block, n_b)
            b = base.slice(bs, be_stop)
            sq = be.sqdist_tile(q.num, q.num_sq, q.cat, b.num, b.num_sq, b.cat)
            nb = be_stop - bs
            if nb > k_eff:
                part = np.argpartition(sq, k_eff - 1, axis=1)[:, :k_eff]
                tile_d = np.take_along_axis(sq, part, axis=1)
                tile_i = part.astype(np.intp) + bs
            else:
                tile_d = sq
                tile_i = np.broadcast_to(
                    np.arange(bs, be_stop, dtype=np.intp), sq.shape
                ).copy()
            tile_d, tile_i = _sort_tile_by_dist_then_index(tile_d, tile_i)
            if best_d is None:
                best_d, best_i = tile_d[:, :k_eff], tile_i[:, :k_eff]
                continue
            # Merge running best with this tile.  Both halves are
            # (distance, index)-sorted and every running index precedes
            # every tile index (tiles advance left to right), so a stable
            # sort on distance alone preserves the tie contract.
            cand_d = np.concatenate([best_d, tile_d], axis=1)
            cand_i = np.concatenate([best_i, tile_i], axis=1)
            order = np.argsort(cand_d, axis=1, kind="stable")[:, :k_eff]
            best_d = np.take_along_axis(cand_d, order, axis=1)
            best_i = np.take_along_axis(cand_i, order, axis=1)

        dist = np.sqrt(best_d.astype(np.float64, copy=False))
        if not exclude_self:
            dist_out[qs:qe] = dist[:, :out_k]
            idx_out[qs:qe] = best_i[:, :out_k]
            continue
        # Self-match detection on the *squared* distance, with a
        # norm-relative allowance for float32 cancellation error.
        tol_sq = np.maximum(
            CODED_SELF_DISTANCE_TOL**2,
            _SELF_SQDIST_RTOL * (1.0 + q.num_sq.astype(np.float64)),
        )
        offset = (best_d[:, 0].astype(np.float64) <= tol_sq).astype(np.intp)
        cols = offset[:, None] + np.arange(out_k, dtype=np.intp)[None, :]
        dist_out[qs:qe] = np.take_along_axis(dist, cols, axis=1)
        idx_out[qs:qe] = np.take_along_axis(best_i, cols, axis=1)

    return dist_out, idx_out
