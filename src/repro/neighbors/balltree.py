"""Ball tree for exact k-nearest-neighbour search under any metric.

The paper configures scikit-learn's ``NearestNeighbors`` with
``algorithm="ball_tree"``; this module provides the equivalent structure.
Balls are centred on actual data points (so the tree works for any true
metric, including the HEOM :class:`~repro.neighbors.distance.MixedMetric`),
and queries prune subtrees with the triangle inequality
``d(q, ball) >= d(q, center) - radius``.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass

import numpy as np

from repro.data.builder import append_rows_2d
from repro.neighbors.brute import SELF_DISTANCE_TOL
from repro.neighbors.distance import MixedMetric
from repro.utils.rng import RandomState, check_random_state


@dataclass
class _Node:
    center: int  # row index of the pivot point
    radius: float
    indices: np.ndarray | None  # leaf: member row indices; internal: None
    left: "_Node | None" = None
    right: "_Node | None" = None


class BallTree:
    """Exact KNN index with data-point pivots.

    Parameters
    ----------
    metric:
        ``"euclidean"`` or a :class:`MixedMetric`.
    leaf_size:
        Maximum number of points stored in a leaf.
    random_state:
        Seed for pivot selection (construction only; queries are exact
        regardless).
    """

    def __init__(
        self,
        metric: str | MixedMetric = "euclidean",
        *,
        leaf_size: int = 32,
        random_state: RandomState = 0,
        rebuild_threshold: float = 0.5,
    ) -> None:
        if leaf_size < 1:
            raise ValueError(f"leaf_size must be >= 1, got {leaf_size}")
        if rebuild_threshold <= 0:
            raise ValueError(
                f"rebuild_threshold must be positive, got {rebuild_threshold}"
            )
        self.metric = metric
        self.leaf_size = leaf_size
        self.random_state = random_state
        self.rebuild_threshold = rebuild_threshold
        self._X: np.ndarray | None = None
        self._buf: np.ndarray | None = None  # growable storage; _X = _buf[:_n]
        self._n = 0
        self._tree_n = 0  # rows covered by _root; [_tree_n, _n) are pending
        self._root: _Node | None = None

    # ------------------------------------------------------------------ #
    def fit(self, X: np.ndarray) -> "BallTree":
        """Build the tree over the reference matrix.

        Parameters
        ----------
        X : ndarray of shape (n_samples, n_features)
            Encoded reference rows (see
            :class:`~repro.neighbors.distance.TableNeighborSpace`).

        Returns
        -------
        BallTree
            ``self``, for chaining.
        """
        X = np.asarray(X, dtype=np.float64)
        if X.ndim != 2:
            raise ValueError(f"X must be 2-D, got shape {X.shape}")
        self._buf = X
        self._n = X.shape[0]
        self._tree_n = X.shape[0]
        self._X = X
        rng = check_random_state(self.random_state)
        if X.shape[0]:
            self._root = self._build(np.arange(X.shape[0], dtype=np.intp), rng)
        else:
            self._root = None
        return self

    def append(self, X_new: np.ndarray) -> "BallTree":
        """Insert new rows, amortizing tree maintenance.

        Appended rows join a *pending* region that queries scan exactly
        (a brute-force pass merged into the tree search), so results stay
        identical to a fresh ``fit`` on the concatenated matrix —
        bit-for-bit whenever neighbour distances are distinct, which is
        the only case where tree shape could matter.  When the pending
        region outgrows ``rebuild_threshold`` × the tree size, the whole
        tree is rebuilt over all rows with the configured
        ``random_state`` — byte-equivalent to refitting from scratch —
        giving amortized O(log n) insertion cost per row.

        Parameters
        ----------
        X_new : ndarray of shape (n_new, n_features)
            Rows to add, same feature layout as the fitted matrix.

        Returns
        -------
        BallTree
            ``self``, for chaining.
        """
        if self._buf is None:
            return self.fit(X_new)
        X_new = np.asarray(X_new, dtype=np.float64)
        if X_new.ndim != 2 or X_new.shape[1] != self._buf.shape[1]:
            raise ValueError(
                f"X_new must have shape (n, {self._buf.shape[1]}), "
                f"got {X_new.shape}"
            )
        if X_new.shape[0] == 0:
            return self
        self._buf = append_rows_2d(self._buf, self._n, X_new)
        self._n += X_new.shape[0]
        self._X = self._buf[: self._n]
        pending = self._n - self._tree_n
        if self._root is None or pending > self.rebuild_threshold * self._tree_n:
            self._rebuild()
        return self

    def _rebuild(self) -> None:
        """Re-run construction over all rows — identical to a fresh fit."""
        self._tree_n = self._n
        rng = check_random_state(self.random_state)
        if self._n:
            self._root = self._build(np.arange(self._n, dtype=np.intp), rng)
        else:
            self._root = None

    def checkpoint(self) -> tuple[int, int, "_Node | None"]:
        """Opaque token capturing the index state before staged appends.

        Restoring via :meth:`rollback` is O(1) even across an amortized
        rebuild: tree nodes only reference row indices below their
        build-time size, and committed rows are never overwritten.
        """
        if self._buf is None:
            raise RuntimeError("BallTree is not fitted")
        return (self._n, self._tree_n, self._root)

    def rollback(self, token: tuple[int, int, "_Node | None"]) -> None:
        """Forget every row appended since ``token`` was captured."""
        if self._buf is None:
            raise RuntimeError("BallTree is not fitted")
        n, tree_n, root = token
        if not 0 <= tree_n <= n <= self._n:
            raise ValueError(f"invalid checkpoint token {token!r}")
        self._n = n
        self._tree_n = tree_n
        self._root = root
        self._X = self._buf[: self._n]

    @property
    def n_samples(self) -> int:
        """Number of fitted reference rows."""
        if self._X is None:
            raise RuntimeError("BallTree is not fitted")
        return self._X.shape[0]

    def _dists(self, q: np.ndarray, idx: np.ndarray) -> np.ndarray:
        assert self._X is not None
        sub = self._X[idx]
        if isinstance(self.metric, MixedMetric):
            return self.metric.dists_to(q, sub)
        diff = sub - q
        return np.sqrt(np.einsum("ij,ij->i", diff, diff))

    def _build(self, indices: np.ndarray, rng: np.random.Generator) -> _Node:
        assert self._X is not None
        # Pivot: the point furthest from a random member — a classic cheap
        # approximation of the set diameter endpoint.
        seed_pt = int(indices[rng.integers(indices.size)])
        d_seed = self._dists(self._X[seed_pt], indices)
        center = int(indices[int(np.argmax(d_seed))])
        d_center = self._dists(self._X[center], indices)
        radius = float(d_center.max(initial=0.0))
        if indices.size <= self.leaf_size:
            return _Node(center=center, radius=radius, indices=indices)
        # Partition by median distance to the pivot.
        median = float(np.median(d_center))
        near = indices[d_center <= median]
        far = indices[d_center > median]
        if near.size == 0 or far.size == 0:
            # Degenerate (many duplicate points): fall back to a leaf.
            return _Node(center=center, radius=radius, indices=indices)
        return _Node(
            center=center,
            radius=radius,
            indices=None,
            left=self._build(near, rng),
            right=self._build(far, rng),
        )

    # ------------------------------------------------------------------ #
    def kneighbors(
        self, Q: np.ndarray, k: int, *, exclude_self: bool = False
    ) -> tuple[np.ndarray, np.ndarray]:
        """Return (distances, indices) of the ``k`` nearest fitted rows.

        Mirrors :meth:`repro.neighbors.brute.BruteKNN.kneighbors`, including
        ``exclude_self`` handling for leave-one-out queries.
        """
        if self._X is None:
            raise RuntimeError("BallTree is not fitted")
        Q = np.asarray(Q, dtype=np.float64)
        if Q.ndim != 2:
            raise ValueError(f"Q must be 2-D, got shape {Q.shape}")
        if k <= 0:
            raise ValueError(f"k must be positive, got {k}")
        n = self._X.shape[0]
        budget = k + 1 if exclude_self else k
        k_eff = min(budget, n)
        out_k = min(k, n - 1) if exclude_self else min(k, n)
        out_k = max(out_k, 0)
        dists = np.full((Q.shape[0], out_k), np.inf)
        idxs = np.zeros((Q.shape[0], out_k), dtype=np.intp)
        # Rows appended since the last (re)build live outside the tree;
        # they are scanned exactly, with the same heap discipline as a
        # leaf, so appends never change query results (see append()).
        pending = np.arange(self._tree_n, self._n, dtype=np.intp)
        for r in range(Q.shape[0]):
            heap: list[tuple[float, int]] = []  # max-heap via negated dists
            q = Q[r]
            if self._root is not None and k_eff:
                d_root = float(self._dists(q, np.array([self._root.center]))[0])
                self._query_one(q, self._root, k_eff, heap, d_root)
            if pending.size and k_eff:
                ds = self._dists(q, pending)
                for d, i in zip(ds.tolist(), pending.tolist()):
                    if len(heap) < k_eff:
                        heapq.heappush(heap, (-d, i))
                    elif d < -heap[0][0]:
                        heapq.heapreplace(heap, (-d, i))
            if not heap:
                continue
            neg_d = np.array([p[0] for p in heap])
            found = np.array([p[1] for p in heap], dtype=np.intp)
            # Sort by (distance asc, index asc) — matches sorted() on (d, i).
            order = np.lexsort((found, -neg_d))
            d_sorted = -neg_d[order]
            i_sorted = found[order]
            start = 1 if (exclude_self and d_sorted[0] < SELF_DISTANCE_TOL) else 0
            take = min(out_k, d_sorted.size - start)
            dists[r, :take] = d_sorted[start : start + take]
            idxs[r, :take] = i_sorted[start : start + take]
        return dists, idxs

    def _query_one(
        self,
        q: np.ndarray,
        node: _Node,
        k: int,
        heap: list[tuple[float, int]],
        d_center: float,
    ) -> None:
        """Recursively collect the ``k`` nearest points into ``heap``.

        ``d_center`` is ``d(q, node.center)``, computed by the caller so every
        pivot distance is evaluated exactly once per query (the caller needs
        it anyway to order the children).
        """
        assert self._X is not None
        worst = -heap[0][0] if len(heap) == k else np.inf
        if d_center - node.radius > worst:
            return
        if node.indices is not None:
            ds = self._dists(q, node.indices)
            for d, i in zip(ds.tolist(), node.indices.tolist()):
                if len(heap) < k:
                    heapq.heappush(heap, (-d, i))
                elif d < -heap[0][0]:
                    heapq.heapreplace(heap, (-d, i))
            return
        # Internal nodes always have both children (degenerate splits become
        # leaves).  One batched distance call covers both pivots; visit the
        # closer child first for tighter pruning (left wins ties, as before).
        left, right = node.left, node.right
        assert left is not None and right is not None
        d_lr = self._dists(q, np.array([left.center, right.center], dtype=np.intp))
        d_l, d_r = float(d_lr[0]), float(d_lr[1])
        if d_l <= d_r:
            self._query_one(q, left, k, heap, d_l)
            self._query_one(q, right, k, heap, d_r)
        else:
            self._query_one(q, right, k, heap, d_r)
            self._query_one(q, left, k, heap, d_l)
