"""Ball tree for exact k-nearest-neighbour search under any metric.

The paper configures scikit-learn's ``NearestNeighbors`` with
``algorithm="ball_tree"``; this module provides the equivalent structure.
Balls are centred on actual data points (so the tree works for any true
metric, including the HEOM :class:`~repro.neighbors.distance.MixedMetric`),
and queries prune subtrees with the triangle inequality
``d(q, ball) >= d(q, center) - radius``.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass

import numpy as np

from repro.neighbors.brute import SELF_DISTANCE_TOL
from repro.neighbors.distance import MixedMetric
from repro.utils.rng import RandomState, check_random_state


@dataclass
class _Node:
    center: int  # row index of the pivot point
    radius: float
    indices: np.ndarray | None  # leaf: member row indices; internal: None
    left: "_Node | None" = None
    right: "_Node | None" = None


class BallTree:
    """Exact KNN index with data-point pivots.

    Parameters
    ----------
    metric:
        ``"euclidean"`` or a :class:`MixedMetric`.
    leaf_size:
        Maximum number of points stored in a leaf.
    random_state:
        Seed for pivot selection (construction only; queries are exact
        regardless).
    """

    def __init__(
        self,
        metric: str | MixedMetric = "euclidean",
        *,
        leaf_size: int = 32,
        random_state: RandomState = 0,
    ) -> None:
        if leaf_size < 1:
            raise ValueError(f"leaf_size must be >= 1, got {leaf_size}")
        self.metric = metric
        self.leaf_size = leaf_size
        self.random_state = random_state
        self._X: np.ndarray | None = None
        self._root: _Node | None = None

    # ------------------------------------------------------------------ #
    def fit(self, X: np.ndarray) -> "BallTree":
        X = np.asarray(X, dtype=np.float64)
        if X.ndim != 2:
            raise ValueError(f"X must be 2-D, got shape {X.shape}")
        self._X = X
        rng = check_random_state(self.random_state)
        if X.shape[0]:
            self._root = self._build(np.arange(X.shape[0], dtype=np.intp), rng)
        else:
            self._root = None
        return self

    @property
    def n_samples(self) -> int:
        if self._X is None:
            raise RuntimeError("BallTree is not fitted")
        return self._X.shape[0]

    def _dists(self, q: np.ndarray, idx: np.ndarray) -> np.ndarray:
        assert self._X is not None
        sub = self._X[idx]
        if isinstance(self.metric, MixedMetric):
            return self.metric.dists_to(q, sub)
        diff = sub - q
        return np.sqrt(np.einsum("ij,ij->i", diff, diff))

    def _build(self, indices: np.ndarray, rng: np.random.Generator) -> _Node:
        assert self._X is not None
        # Pivot: the point furthest from a random member — a classic cheap
        # approximation of the set diameter endpoint.
        seed_pt = int(indices[rng.integers(indices.size)])
        d_seed = self._dists(self._X[seed_pt], indices)
        center = int(indices[int(np.argmax(d_seed))])
        d_center = self._dists(self._X[center], indices)
        radius = float(d_center.max(initial=0.0))
        if indices.size <= self.leaf_size:
            return _Node(center=center, radius=radius, indices=indices)
        # Partition by median distance to the pivot.
        median = float(np.median(d_center))
        near = indices[d_center <= median]
        far = indices[d_center > median]
        if near.size == 0 or far.size == 0:
            # Degenerate (many duplicate points): fall back to a leaf.
            return _Node(center=center, radius=radius, indices=indices)
        return _Node(
            center=center,
            radius=radius,
            indices=None,
            left=self._build(near, rng),
            right=self._build(far, rng),
        )

    # ------------------------------------------------------------------ #
    def kneighbors(
        self, Q: np.ndarray, k: int, *, exclude_self: bool = False
    ) -> tuple[np.ndarray, np.ndarray]:
        """Return (distances, indices) of the ``k`` nearest fitted rows.

        Mirrors :meth:`repro.neighbors.brute.BruteKNN.kneighbors`, including
        ``exclude_self`` handling for leave-one-out queries.
        """
        if self._X is None:
            raise RuntimeError("BallTree is not fitted")
        Q = np.asarray(Q, dtype=np.float64)
        if Q.ndim != 2:
            raise ValueError(f"Q must be 2-D, got shape {Q.shape}")
        if k <= 0:
            raise ValueError(f"k must be positive, got {k}")
        n = self._X.shape[0]
        budget = k + 1 if exclude_self else k
        k_eff = min(budget, n)
        out_k = min(k, n - 1) if exclude_self else min(k, n)
        out_k = max(out_k, 0)
        dists = np.full((Q.shape[0], out_k), np.inf)
        idxs = np.zeros((Q.shape[0], out_k), dtype=np.intp)
        for r in range(Q.shape[0]):
            heap: list[tuple[float, int]] = []  # max-heap via negated dists
            if self._root is not None and k_eff:
                self._query_one(Q[r], self._root, k_eff, heap)
            pairs = sorted((-neg_d, i) for neg_d, i in heap)
            if exclude_self and pairs and pairs[0][0] < SELF_DISTANCE_TOL:
                pairs = pairs[1:]
            pairs = pairs[:out_k]
            for c, (d, i) in enumerate(pairs):
                dists[r, c] = d
                idxs[r, c] = i
        return dists, idxs

    def _query_one(
        self, q: np.ndarray, node: _Node, k: int, heap: list[tuple[float, int]]
    ) -> None:
        assert self._X is not None
        d_center = float(self._dists(q, np.array([node.center]))[0])
        worst = -heap[0][0] if len(heap) == k else np.inf
        if d_center - node.radius > worst:
            return
        if node.indices is not None:
            ds = self._dists(q, node.indices)
            for d, i in zip(ds, node.indices):
                if len(heap) < k:
                    heapq.heappush(heap, (-float(d), int(i)))
                elif d < -heap[0][0]:
                    heapq.heapreplace(heap, (-float(d), int(i)))
            return
        children = [node.left, node.right]
        # Visit the child whose pivot is closer first for tighter pruning.
        keyed = []
        for child in children:
            if child is None:
                continue
            dc = float(self._dists(q, np.array([child.center]))[0])
            keyed.append((dc, child))
        keyed.sort(key=lambda t: t[0])
        for _, child in keyed:
            self._query_one(q, child, k, heap)
