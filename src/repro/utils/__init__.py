"""Shared utilities: seeded RNG handling and input validation."""

from repro.utils.rng import check_random_state, spawn_rng
from repro.utils.validation import (
    check_array_1d,
    check_array_2d,
    check_fraction,
    check_positive_int,
)

__all__ = [
    "check_random_state",
    "spawn_rng",
    "check_array_1d",
    "check_array_2d",
    "check_fraction",
    "check_positive_int",
]
