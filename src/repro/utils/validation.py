"""Input validation helpers shared across the library."""

from __future__ import annotations

import numpy as np


def check_array_2d(X, *, name: str = "X", dtype=np.float64) -> np.ndarray:
    """Coerce ``X`` to a 2-D ndarray of ``dtype`` with finite values."""
    arr = np.asarray(X, dtype=dtype)
    if arr.ndim != 2:
        raise ValueError(f"{name} must be 2-dimensional, got shape {arr.shape}")
    if arr.size and not np.all(np.isfinite(arr)):
        raise ValueError(f"{name} contains NaN or infinite values")
    return arr


def check_array_1d(y, *, name: str = "y", dtype=None) -> np.ndarray:
    """Coerce ``y`` to a 1-D ndarray."""
    arr = np.asarray(y) if dtype is None else np.asarray(y, dtype=dtype)
    if arr.ndim != 1:
        raise ValueError(f"{name} must be 1-dimensional, got shape {arr.shape}")
    return arr


def check_fraction(value: float, *, name: str, inclusive_low: bool = True) -> float:
    """Validate that ``value`` lies in [0, 1] (or (0, 1] if not inclusive)."""
    value = float(value)
    low_ok = value >= 0.0 if inclusive_low else value > 0.0
    if not (low_ok and value <= 1.0):
        bracket = "[0, 1]" if inclusive_low else "(0, 1]"
        raise ValueError(f"{name} must be in {bracket}, got {value}")
    return value


def check_positive_int(value: int, *, name: str) -> int:
    """Validate that ``value`` is a positive integer."""
    if not isinstance(value, (int, np.integer)) or isinstance(value, bool):
        raise TypeError(f"{name} must be an int, got {type(value).__name__}")
    if value <= 0:
        raise ValueError(f"{name} must be positive, got {value}")
    return int(value)
