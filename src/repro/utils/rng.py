"""Random number generator plumbing.

Every stochastic component in the library accepts a ``random_state`` that may
be ``None``, an integer seed, or a :class:`numpy.random.Generator`.  This
module normalizes those three forms so the rest of the code base only ever
deals with ``Generator`` instances, mirroring scikit-learn's
``check_random_state`` convention but on the modern ``Generator`` API.
"""

from __future__ import annotations

import numpy as np

RandomState = int | np.random.Generator | None


def check_random_state(random_state: RandomState) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for ``random_state``.

    Parameters
    ----------
    random_state:
        ``None`` for nondeterministic entropy, an ``int`` seed for a
        reproducible stream, or an existing ``Generator`` (returned as-is so
        callers can thread one stream through a pipeline).
    """
    if random_state is None or isinstance(random_state, (int, np.integer)):
        return np.random.default_rng(random_state)
    if isinstance(random_state, np.random.Generator):
        return random_state
    raise TypeError(
        f"random_state must be None, int, or numpy.random.Generator, "
        f"got {type(random_state).__name__}"
    )


def spawn_rng(rng: np.random.Generator, n: int) -> list[np.random.Generator]:
    """Split ``rng`` into ``n`` independent child generators.

    Used where work is distributed over components (e.g. trees of a forest)
    and each component needs its own reproducible stream.
    """
    if n < 0:
        raise ValueError(f"n must be non-negative, got {n}")
    return [np.random.default_rng(s) for s in rng.bit_generator.seed_seq.spawn(n)]
