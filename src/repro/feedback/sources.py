"""Feedback sources: streams of rule proposals and verdicts.

A :class:`FeedbackSource` is anything with ``poll(iteration) -> list`` —
the engine drains every attached source once per iteration boundary
(:class:`repro.engine.stages.FeedbackStage`) and feeds the events to the
:class:`~repro.feedback.aggregate.FeedbackAggregator`.  The seam is
transport-agnostic: the two sources here are in-process (a thread-safe
queue for the serving layer and a deterministic scripted schedule for
tests and examples), but a network front-end only needs to produce the
same :class:`RuleProposal` / :class:`RuleVerdict` records.

Rules are serialized symbolically (clause predicates + label
distribution + exception certificates), so a proposal round-trips
through journals and wire formats without touching the dataset.
"""

from __future__ import annotations

import json
import threading
from dataclasses import dataclass
from typing import Any, Iterable, Protocol, runtime_checkable

from repro.data.evolution import Migration, SchemaDelta
from repro.rules.clause import Clause
from repro.rules.predicate import Predicate
from repro.rules.rule import FeedbackRule


def clause_to_jsonable(clause: Clause) -> list[list[Any]]:
    """Symbolic clause encoding: ``[[attribute, operator, value], ...]``."""
    return [
        [p.attribute, p.operator, p.value if isinstance(p.value, str) else float(p.value)]
        for p in clause.predicates
    ]


def clause_from_jsonable(data: Iterable[Iterable[Any]]) -> Clause:
    return Clause(tuple(Predicate(str(a), str(op), v) for a, op, v in data))


def rule_to_jsonable(rule: FeedbackRule) -> dict[str, Any]:
    """Schema-independent rule encoding (clause, pi, exceptions, name)."""
    return {
        "clause": clause_to_jsonable(rule.clause),
        "pi": [float(p) for p in rule.pi],
        "exceptions": [clause_to_jsonable(c) for c in rule.exceptions],
        "name": rule.name,
    }


def rule_from_jsonable(data: dict[str, Any]) -> FeedbackRule:
    return FeedbackRule(
        clause=clause_from_jsonable(data["clause"]),
        pi=tuple(float(p) for p in data["pi"]),
        exceptions=tuple(clause_from_jsonable(c) for c in data.get("exceptions", ())),
        name=str(data.get("name", "")),
    )


def rule_key(rule: FeedbackRule) -> str:
    """Canonical content identity of a rule (stable across processes)."""
    return json.dumps(rule_to_jsonable(rule), sort_keys=True, separators=(",", ":"))


@dataclass(frozen=True)
class RuleProposal:
    """A source proposing a rule for the running edit.

    ``proposal_id`` defaults to the rule's content key, so independent
    sources proposing the *same* rule vote on one shared proposal.
    Proposing counts as the proposer's approval vote.
    """

    rule: FeedbackRule
    source: str = ""
    proposal_id: str = ""

    def __post_init__(self) -> None:
        if not self.proposal_id:
            object.__setattr__(self, "proposal_id", rule_key(self.rule))


@dataclass(frozen=True)
class RuleVerdict:
    """A source's approve/reject vote on an existing proposal."""

    proposal_id: str
    approve: bool
    source: str = ""
    weight: float = 1.0


@dataclass(frozen=True)
class MigrationRequest:
    """A source requesting a schema migration of the running edit.

    Migrations are operator actions, not expert opinions: they bypass
    vote aggregation and apply (in arrival order, deduplicated by
    content) at the next iteration boundary, *before* any rule events of
    that boundary — so a rule referencing a just-landed column can apply
    in the same drain.
    """

    deltas: tuple[SchemaDelta, ...]
    source: str = ""
    name: str = ""


@dataclass(frozen=True)
class DeferredRule:
    """A rule string that could not parse against the current schema.

    Rule text referencing a column that has not landed yet cannot be
    validated eagerly; the pipeline re-parses it at each boundary (after
    that boundary's migrations) and parks it until the columns exist.
    """

    text: str
    name: str = ""


def parse_rule_or_defer(
    text: str, schema, label_names, *, name: str = ""
) -> "FeedbackRule | DeferredRule":
    """Parse rule text now, or defer it until its columns land.

    Text referencing an attribute the schema does not (yet) define comes
    back as a :class:`DeferredRule` — the pipeline re-parses it at each
    boundary once migrations have applied.  Every other parse error
    (malformed syntax, bad value for an *existing* column) raises
    immediately: those can never be fixed by a migration landing.
    """
    from repro.rules.parser import RuleParseError, parse_rule

    try:
        return parse_rule(text, schema, label_names, name=name)
    except RuleParseError as exc:
        if "unknown attribute" in str(exc):
            return DeferredRule(text=text, name=name)
        raise


FeedbackEvent = RuleProposal | RuleVerdict | MigrationRequest


def coerce_event(item: Any, *, source: str = "") -> FeedbackEvent | DeferredRule:
    """Normalize an item into a feedback event.

    Bare :class:`FeedbackRule` objects become proposals from ``source``;
    bare :class:`~repro.data.evolution.SchemaDelta` /
    :class:`~repro.data.evolution.Migration` objects become
    :class:`MigrationRequest` s; proposals, verdicts, migration requests,
    and deferred rules pass through unchanged.
    """
    if isinstance(item, (RuleProposal, RuleVerdict, MigrationRequest, DeferredRule)):
        return item
    if isinstance(item, FeedbackRule):
        return RuleProposal(rule=item, source=source)
    if isinstance(item, SchemaDelta):
        return MigrationRequest(deltas=(item,), source=source)
    if isinstance(item, Migration):
        return MigrationRequest(deltas=item.deltas, source=source, name=item.name)
    raise TypeError(
        "feedback items must be FeedbackRule, RuleProposal, RuleVerdict, "
        "SchemaDelta, Migration, MigrationRequest, or DeferredRule; "
        f"got {type(item).__name__}"
    )


@runtime_checkable
class FeedbackSource(Protocol):
    """Anything the engine can drain at an iteration boundary."""

    def poll(self, iteration: int) -> list[RuleProposal | RuleVerdict]:
        """Return events available at ``iteration`` (consumed on return)."""
        ...


class QueueFeedbackSource:
    """Thread-safe in-process queue — the serving layer's transport.

    ``push`` may be called from any thread (the service loop); ``poll``
    runs on the engine's worker thread.  Events are delivered in push
    order.  Intentionally has no ``reset``: a live queue's feeds are
    external inputs, not part of a run's replayable script.
    """

    def __init__(self, name: str = "queue") -> None:
        self.name = name
        self._lock = threading.Lock()
        self._pending: list[RuleProposal | RuleVerdict] = []

    def push(self, *items: Any) -> int:
        """Enqueue rules/proposals/verdicts; returns the number queued."""
        events = [coerce_event(item, source=self.name) for item in items]
        with self._lock:
            self._pending.extend(events)
        return len(events)

    def poll(self, iteration: int) -> list[RuleProposal | RuleVerdict]:
        with self._lock:
            out, self._pending = self._pending, []
        return out


class ScriptedFeedbackSource:
    """Deterministic source delivering events at scripted iterations.

    ``schedule`` is an iterable of ``(iteration, event)`` pairs or a
    mapping ``{iteration: event-or-list-of-events}`` (events may be bare
    rules).  ``poll(k)`` returns every not-yet-delivered event scheduled
    at iteration ``<= k``, preserving same-iteration order.  ``reset()``
    rewinds the cursor so a session can be re-run.
    """

    def __init__(
        self,
        schedule: Iterable[tuple[int, Any]] | dict[int, Any],
        name: str = "scripted",
    ) -> None:
        self.name = name
        if isinstance(schedule, dict):
            schedule = [
                (it, ev)
                for it, evs in schedule.items()
                for ev in (evs if isinstance(evs, (list, tuple)) else [evs])
            ]
        entries = [(int(it), coerce_event(ev, source=name)) for it, ev in schedule]
        entries.sort(key=lambda pair: pair[0])  # stable: keeps same-iteration order
        self._schedule = entries
        self._cursor = 0

    def poll(self, iteration: int) -> list[RuleProposal | RuleVerdict]:
        out: list[RuleProposal | RuleVerdict] = []
        while self._cursor < len(self._schedule) and self._schedule[self._cursor][0] <= iteration:
            out.append(self._schedule[self._cursor][1])
            self._cursor += 1
        return out

    def reset(self) -> None:
        self._cursor = 0
