"""Aggregating per-source rule verdicts into single ruleset decisions.

Many sources (experts, clients, automated checks) vote on the same
proposal; the :class:`FeedbackAggregator` folds their votes into one
outcome per rule before anything touches the engine — the fed-popper
idiom of a small outcome-merge table reducing per-client verdicts to a
single constraint-set decision.

Policies live in the :data:`AGGREGATION_POLICIES` registry (the same
``Registry`` seam the engine uses for selectors and the serving layer
uses for scheduling policies), so deployments can register their own
``decide(tally) -> status`` strategies.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterable

from repro.engine.registry import Registry
from repro.feedback.sources import RuleProposal, RuleVerdict
from repro.rules.rule import FeedbackRule

#: Proposal lifecycle states.  Decisions are final: once a proposal is
#: approved or rejected, later votes (including re-delivered duplicates
#: after a crash-resume) are ignored.
PENDING = "pending"
APPROVED = "approved"
REJECTED = "rejected"

_APPROVE = "approve"
_REJECT = "reject"

#: Pairwise outcome-merge table (fed-popper style): folding any vote
#: with a rejection yields rejection — a single dissent poisons the
#: unanimous outcome.
_MERGE = {
    (_APPROVE, _APPROVE): _APPROVE,
    (_APPROVE, _REJECT): _REJECT,
    (_REJECT, _APPROVE): _REJECT,
    (_REJECT, _REJECT): _REJECT,
}

AGGREGATION_POLICIES = Registry("aggregation policy")


def register_aggregation_policy(name: str, obj: Any = None, *, overwrite: bool = False):
    """Register an aggregation policy (usable as a decorator)."""
    return AGGREGATION_POLICIES.register(name, obj, overwrite=overwrite)


@dataclass(frozen=True)
class VoteTally:
    """The votes currently standing on one proposal (latest per source)."""

    proposal_id: str
    approvals: tuple[tuple[str, float], ...]
    rejections: tuple[tuple[str, float], ...]

    @property
    def n_approve(self) -> int:
        return len(self.approvals)

    @property
    def n_reject(self) -> int:
        return len(self.rejections)


@register_aggregation_policy("unanimous")
class UnanimousPolicy:
    """Approve only when every vote approves; any rejection rejects.

    ``min_votes`` holds the proposal pending until enough sources have
    weighed in (the proposer's implicit approval counts as one vote).
    """

    def __init__(self, min_votes: int = 1) -> None:
        if min_votes < 1:
            raise ValueError(f"min_votes must be >= 1, got {min_votes}")
        self.min_votes = min_votes

    def decide(self, tally: VoteTally) -> str:
        votes = [_APPROVE] * tally.n_approve + [_REJECT] * tally.n_reject
        if not votes:
            return PENDING
        outcome = votes[0]
        for vote in votes[1:]:
            outcome = _MERGE[(outcome, vote)]
        if outcome == _REJECT:
            return REJECTED
        return APPROVED if tally.n_approve >= self.min_votes else PENDING


@register_aggregation_policy("quorum")
class QuorumPolicy:
    """First side to reach ``quorum`` votes wins; rejection breaks ties."""

    def __init__(self, quorum: int = 2) -> None:
        if quorum < 1:
            raise ValueError(f"quorum must be >= 1, got {quorum}")
        self.quorum = quorum

    def decide(self, tally: VoteTally) -> str:
        if tally.n_reject >= self.quorum:
            return REJECTED
        if tally.n_approve >= self.quorum:
            return APPROVED
        return PENDING


@register_aggregation_policy("priority-weighted")
class PriorityWeightedPolicy:
    """Weighted approve-minus-reject score against a threshold.

    Per-vote weights multiply optional per-source priorities from
    ``weights``; the proposal decides once ``|score| >= threshold``,
    with rejection winning exact standoffs at ``-threshold``.
    """

    def __init__(self, threshold: float = 1.0, weights: dict[str, float] | None = None) -> None:
        if threshold <= 0:
            raise ValueError(f"threshold must be > 0, got {threshold}")
        self.threshold = float(threshold)
        self.weights = dict(weights or {})

    def _weight(self, source: str, weight: float) -> float:
        return float(weight) * float(self.weights.get(source, 1.0))

    def decide(self, tally: VoteTally) -> str:
        score = sum(self._weight(s, w) for s, w in tally.approvals)
        score -= sum(self._weight(s, w) for s, w in tally.rejections)
        if score <= -self.threshold:
            return REJECTED
        if score >= self.threshold:
            return APPROVED
        return PENDING


@dataclass(frozen=True)
class RuleDecision:
    """A proposal transitioning out of ``pending``."""

    proposal_id: str
    rule: FeedbackRule
    status: str
    approvals: tuple[str, ...]
    rejections: tuple[str, ...]


class _Proposal:
    __slots__ = ("rule", "votes", "status")

    def __init__(self, rule: FeedbackRule) -> None:
        self.rule = rule
        #: source -> (approve, weight); latest vote per source wins.
        self.votes: dict[str, tuple[bool, float]] = {}
        self.status = PENDING


class FeedbackAggregator:
    """Folds streamed proposals/verdicts into final ruleset decisions.

    ``policy`` is a registry name (with ``**policy_kwargs`` forwarded to
    its constructor) or an instance exposing ``decide(tally) -> status``.
    Verdicts arriving before their proposal are parked and replayed when
    the proposal lands; re-ingesting already-decided events is a no-op,
    which makes journal-driven re-delivery idempotent.
    """

    def __init__(self, policy: Any = "unanimous", **policy_kwargs: Any) -> None:
        if isinstance(policy, str):
            policy = AGGREGATION_POLICIES.create(policy, **policy_kwargs)
        elif policy_kwargs:
            raise TypeError("policy_kwargs only apply when policy is a registry name")
        if not hasattr(policy, "decide"):
            raise TypeError(f"policy must expose decide(tally); got {type(policy).__name__}")
        self.policy = policy
        self._proposals: dict[str, _Proposal] = {}
        self._orphans: dict[str, list[RuleVerdict]] = {}
        self.decisions: list[RuleDecision] = []

    def ingest(self, events: Iterable[RuleProposal | RuleVerdict]) -> list[RuleDecision]:
        """Apply events in order; return proposals that just decided."""
        touched: dict[str, None] = {}
        for event in events:
            if isinstance(event, RuleProposal):
                self._ingest_proposal(event)
            elif isinstance(event, RuleVerdict):
                self._ingest_verdict(event)
            else:
                raise TypeError(f"cannot ingest {type(event).__name__}")
            touched[event.proposal_id] = None
        out: list[RuleDecision] = []
        for pid in touched:
            entry = self._proposals.get(pid)
            if entry is None or entry.status != PENDING:
                continue
            status = self.policy.decide(self.tally(pid))
            if status == PENDING:
                continue
            if status not in (APPROVED, REJECTED):
                raise ValueError(f"policy returned unknown status {status!r}")
            entry.status = status
            decision = RuleDecision(
                proposal_id=pid,
                rule=entry.rule,
                status=status,
                approvals=tuple(s for s, (ok, _) in entry.votes.items() if ok),
                rejections=tuple(s for s, (ok, _) in entry.votes.items() if not ok),
            )
            self.decisions.append(decision)
            out.append(decision)
        return out

    def _ingest_proposal(self, event: RuleProposal) -> None:
        entry = self._proposals.get(event.proposal_id)
        if entry is None:
            entry = _Proposal(event.rule)
            self._proposals[event.proposal_id] = entry
            entry.votes[event.source or "proposer"] = (True, 1.0)
            for orphan in self._orphans.pop(event.proposal_id, []):
                self._ingest_verdict(orphan)
            return
        if entry.status != PENDING:
            return
        # A repeat proposal from a new source counts as that source's approval.
        entry.votes.setdefault(event.source or "proposer", (True, 1.0))

    def _ingest_verdict(self, event: RuleVerdict) -> None:
        entry = self._proposals.get(event.proposal_id)
        if entry is None:
            self._orphans.setdefault(event.proposal_id, []).append(event)
            return
        if entry.status != PENDING:
            return
        entry.votes[event.source or "anonymous"] = (bool(event.approve), float(event.weight))

    def tally(self, proposal_id: str) -> VoteTally:
        entry = self._proposals[proposal_id]
        return VoteTally(
            proposal_id=proposal_id,
            approvals=tuple((s, w) for s, (ok, w) in entry.votes.items() if ok),
            rejections=tuple((s, w) for s, (ok, w) in entry.votes.items() if not ok),
        )

    def status(self, proposal_id: str) -> str:
        entry = self._proposals.get(proposal_id)
        return PENDING if entry is None else entry.status

    def pending(self) -> tuple[str, ...]:
        return tuple(pid for pid, e in self._proposals.items() if e.status == PENDING)
