"""Federated / streaming rule feedback with live ruleset deltas.

The layer that turns the batch reproduction into a live-governance
system: rules arrive *during* a run from many sources, per-source
verdicts are aggregated into single decisions, and approved rules land
on the running engine as append or rebuild deltas at iteration
boundaries only — never mid-iteration, preserving the serving layer's
bit-identity contract.

    source(s)  ──poll──▶  FeedbackAggregator  ──approved──▶  RuleSetDelta
                                                               │
                                              EditState ◀──────┘

See ``docs/architecture.md`` ("Feedback layer") for the full picture.
"""

from repro.feedback.aggregate import (
    AGGREGATION_POLICIES,
    APPROVED,
    PENDING,
    REJECTED,
    FeedbackAggregator,
    RuleDecision,
    VoteTally,
    register_aggregation_policy,
)
from repro.feedback.delta import (
    APPEND,
    REBUILD,
    RuleSetDelta,
    apply_rule,
    classify_rule,
    delta_from_jsonable,
    delta_to_jsonable,
    extend_ruleset,
)
from repro.feedback.pipeline import FeedbackPipeline
from repro.feedback.sources import (
    DeferredRule,
    FeedbackSource,
    MigrationRequest,
    QueueFeedbackSource,
    RuleProposal,
    RuleVerdict,
    ScriptedFeedbackSource,
    coerce_event,
    parse_rule_or_defer,
    rule_from_jsonable,
    rule_key,
    rule_to_jsonable,
)

__all__ = [
    "AGGREGATION_POLICIES",
    "APPEND",
    "APPROVED",
    "PENDING",
    "REBUILD",
    "REJECTED",
    "DeferredRule",
    "FeedbackAggregator",
    "FeedbackPipeline",
    "FeedbackSource",
    "MigrationRequest",
    "QueueFeedbackSource",
    "RuleDecision",
    "RuleProposal",
    "RuleSetDelta",
    "RuleVerdict",
    "ScriptedFeedbackSource",
    "VoteTally",
    "apply_rule",
    "classify_rule",
    "coerce_event",
    "delta_from_jsonable",
    "delta_to_jsonable",
    "extend_ruleset",
    "parse_rule_or_defer",
    "register_aggregation_policy",
    "rule_from_jsonable",
    "rule_key",
    "rule_to_jsonable",
]
