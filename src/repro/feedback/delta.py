"""Ruleset deltas: applying approved rules to a live edit state.

This extends the PR 4 ``DeltaJournal`` idiom from the dataset axis to the
FRS axis.  A rule whose symbolic coverage is disjoint (or provably
carved apart) from every conflicting existing rule is an **append**
delta: first-match assignment is append-stable (the new rule takes the
highest index, so it can only claim rows no rule covered — see
:meth:`repro.rules.ruleset.FeedbackRuleSet.assign`), existing rules keep
their rows and pools, and only the new rule's coverage, base population,
generator, and evaluation terms are fresh work.  A rule that conflicts
with an earlier rule's coverage is a **rebuild** delta: the intersection
is carved (or mixed) out of both sides, which changes existing rules'
coverage, so assignment, populations, and the evaluation are recomputed
from scratch.

Classification is symbolic (schema-only), so whether a rule appends or
rebuilds does not depend on *when* it arrives — the property the
streamed-vs-scheduled parity contract rests on.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Any

import numpy as np

from repro.feedback.sources import rule_from_jsonable, rule_to_jsonable
from repro.rules.clause import clauses_intersect
from repro.rules.rule import FeedbackRule
from repro.rules.ruleset import (
    FeedbackRuleSet,
    _exception_blocks_intersection,
)

#: Delta kinds.
APPEND = "append"
REBUILD = "rebuild"


@dataclass(frozen=True)
class RuleSetDelta:
    """One applied change to a run's feedback rule set.

    ``ruleset`` is the complete resulting rule set — deltas are
    self-contained so a journal replay can reconstruct the rule timeline
    without re-running aggregation.
    """

    kind: str
    iteration: int
    rules_added: tuple[FeedbackRule, ...]
    ruleset: FeedbackRuleSet
    n_rules_before: int
    provenance: str = ""


def delta_to_jsonable(delta: RuleSetDelta) -> dict[str, Any]:
    return {
        "kind": delta.kind,
        "iteration": int(delta.iteration),
        "n_rules_before": int(delta.n_rules_before),
        "provenance": delta.provenance,
        "rules_added": [rule_to_jsonable(r) for r in delta.rules_added],
        "ruleset": [rule_to_jsonable(r) for r in delta.ruleset],
    }


def delta_from_jsonable(data: dict[str, Any]) -> RuleSetDelta:
    return RuleSetDelta(
        kind=str(data["kind"]),
        iteration=int(data["iteration"]),
        rules_added=tuple(rule_from_jsonable(r) for r in data["rules_added"]),
        ruleset=FeedbackRuleSet(tuple(rule_from_jsonable(r) for r in data["ruleset"])),
        n_rules_before=int(data["n_rules_before"]),
        provenance=str(data.get("provenance", "")),
    )


def _conflicting_indices(frs: FeedbackRuleSet, rule: FeedbackRule, schema) -> list[int]:
    """Existing rules whose coverage provably intersects ``rule`` with a
    different label distribution (symbolic, exception-aware)."""
    out = []
    for i, existing in enumerate(frs):
        if not existing.conflicts_with(rule):
            continue
        if not clauses_intersect(existing.clause, rule.clause, schema):
            continue
        if _exception_blocks_intersection(existing, rule):
            continue
        out.append(i)
    return out


def classify_rule(frs: FeedbackRuleSet, rule: FeedbackRule, schema) -> str:
    """``"append"`` when the rule coexists with every existing rule,
    ``"rebuild"`` when it carves out earlier matches."""
    return REBUILD if _conflicting_indices(frs, rule, schema) else APPEND


def extend_ruleset(
    frs: FeedbackRuleSet,
    rule: FeedbackRule,
    schema,
    *,
    resolve: str = "carve",
    mixture_weight: float = 0.5,
) -> tuple[str, FeedbackRuleSet]:
    """Extend ``frs`` with ``rule``; returns ``(kind, resulting rule set)``.

    The rebuild path resolves only the *new* rule against its conflicts
    (mutual exception carve, optionally plus a mixture rule) rather than
    re-running :meth:`FeedbackRuleSet.resolve_conflicts` over the whole
    set — re-resolving an already-carved set would re-add duplicate
    exceptions because the pairwise pass does not consult the
    exception certificates it previously installed.
    """
    kind = classify_rule(frs, rule, schema)
    if kind == APPEND:
        return kind, FeedbackRuleSet(frs.rules + (rule,))
    if resolve not in ("carve", "mixture"):
        raise ValueError(f"resolve must be 'carve' or 'mixture', got {resolve!r}")
    rules = list(frs.rules)
    new = rule
    mixtures: list[FeedbackRule] = []
    for i in _conflicting_indices(frs, rule, schema):
        ri = rules[i]
        if resolve == "mixture":
            mix = mixture_weight * np.asarray(ri.pi) + (1.0 - mixture_weight) * np.asarray(
                rule.pi
            )
            mixtures.append(
                FeedbackRule(
                    ri.clause.conjoin(rule.clause),
                    tuple(mix),
                    name=f"mix({ri.name or i},{rule.name or len(rules)})",
                )
            )
        rules[i] = ri.with_exception(rule.clause)
        new = new.with_exception(ri.clause)
    return kind, FeedbackRuleSet(tuple(rules + [new] + mixtures))


def apply_rule(
    state,
    rule: FeedbackRule,
    *,
    resolve: str = "carve",
    mixture_weight: float = 0.5,
    provenance: str = "feedback",
) -> RuleSetDelta:
    """Apply one approved rule to a live :class:`EditState`.

    Installs the extended rule set, refreshes the evaluation and
    ``best_loss`` so subsequent acceptance decisions compare
    like-with-like under the new objective, logs the delta on
    ``state.ruleset_log``, and emits a ``"ruleset"`` progress event (the
    journal subscribes to it).  Append deltas cost O(new rule); rebuild
    deltas mark everything stale and recompute.
    """
    schema = state.active.X.schema
    old_frs = state.frs
    kind, new_frs = extend_ruleset(
        old_frs, rule, schema, resolve=resolve, mixture_weight=mixture_weight
    )
    if kind == APPEND:
        _apply_append(state, new_frs, rule)
    else:
        _apply_rebuild(state, new_frs)
    delta = RuleSetDelta(
        kind=kind,
        iteration=state.iteration,
        rules_added=(rule,),
        ruleset=new_frs,
        n_rules_before=len(old_frs),
        provenance=provenance,
    )
    state.ruleset_log.append(delta)
    state.emit("ruleset", ruleset=delta)
    return delta


def _apply_append(state, new_frs: FeedbackRuleSet, rule: FeedbackRule) -> None:
    """O(new rule) install: existing rules keep rows, pools, and terms."""
    from repro.core.objective import append_rule_evaluation

    # Evaluation and assignment under the *old* rule set (memoized — free
    # when nothing changed since the last boundary).
    base_eval = state.evaluate_active()
    y_pred = state.active_predictions()
    old_assign = state.active_assignment()

    # First-match append stability: the new rule has the highest index,
    # so it can only claim rows no existing rule covered.
    moved = (old_assign < 0) & rule.coverage_mask(state.active.X)
    m_new = len(new_frs) - 1
    new_assign = old_assign.copy()
    new_assign[moved] = m_new

    state.frs = new_frs
    state.assign_cache = (state.dataset_version, new_assign)
    evaluation = append_rule_evaluation(base_eval, y_pred, state.active, rule, moved)
    state.evaluation = evaluation
    state.evaluation_cache = (state.dataset_version, state.model, new_frs, evaluation)
    state.best_loss = state.loss_of(evaluation)

    if not state.population_stale and state.bp is not None:
        # Extend the per-rule working set by just the new rule, mirroring
        # what a full PreselectStage recompute would produce (per-rule
        # populations are independent).
        from repro.core.preselect import BasePopulation, preselect_base_population
        from repro.sampling.rule_generation import RuleConstrainedGenerator

        single = preselect_base_population(
            state.active, FeedbackRuleSet((rule,)), k=state.config.k
        )
        pop = replace(single.per_rule[0], rule_index=m_new)
        state.bp = BasePopulation(state.bp.per_rule + (pop,))
        state.generators = list(state.generators) + [
            RuleConstrainedGenerator(
                rule,
                state.active.X,
                k=state.config.k,
                distance_backend=getattr(state.config, "distance_backend", None),
            )
        ]
        state.pools = list(state.pools) + [
            state.active.X.take(pop.indices) if pop.size else None
        ]


def _apply_rebuild(state, new_frs: FeedbackRuleSet) -> None:
    """Carve-outs changed existing coverage: recompute from scratch."""
    state.frs = new_frs
    state.assign_cache = None
    state.evaluation_cache = None
    state.population_stale = True
    evaluation = state.evaluate_active()
    state.evaluation = evaluation
    state.best_loss = state.loss_of(evaluation)
