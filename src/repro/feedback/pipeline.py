"""The per-run feedback pipeline: sources → aggregator → ruleset deltas.

One :class:`FeedbackPipeline` is built per run by
:meth:`EditSession.build_state` and drained by
:class:`repro.engine.stages.FeedbackStage` at every iteration boundary.
It owns the run's aggregator state plus an applied-rule set keyed on
rule content, so re-delivered events (scripted sources after a
crash-resume, duplicate proposals from several sources) apply at most
once.

Since the schema-evolution arc the pipeline also carries the run's
**migration schedule** and the migration events sources deliver: at each
boundary, scheduled then streamed schema deltas apply *first* (through
:func:`repro.engine.migration.apply_schema_delta`), then rules parked at
earlier boundaries retry, then the boundary's own rules — so a rule
referencing a column whose delta lands at the same boundary applies
immediately, and one referencing a column that has not landed yet parks
instead of failing the run.
"""

from __future__ import annotations

from typing import Any, Iterable

from repro.data.evolution import SchemaDelta, schema_delta_key
from repro.feedback.aggregate import APPROVED, FeedbackAggregator, RuleDecision
from repro.feedback.delta import RuleSetDelta, apply_rule
from repro.feedback.sources import (
    DeferredRule,
    FeedbackSource,
    MigrationRequest,
    rule_key,
)
from repro.rules.rule import FeedbackRule


class FeedbackPipeline:
    """Drains feedback sources into a live edit state.

    Parameters
    ----------
    sources:
        Streams polled at each boundary (anything with ``poll(iteration)``).
    policy / policy_kwargs:
        Aggregation policy (registry name or instance) deciding when a
        proposal's votes become a ruleset change.
    resolve / mixture_weight:
        Conflict-resolution strategy for rebuild deltas.
    schedule:
        ``{iteration: [rules]}`` applied unconditionally (no aggregation)
        the first time the boundary reaches that iteration — the
        "present but inactive until iteration k" reference path the
        streamed-parity contract compares against.
    migrations:
        ``{iteration: [SchemaDelta]}`` — scheduled feature-space
        migrations, applied in order at their boundary *before* any rule
        of the same boundary (``EditSession.with_schema_migration``).
    """

    def __init__(
        self,
        sources: Iterable[FeedbackSource] = (),
        *,
        policy: Any = "unanimous",
        policy_kwargs: dict[str, Any] | None = None,
        resolve: str = "carve",
        mixture_weight: float = 0.5,
        schedule: dict[int, list[FeedbackRule]] | None = None,
        migrations: dict[int, list[SchemaDelta]] | None = None,
    ) -> None:
        self.sources = list(sources)
        self.aggregator = FeedbackAggregator(policy, **(policy_kwargs or {}))
        self.resolve = resolve
        self.mixture_weight = mixture_weight
        self.schedule = {int(k): list(v) for k, v in (schedule or {}).items()}
        self.migrations = {int(k): list(v) for k, v in (migrations or {}).items()}
        #: content keys of rules already applied to the state this run.
        self.applied: set[str] = set()
        #: content keys of schema deltas already applied this run.
        self.applied_migrations: set[str] = set()
        #: rules (or deferred rule strings) waiting for their columns to
        #: land, as ``(item, provenance)`` pairs in arrival order.
        self.parked: list[tuple[Any, str]] = []
        self._scheduled_done: set[int] = set()
        self._migrations_done: set[int] = set()

    def mark_applied(self, rule: FeedbackRule) -> None:
        """Record an externally applied rule (journal fast-forward) so a
        source re-delivering it is a no-op."""
        self.applied.add(rule_key(rule))

    def mark_migrated(self, delta: SchemaDelta) -> None:
        """Record an externally applied schema delta (journal
        fast-forward) so a source or schedule re-delivering it is a
        no-op."""
        self.applied_migrations.add(schema_delta_key(delta))

    def drain(self, state) -> list[RuleSetDelta]:
        """Apply everything due at the current iteration boundary.

        Order: scheduled migrations, streamed migration requests, parked
        rules (retried now that columns may exist), scheduled rules, and
        finally source rule events through the aggregator.  The order is
        deterministic per boundary, which the journal replay relies on.
        """
        boundary = state.iteration
        deltas: list[RuleSetDelta] = []

        for it in sorted(k for k in self.migrations if k <= boundary):
            if it in self._migrations_done:
                continue
            self._migrations_done.add(it)
            for delta in self.migrations[it]:
                self._migrate(state, delta, provenance=f"scheduled@{it}")

        events = []
        for source in self.sources:
            events.extend(source.poll(boundary))
        rule_events = []
        arrived: list[tuple[Any, str]] = []
        for event in events:
            if isinstance(event, MigrationRequest):
                label = event.name or event.source or "stream"
                for delta in event.deltas:
                    self._migrate(state, delta, provenance=label)
            elif isinstance(event, DeferredRule):
                # Unparsed rule text cannot vote; once its columns land
                # it applies directly, like a scheduled rule.
                arrived.append((event, event.name or "deferred"))
            else:
                rule_events.append(event)

        waiting: list[tuple[Any, str]] = []
        if self.parked:
            waiting, self.parked = self.parked, []
        waiting.extend(arrived)
        for item, provenance in waiting:
            deltas.extend(self._apply(state, item, provenance=provenance))

        for it in sorted(k for k in self.schedule if k <= boundary):
            if it in self._scheduled_done:
                continue
            self._scheduled_done.add(it)
            for rule in self.schedule[it]:
                deltas.extend(self._apply(state, rule, provenance=f"scheduled@{it}"))

        if rule_events:
            for decision in self.aggregator.ingest(rule_events):
                if decision.status == APPROVED:
                    deltas.extend(
                        self._apply(
                            state, decision.rule, provenance=self._provenance(decision)
                        )
                    )
        return deltas

    @staticmethod
    def _provenance(decision: RuleDecision) -> str:
        voters = ",".join(decision.approvals) or "unattributed"
        return f"approved by {voters}"

    def _migrate(self, state, delta: SchemaDelta, *, provenance: str) -> None:
        key = schema_delta_key(delta)
        if key in self.applied_migrations:
            return
        self.applied_migrations.add(key)
        from repro.engine.migration import apply_schema_delta

        apply_schema_delta(state, delta, provenance=provenance)

    def _apply(self, state, rule: Any, *, provenance: str) -> list[RuleSetDelta]:
        schema = state.active.X.schema
        if isinstance(rule, DeferredRule):
            from repro.rules.parser import RuleParseError, parse_rule

            try:
                rule = parse_rule(
                    rule.text, schema, state.active.label_names, name=rule.name
                )
            except RuleParseError:
                # Still references columns (or categories) that have not
                # landed; park and retry after the next migration.
                self.parked.append((rule, provenance))
                return []
        referenced = set(rule.clause.attributes)
        for exc_clause in rule.exceptions:
            referenced |= set(exc_clause.attributes)
        if not referenced.issubset(schema.names):
            self.parked.append((rule, provenance))
            return []
        key = rule_key(rule)
        if key in self.applied:
            return []
        self.applied.add(key)
        return [
            apply_rule(
                state,
                rule,
                resolve=self.resolve,
                mixture_weight=self.mixture_weight,
                provenance=provenance,
            )
        ]
