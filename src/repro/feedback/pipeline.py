"""The per-run feedback pipeline: sources → aggregator → ruleset deltas.

One :class:`FeedbackPipeline` is built per run by
:meth:`EditSession.build_state` and drained by
:class:`repro.engine.stages.FeedbackStage` at every iteration boundary.
It owns the run's aggregator state plus an applied-rule set keyed on
rule content, so re-delivered events (scripted sources after a
crash-resume, duplicate proposals from several sources) apply at most
once.
"""

from __future__ import annotations

from typing import Any, Iterable

from repro.feedback.aggregate import APPROVED, FeedbackAggregator, RuleDecision
from repro.feedback.delta import RuleSetDelta, apply_rule
from repro.feedback.sources import FeedbackSource, rule_key
from repro.rules.rule import FeedbackRule


class FeedbackPipeline:
    """Drains feedback sources into a live edit state.

    Parameters
    ----------
    sources:
        Streams polled at each boundary (anything with ``poll(iteration)``).
    policy / policy_kwargs:
        Aggregation policy (registry name or instance) deciding when a
        proposal's votes become a ruleset change.
    resolve / mixture_weight:
        Conflict-resolution strategy for rebuild deltas.
    schedule:
        ``{iteration: [rules]}`` applied unconditionally (no aggregation)
        the first time the boundary reaches that iteration — the
        "present but inactive until iteration k" reference path the
        streamed-parity contract compares against.
    """

    def __init__(
        self,
        sources: Iterable[FeedbackSource] = (),
        *,
        policy: Any = "unanimous",
        policy_kwargs: dict[str, Any] | None = None,
        resolve: str = "carve",
        mixture_weight: float = 0.5,
        schedule: dict[int, list[FeedbackRule]] | None = None,
    ) -> None:
        self.sources = list(sources)
        self.aggregator = FeedbackAggregator(policy, **(policy_kwargs or {}))
        self.resolve = resolve
        self.mixture_weight = mixture_weight
        self.schedule = {int(k): list(v) for k, v in (schedule or {}).items()}
        #: content keys of rules already applied to the state this run.
        self.applied: set[str] = set()
        self._scheduled_done: set[int] = set()

    def mark_applied(self, rule: FeedbackRule) -> None:
        """Record an externally applied rule (journal fast-forward) so a
        source re-delivering it is a no-op."""
        self.applied.add(rule_key(rule))

    def drain(self, state) -> list[RuleSetDelta]:
        """Apply everything due at the current iteration boundary.

        Scheduled rules go first (deterministic ordering: the schedule is
        the reference path), then source events in source order through
        the aggregator; newly approved decisions apply immediately.
        """
        boundary = state.iteration
        deltas: list[RuleSetDelta] = []
        for it in sorted(k for k in self.schedule if k <= boundary):
            if it in self._scheduled_done:
                continue
            self._scheduled_done.add(it)
            for rule in self.schedule[it]:
                deltas.extend(self._apply(state, rule, provenance=f"scheduled@{it}"))
        events = []
        for source in self.sources:
            events.extend(source.poll(boundary))
        if events:
            for decision in self.aggregator.ingest(events):
                if decision.status == APPROVED:
                    deltas.extend(
                        self._apply(
                            state, decision.rule, provenance=self._provenance(decision)
                        )
                    )
        return deltas

    @staticmethod
    def _provenance(decision: RuleDecision) -> str:
        voters = ",".join(decision.approvals) or "unattributed"
        return f"approved by {voters}"

    def _apply(self, state, rule: FeedbackRule, *, provenance: str) -> list[RuleSetDelta]:
        key = rule_key(rule)
        if key in self.applied:
            return []
        self.applied.add(key)
        return [
            apply_rule(
                state,
                rule,
                resolve=self.resolve,
                mixture_weight=self.mixture_weight,
                provenance=provenance,
            )
        ]
