"""Model-rule agreement (MRA) metrics.

MRA is the complement of the first term of the FROTE objective (paper Eq. 3)
with 0-1 loss: the probability that the retrained model's prediction matches
the label distribution of the covering feedback rule.
"""

from __future__ import annotations

import numpy as np

from repro.utils.validation import check_array_1d


def mra_deterministic(y_pred: np.ndarray, rule_class: int) -> float:
    """MRA for a deterministic rule: fraction of predictions equal to ``rule_class``.

    Empty coverage scores 1.0 (the rule is vacuously satisfied).
    """
    y_pred = check_array_1d(y_pred, name="y_pred", dtype=np.int64)
    if y_pred.size == 0:
        return 1.0
    return float(np.mean(y_pred == rule_class))


def mra_probabilistic(y_pred: np.ndarray, pi: np.ndarray) -> float:
    """MRA for a probabilistic rule with label distribution ``pi``.

    With 0-1 loss, ``E[1 - L1(pred, Y)] = pi[pred]`` for each instance, so
    MRA is the mean rule-probability assigned to the predicted class.
    """
    y_pred = check_array_1d(y_pred, name="y_pred", dtype=np.int64)
    pi = np.asarray(pi, dtype=np.float64)
    if pi.ndim != 1:
        raise ValueError(f"pi must be 1-D, got shape {pi.shape}")
    if not np.isclose(pi.sum(), 1.0, atol=1e-8):
        raise ValueError(f"pi must sum to 1, got {pi.sum()}")
    if y_pred.size == 0:
        return 1.0
    if y_pred.max() >= pi.size:
        raise ValueError("prediction code exceeds distribution support")
    return float(np.mean(pi[y_pred]))
