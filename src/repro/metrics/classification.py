"""Classification metrics implemented from scratch (no scikit-learn).

Provides the metrics the FROTE evaluation relies on: accuracy, confusion
matrix, precision/recall/F1 with binary, macro, micro, and weighted
averaging.  Binary F1 follows the paper's convention of treating class code 1
as the positive class.
"""

from __future__ import annotations

import numpy as np

from repro.utils.validation import check_array_1d

AVERAGES = ("binary", "macro", "micro", "weighted")


def accuracy_score(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    """Fraction of exact label matches."""
    y_true = check_array_1d(y_true, name="y_true", dtype=np.int64)
    y_pred = check_array_1d(y_pred, name="y_pred", dtype=np.int64)
    _check_same_length(y_true, y_pred)
    if y_true.size == 0:
        return 0.0
    return float(np.mean(y_true == y_pred))


def confusion_matrix(
    y_true: np.ndarray, y_pred: np.ndarray, *, n_classes: int | None = None
) -> np.ndarray:
    """Confusion matrix ``C[i, j]`` = count of true class ``i`` predicted ``j``."""
    y_true = check_array_1d(y_true, name="y_true", dtype=np.int64)
    y_pred = check_array_1d(y_pred, name="y_pred", dtype=np.int64)
    _check_same_length(y_true, y_pred)
    if n_classes is None:
        n_classes = int(max(y_true.max(initial=-1), y_pred.max(initial=-1))) + 1
        n_classes = max(n_classes, 1)
    if y_true.size and (y_true.min() < 0 or y_pred.min() < 0):
        raise ValueError("labels must be non-negative class codes")
    if y_true.size and (y_true.max() >= n_classes or y_pred.max() >= n_classes):
        raise ValueError("labels exceed n_classes")
    cm = np.zeros((n_classes, n_classes), dtype=np.int64)
    np.add.at(cm, (y_true, y_pred), 1)
    return cm


def _per_class_prf(
    cm: np.ndarray,
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Per-class (precision, recall, f1, support) from a confusion matrix."""
    tp = np.diag(cm).astype(np.float64)
    pred_pos = cm.sum(axis=0).astype(np.float64)
    true_pos = cm.sum(axis=1).astype(np.float64)
    with np.errstate(divide="ignore", invalid="ignore"):
        precision = np.where(pred_pos > 0, tp / pred_pos, 0.0)
        recall = np.where(true_pos > 0, tp / true_pos, 0.0)
        denom = precision + recall
        f1 = np.where(denom > 0, 2 * precision * recall / denom, 0.0)
    return precision, recall, f1, true_pos


def precision_recall_f1(
    y_true: np.ndarray,
    y_pred: np.ndarray,
    *,
    average: str = "macro",
    n_classes: int | None = None,
    pos_label: int = 1,
) -> tuple[float, float, float]:
    """Return (precision, recall, f1) under the requested averaging.

    ``average="binary"`` scores only ``pos_label``.  ``"macro"`` is the
    unweighted class mean, ``"weighted"`` weights by support, and ``"micro"``
    aggregates counts globally (equals accuracy for single-label problems).
    """
    if average not in AVERAGES:
        raise ValueError(f"average must be one of {AVERAGES}, got {average!r}")
    cm = confusion_matrix(y_true, y_pred, n_classes=n_classes)
    if average == "binary":
        if pos_label >= cm.shape[0]:
            return 0.0, 0.0, 0.0
        precision, recall, f1, _ = _per_class_prf(cm)
        return float(precision[pos_label]), float(recall[pos_label]), float(f1[pos_label])
    if average == "micro":
        tp = float(np.trace(cm))
        total = float(cm.sum())
        p = tp / total if total else 0.0
        return p, p, p
    precision, recall, f1, support = _per_class_prf(cm)
    if average == "macro":
        return float(precision.mean()), float(recall.mean()), float(f1.mean())
    # weighted
    total = support.sum()
    if total == 0:
        return 0.0, 0.0, 0.0
    w = support / total
    return float(precision @ w), float(recall @ w), float(f1 @ w)


def f1_score(
    y_true: np.ndarray,
    y_pred: np.ndarray,
    *,
    average: str = "macro",
    n_classes: int | None = None,
    pos_label: int = 1,
) -> float:
    """F1 under the requested averaging; see :func:`precision_recall_f1`."""
    return precision_recall_f1(
        y_true, y_pred, average=average, n_classes=n_classes, pos_label=pos_label
    )[2]


def f1_from_confusion(cm: np.ndarray, *, pos_label: int = 1) -> float:
    """The paper's F1 convention computed from confusion counts alone.

    Bitwise-identical to :func:`default_f1` over the predictions that
    produced ``cm`` — the same per-class arithmetic over the same integer
    counts (an all-zero matrix is the empty partition, scored 1.0; a 2×2
    matrix scores binary F1 on ``pos_label``, larger matrices macro F1).
    Confusion counts are additive, so evaluations over disjoint row
    partitions merge exactly by summing matrices before scoring.
    """
    cm = np.asarray(cm, dtype=np.int64)
    if cm.ndim != 2 or cm.shape[0] != cm.shape[1]:
        raise ValueError(f"cm must be square, got shape {cm.shape}")
    if cm.sum() == 0:
        return 1.0
    if cm.shape[0] == 2:
        if pos_label >= cm.shape[0]:
            return 0.0
        _, _, f1, _ = _per_class_prf(cm)
        return float(f1[pos_label])
    _, _, f1, _ = _per_class_prf(cm)
    return float(f1.mean())


def default_f1(
    y_true: np.ndarray, y_pred: np.ndarray, *, n_classes: int
) -> float:
    """The paper's F1 convention: binary F1 for 2 classes, macro otherwise.

    Empty inputs score 1.0 (vacuously perfect), which keeps the objective
    well-defined when a partition is empty (e.g. tcf splits with no
    outside-coverage test rows in tiny fixtures).
    """
    y_true = np.asarray(y_true)
    if y_true.size == 0:
        return 1.0
    average = "binary" if n_classes == 2 else "macro"
    return f1_score(y_true, y_pred, average=average, n_classes=n_classes)


def _check_same_length(a: np.ndarray, b: np.ndarray) -> None:
    if a.shape[0] != b.shape[0]:
        raise ValueError(
            f"y_true and y_pred lengths differ: {a.shape[0]} vs {b.shape[0]}"
        )
