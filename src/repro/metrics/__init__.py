"""Evaluation metrics: classification scores and model-rule agreement."""

from repro.metrics.agreement import mra_deterministic, mra_probabilistic
from repro.metrics.classification import (
    accuracy_score,
    confusion_matrix,
    default_f1,
    f1_score,
    precision_recall_f1,
)

__all__ = [
    "accuracy_score",
    "confusion_matrix",
    "f1_score",
    "default_f1",
    "precision_recall_f1",
    "mra_deterministic",
    "mra_probabilistic",
]
