"""Splice-junction equivalent: 60 nominal (DNA base) features, 3 classes.

Each feature is a base at one position of a 60-nucleotide window around a
candidate splice junction.  The generator plants donor (EI, "GT" right of
the junction) and acceptor (IE, "AG" left of the junction) consensus motifs
with positional noise — the same conjunctive positional structure that
makes rule learning effective on the real dataset.
"""

from __future__ import annotations

import numpy as np

from repro.data.dataset import Dataset
from repro.data.table import Table, make_schema
from repro.datasets.synthetic import resolve_size
from repro.utils.rng import RandomState, check_random_state

PAPER_N = 3190
DEFAULT_N = 1600

LABELS = ("EI", "IE", "N")

BASES = ("A", "C", "G", "T")
# Positions -30..-1, +1..+30 around the junction (UCI convention).
POSITIONS = tuple(
    f"pos{p:+d}" for p in list(range(-30, 0)) + list(range(1, 31))
)
_JUNCTION = 30  # index of pos+1 in POSITIONS


def load_splice(n: int | None = None, *, random_state: RandomState = 0) -> Dataset:
    """Generate the Splice-equivalent dataset."""
    rng = check_random_state(random_state)
    n = resolve_size(n, PAPER_N, DEFAULT_N)
    schema = make_schema(categorical={p: BASES for p in POSITIONS})

    # Class marginal roughly matches UCI splice: 25% EI, 25% IE, 50% N.
    y = rng.choice(3, size=n, p=[0.25, 0.25, 0.5]).astype(np.int64)
    codes = rng.integers(0, 4, size=(n, len(POSITIONS))).astype(np.int64)

    g, t, a, c = BASES.index("G"), BASES.index("T"), BASES.index("A"), BASES.index("C")

    def plant(rows: np.ndarray, col: int, base: int, fidelity: float) -> None:
        keep = rng.uniform(size=rows.size) < fidelity
        codes[rows[keep], col] = base

    ei = np.flatnonzero(y == 0)
    # Donor consensus: (C/A)AG | GT(A/G)AGT
    plant(ei, _JUNCTION, g, 0.95)
    plant(ei, _JUNCTION + 1, t, 0.95)
    plant(ei, _JUNCTION + 2, a, 0.6)
    plant(ei, _JUNCTION + 3, a, 0.7)
    plant(ei, _JUNCTION + 4, g, 0.8)
    plant(ei, _JUNCTION - 1, g, 0.8)
    plant(ei, _JUNCTION - 2, a, 0.6)

    ie = np.flatnonzero(y == 1)
    # Acceptor consensus: pyrimidine tract then AG | G
    plant(ie, _JUNCTION - 1, g, 0.95)
    plant(ie, _JUNCTION - 2, a, 0.95)
    plant(ie, _JUNCTION, g, 0.55)
    for offset in range(3, 12):
        pyrimidine = c if rng.uniform() < 0.5 else t
        plant(ie, _JUNCTION - offset, pyrimidine, 0.55)

    columns = {p: codes[:, i] for i, p in enumerate(POSITIONS)}
    return Dataset(Table(schema, columns, copy=False), y, LABELS)
