"""Dataset registry mirroring the paper's Table 1.

Datasets are registered by name in :data:`DATASETS`, an
:class:`~repro.engine.registry.InfoRegistry` keyed by dataset name.  Each
entry is a :class:`DatasetInfo` carrying the loader, the paper's Table 1
properties, and the paper's per-dataset experiment defaults (the §5.1
per-iteration generation count η).  New scenarios plug in without touching
this module::

    from repro.datasets import register_dataset

    register_dataset(
        "fraud", load_fraud, paper_instances=10_000,
        n_numeric=12, n_nominal=3, n_labels=2,
        default_instances=2_000, eta=100,
    )

after which ``"fraud"`` works everywhere a built-in name does — CLI,
:class:`~repro.experiments.ExperimentSpec`, ``load_dataset``.  Unknown
names fail with the registered list and a did-you-mean suggestion.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.data.dataset import Dataset
from repro.datasets.adult import DEFAULT_N as ADULT_N
from repro.datasets.adult import PAPER_N as ADULT_PAPER_N
from repro.datasets.adult import load_adult
from repro.datasets.breast_cancer import DEFAULT_N as BC_N
from repro.datasets.breast_cancer import PAPER_N as BC_PAPER_N
from repro.datasets.breast_cancer import load_breast_cancer
from repro.datasets.car import DEFAULT_N as CAR_N
from repro.datasets.car import PAPER_N as CAR_PAPER_N
from repro.datasets.car import load_car
from repro.datasets.contraceptive import DEFAULT_N as CMC_N
from repro.datasets.contraceptive import PAPER_N as CMC_PAPER_N
from repro.datasets.contraceptive import load_contraceptive
from repro.datasets.mushroom import DEFAULT_N as MUSH_N
from repro.datasets.mushroom import PAPER_N as MUSH_PAPER_N
from repro.datasets.mushroom import load_mushroom
from repro.datasets.nursery import DEFAULT_N as NURS_N
from repro.datasets.nursery import PAPER_N as NURS_PAPER_N
from repro.datasets.nursery import load_nursery
from repro.datasets.splice import DEFAULT_N as SPLICE_N
from repro.datasets.splice import PAPER_N as SPLICE_PAPER_N
from repro.datasets.splice import load_splice
from repro.datasets.wine import DEFAULT_N as WINE_N
from repro.datasets.wine import PAPER_N as WINE_PAPER_N
from repro.datasets.wine import load_wine
from repro.engine.registry import InfoRegistry
from repro.utils.rng import RandomState


@dataclass(frozen=True)
class DatasetInfo:
    """Registry entry: loader plus the paper's Table 1 properties.

    ``eta`` is the paper's §5.1 per-iteration generation count for this
    dataset (``None`` for datasets the paper does not configure; the
    uniform quota ``q·|D|/τ`` applies then).
    """

    name: str
    loader: Callable[..., Dataset]
    paper_instances: int
    n_numeric: int
    n_nominal: int
    n_labels: int
    default_instances: int
    eta: int | None = None

    @property
    def n_features(self) -> int:
        return self.n_numeric + self.n_nominal

    def load(self, n: int | None = None, *, random_state: RandomState = 0) -> Dataset:
        return self.loader(n, random_state=random_state)


#: Live dataset registry; supports ``DATASETS[name]`` / ``in`` / iteration.
DATASETS: InfoRegistry = InfoRegistry("dataset")


def register_dataset(
    name: str,
    loader: Callable[..., Dataset],
    *,
    paper_instances: int,
    n_numeric: int,
    n_nominal: int,
    n_labels: int,
    default_instances: int,
    eta: int | None = None,
    overwrite: bool = False,
) -> DatasetInfo:
    """Register a dataset loader under ``name``; returns its entry.

    ``loader(n, random_state=...)`` must return a
    :class:`~repro.data.dataset.Dataset`.  Registered names are accepted
    everywhere built-ins are (``load_dataset``, ``ExperimentSpec``, CLI).
    """
    info = DatasetInfo(
        name,
        loader,
        paper_instances,
        n_numeric,
        n_nominal,
        n_labels,
        default_instances,
        eta=eta,
    )
    DATASETS.register(name, info, overwrite=overwrite)
    return info


# The paper's eight benchmarks (Table 1) with their §5.1 η defaults.
register_dataset("adult", load_adult, paper_instances=ADULT_PAPER_N,
                 n_numeric=4, n_nominal=8, n_labels=2,
                 default_instances=ADULT_N, eta=200)
register_dataset("breast_cancer", load_breast_cancer, paper_instances=BC_PAPER_N,
                 n_numeric=32, n_nominal=0, n_labels=2,
                 default_instances=BC_N, eta=20)
register_dataset("nursery", load_nursery, paper_instances=NURS_PAPER_N,
                 n_numeric=0, n_nominal=8, n_labels=4,
                 default_instances=NURS_N, eta=50)
register_dataset("wine", load_wine, paper_instances=WINE_PAPER_N,
                 n_numeric=11, n_nominal=0, n_labels=7,
                 default_instances=WINE_N, eta=50)
register_dataset("mushroom", load_mushroom, paper_instances=MUSH_PAPER_N,
                 n_numeric=0, n_nominal=21, n_labels=2,
                 default_instances=MUSH_N, eta=50)
register_dataset("contraceptive", load_contraceptive, paper_instances=CMC_PAPER_N,
                 n_numeric=2, n_nominal=7, n_labels=3,
                 default_instances=CMC_N, eta=20)
register_dataset("car", load_car, paper_instances=CAR_PAPER_N,
                 n_numeric=0, n_nominal=6, n_labels=4,
                 default_instances=CAR_N, eta=20)
register_dataset("splice", load_splice, paper_instances=SPLICE_PAPER_N,
                 n_numeric=0, n_nominal=60, n_labels=3,
                 default_instances=SPLICE_N, eta=50)

BINARY_DATASETS = ("adult", "breast_cancer", "mushroom")


def load_dataset(
    name: str, n: int | None = None, *, random_state: RandomState = 0
) -> Dataset:
    """Load a registered dataset by name (did-you-mean on unknown names)."""
    return DATASETS[name].load(n, random_state=random_state)


def dataset_defaults(name: str) -> dict[str, object]:
    """The registered experiment defaults for ``name`` (currently η)."""
    info = DATASETS[name]
    return {"eta": info.eta}


def table1_rows() -> list[dict[str, object]]:
    """Rows of the paper's Table 1, as generated by this library."""
    rows = []
    for info in DATASETS.values():
        rows.append(
            {
                "dataset": info.name,
                "instances_paper": info.paper_instances,
                "features": f"{info.n_features}({info.n_numeric}/{info.n_nominal or '-'})",
                "labels": info.n_labels,
            }
        )
    return rows
