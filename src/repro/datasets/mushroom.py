"""Mushroom equivalent: 21 nominal features, 2 classes, 8 124 instances.

The real Mushroom data is (nearly) exactly rule-determined — odor alone is
a near-perfect predictor.  The generator plants the same style of crisp
rules (odor, spore print, gill size) with almost no noise, reproducing the
dataset's "easy" character the paper's high J̄ values reflect.
"""

from __future__ import annotations

from repro.data.dataset import Dataset
from repro.data.table import make_schema
from repro.datasets.synthetic import (
    PlantedRule,
    build_dataset,
    resolve_size,
    sample_categorical,
)
from repro.rules.clause import clause
from repro.rules.predicate import Predicate
from repro.utils.rng import RandomState, check_random_state

PAPER_N = 8124
DEFAULT_N = 2000

LABELS = ("edible", "poisonous")

_FEATURES: dict[str, tuple[str, ...]] = {
    "cap-shape": ("bell", "conical", "convex", "flat", "knobbed", "sunken"),
    "cap-surface": ("fibrous", "grooves", "scaly", "smooth"),
    "cap-color": ("brown", "buff", "gray", "green", "pink", "red", "white", "yellow"),
    "bruises": ("bruises", "no"),
    "odor": ("almond", "anise", "creosote", "fishy", "foul", "musty", "none", "pungent", "spicy"),
    "gill-attachment": ("attached", "free"),
    "gill-spacing": ("close", "crowded"),
    "gill-size": ("broad", "narrow"),
    "gill-color": ("black", "brown", "buff", "gray", "pink", "white", "yellow"),
    "stalk-shape": ("enlarging", "tapering"),
    "stalk-root": ("bulbous", "club", "equal", "rooted", "missing"),
    "stalk-surface-above": ("fibrous", "scaly", "silky", "smooth"),
    "stalk-surface-below": ("fibrous", "scaly", "silky", "smooth"),
    "stalk-color-above": ("brown", "buff", "gray", "orange", "pink", "white"),
    "stalk-color-below": ("brown", "buff", "gray", "orange", "pink", "white"),
    "veil-color": ("brown", "orange", "white", "yellow"),
    "ring-number": ("none", "one", "two"),
    "ring-type": ("evanescent", "flaring", "large", "none", "pendant"),
    "spore-print-color": ("black", "brown", "buff", "chocolate", "green", "white"),
    "population": ("abundant", "clustered", "numerous", "scattered", "several", "solitary"),
    "habitat": ("grasses", "leaves", "meadows", "paths", "urban", "waste", "woods"),
}


def load_mushroom(n: int | None = None, *, random_state: RandomState = 0) -> Dataset:
    """Generate the Mushroom-equivalent dataset."""
    rng = check_random_state(random_state)
    n = resolve_size(n, PAPER_N, DEFAULT_N)
    schema = make_schema(categorical=_FEATURES)
    columns = {
        name: sample_categorical(rng, n, len(cats)) for name, cats in _FEATURES.items()
    }

    rules = [
        PlantedRule(clause(Predicate("odor", "==", "foul")), 1),
        PlantedRule(clause(Predicate("odor", "==", "pungent")), 1),
        PlantedRule(clause(Predicate("odor", "==", "creosote")), 1),
        PlantedRule(clause(Predicate("odor", "==", "fishy")), 1),
        PlantedRule(clause(Predicate("spore-print-color", "==", "green")), 1),
        PlantedRule(
            clause(
                Predicate("odor", "==", "none"),
                Predicate("gill-size", "==", "narrow"),
                Predicate("population", "==", "clustered"),
            ),
            1,
        ),
        PlantedRule(clause(Predicate("odor", "==", "almond")), 0),
        PlantedRule(clause(Predicate("odor", "==", "anise")), 0),
    ]

    return build_dataset(
        schema, columns, rules, LABELS, default_class=0, noise=0.01, rng=rng
    )
