"""Shared machinery for the synthetic UCI-equivalent dataset generators.

No network access is available in this reproduction, so each of the paper's
eight UCI datasets (Table 1) is replaced by a seeded generator that matches
its schema (instance count, numeric/nominal feature split, class count) and
plants *conjunctive class structure*: labels are produced by a small
hand-written rule system over the features plus label noise.  That planted
structure is what FROTE's pipeline needs from the data — BRCG-style rule
explanations must exist, and feedback-rule coverages in the 5–25% band must
be constructible.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Mapping, Sequence

import numpy as np

from repro.data.dataset import Dataset
from repro.data.schema import Schema
from repro.data.table import Table
from repro.rules.clause import Clause
from repro.utils.rng import RandomState, check_random_state


@dataclass(frozen=True)
class PlantedRule:
    """One ground-truth labelling rule: IF clause THEN class."""

    clause: Clause
    target: int


def labels_from_planted_rules(
    table: Table,
    rules: Sequence[PlantedRule],
    *,
    default_class: int | Callable[[np.random.Generator, int], np.ndarray],
    n_classes: int,
    noise: float,
    rng: np.random.Generator,
) -> np.ndarray:
    """Assign labels by first-match over planted rules, then flip noise.

    ``default_class`` may be a fixed class code or a callable producing
    default labels for uncovered rows (for multi-class marginals).
    """
    n = table.n_rows
    if callable(default_class):
        y = np.asarray(default_class(rng, n), dtype=np.int64)
    else:
        y = np.full(n, int(default_class), dtype=np.int64)
    assigned = np.zeros(n, dtype=bool)
    for rule in rules:
        mask = rule.clause.mask(table) & ~assigned
        y[mask] = rule.target
        assigned |= mask
    if noise > 0:
        flip = rng.uniform(size=n) < noise
        y[flip] = rng.integers(0, n_classes, size=int(flip.sum()))
    return y


def sample_categorical(
    rng: np.random.Generator,
    n: int,
    n_categories: int,
    *,
    probs: Sequence[float] | None = None,
) -> np.ndarray:
    """Sample category codes, optionally with a non-uniform marginal."""
    if probs is None:
        return rng.integers(0, n_categories, size=n).astype(np.int64)
    p = np.asarray(probs, dtype=np.float64)
    p = p / p.sum()
    return rng.choice(n_categories, size=n, p=p).astype(np.int64)


def sample_mixture(
    rng: np.random.Generator,
    n: int,
    components: Sequence[tuple[float, float, float]],
) -> np.ndarray:
    """Sample from a 1-D Gaussian mixture given (weight, mean, std) triples."""
    weights = np.array([c[0] for c in components], dtype=np.float64)
    weights /= weights.sum()
    comp = rng.choice(len(components), size=n, p=weights)
    out = np.empty(n)
    for i, (_, mean, std) in enumerate(components):
        mask = comp == i
        out[mask] = rng.normal(mean, std, size=int(mask.sum()))
    return out


def build_dataset(
    schema: Schema,
    columns: Mapping[str, np.ndarray],
    rules: Sequence[PlantedRule],
    label_names: Sequence[str],
    *,
    default_class: int | Callable[[np.random.Generator, int], np.ndarray],
    noise: float,
    rng: np.random.Generator,
) -> Dataset:
    """Assemble a :class:`Dataset` from sampled columns and planted rules."""
    table = Table(schema, columns, copy=False)
    y = labels_from_planted_rules(
        table,
        rules,
        default_class=default_class,
        n_classes=len(tuple(label_names)),
        noise=noise,
        rng=rng,
    )
    return Dataset(table, y, label_names)


def resolve_size(n: int | None, paper_n: int, default_n: int) -> int:
    """Pick the generated size: explicit ``n``, else the scaled default.

    ``default_n`` keeps experiment suites laptop-fast; pass ``n=paper_n``
    to match the paper's instance counts exactly.
    """
    if n is None:
        return default_n
    if n < 10:
        raise ValueError(f"n must be >= 10, got {n}")
    return n
