"""Breast Cancer (WDBC) equivalent: 32 numeric features, 2 classes, 569 instances.

The real WDBC features are strongly correlated size/shape statistics; the
generator draws two class-conditional Gaussian clusters in a latent
(size, texture, concavity) space and derives the 32 observed features from
them with noise, reproducing the near-separable geometry the paper's box
plots show (J̄ close to 1 for most configurations).
"""

from __future__ import annotations

import numpy as np

from repro.data.dataset import Dataset
from repro.data.table import Table, make_schema
from repro.datasets.synthetic import resolve_size
from repro.utils.rng import RandomState, check_random_state

PAPER_N = 569
DEFAULT_N = 569

LABELS = ("benign", "malignant")

_STATS = ("mean", "se", "worst")
_BASES = (
    "radius",
    "texture",
    "perimeter",
    "area",
    "smoothness",
    "compactness",
    "concavity",
    "concave-points",
    "symmetry",
    "fractal-dim",
)
# 10 bases x 3 stats = 30, plus 2 extra aggregates to match Table 1's 32.
FEATURES = tuple(f"{b}-{s}" for s in _STATS for b in _BASES) + (
    "cell-density",
    "nucleus-score",
)

# How strongly each base feature separates the classes (malignant shift).
_SHIFT = {
    "radius": 1.8,
    "texture": 0.9,
    "perimeter": 1.8,
    "area": 1.9,
    "smoothness": 0.5,
    "compactness": 1.2,
    "concavity": 1.6,
    "concave-points": 1.9,
    "symmetry": 0.6,
    "fractal-dim": 0.1,
}


def load_breast_cancer(n: int | None = None, *, random_state: RandomState = 0) -> Dataset:
    """Generate the WDBC-equivalent dataset."""
    rng = check_random_state(random_state)
    n = resolve_size(n, PAPER_N, DEFAULT_N)
    schema = make_schema(numeric=list(FEATURES))

    # Class marginal matches WDBC (~37% malignant).
    y = (rng.uniform(size=n) < 0.37).astype(np.int64)
    # Latent severity: malignant cases score higher; modest overlap keeps
    # the task realistic while staying nearly linearly separable (real WDBC
    # logistic regression reaches ~0.97 accuracy).
    severity = rng.normal(0.0, 0.8, n) + 3.0 * y

    columns: dict[str, np.ndarray] = {}
    for stat_i, stat in enumerate(_STATS):
        stat_scale = (1.0, 0.35, 1.3)[stat_i]
        for base in _BASES:
            signal = _SHIFT[base] * stat_scale
            noise = rng.normal(0.0, 1.0, n)
            columns[f"{base}-{stat}"] = 10.0 + signal * severity + 1.5 * noise
    columns["cell-density"] = 5.0 + 1.1 * severity + rng.normal(0, 1.5, n)
    columns["nucleus-score"] = 1.0 + 0.9 * severity + rng.normal(0, 1.2, n)

    # Mild label noise keeps the task non-trivial.
    flip = rng.uniform(size=n) < 0.02
    y[flip] = 1 - y[flip]
    return Dataset(Table(schema, columns, copy=False), y, LABELS)
