"""Car Evaluation equivalent: 6 nominal features, 4 classes, 1 728 instances.

Like Nursery, the real Car labels come from a hand-built rule hierarchy
(price vs. technical characteristics); the generator plants an equivalent
cascade.
"""

from __future__ import annotations

from repro.data.dataset import Dataset
from repro.data.table import make_schema
from repro.datasets.synthetic import (
    PlantedRule,
    build_dataset,
    resolve_size,
    sample_categorical,
)
from repro.rules.clause import clause
from repro.rules.predicate import Predicate
from repro.utils.rng import RandomState, check_random_state

PAPER_N = 1728
DEFAULT_N = 1728

LABELS = ("unacc", "acc", "good", "vgood")

_BUYING = ("vhigh", "high", "med", "low")
_MAINT = ("vhigh", "high", "med", "low")
_DOORS = ("2", "3", "4", "5more")
_PERSONS = ("2", "4", "more")
_LUG_BOOT = ("small", "med", "big")
_SAFETY = ("low", "med", "high")


def load_car(n: int | None = None, *, random_state: RandomState = 0) -> Dataset:
    """Generate the Car-Evaluation-equivalent dataset."""
    rng = check_random_state(random_state)
    n = resolve_size(n, PAPER_N, DEFAULT_N)
    schema = make_schema(
        categorical={
            "buying": _BUYING,
            "maint": _MAINT,
            "doors": _DOORS,
            "persons": _PERSONS,
            "lug_boot": _LUG_BOOT,
            "safety": _SAFETY,
        }
    )
    columns = {
        "buying": sample_categorical(rng, n, 4),
        "maint": sample_categorical(rng, n, 4),
        "doors": sample_categorical(rng, n, 4),
        "persons": sample_categorical(rng, n, 3),
        "lug_boot": sample_categorical(rng, n, 3),
        "safety": sample_categorical(rng, n, 3),
    }

    rules = [
        PlantedRule(clause(Predicate("safety", "==", "low")), 0),
        PlantedRule(clause(Predicate("persons", "==", "2")), 0),
        PlantedRule(
            clause(
                Predicate("buying", "==", "vhigh"),
                Predicate("maint", "==", "vhigh"),
            ),
            0,
        ),
        PlantedRule(
            clause(
                Predicate("safety", "==", "high"),
                Predicate("buying", "==", "low"),
                Predicate("maint", "!=", "vhigh"),
            ),
            3,
        ),
        PlantedRule(
            clause(
                Predicate("safety", "==", "high"),
                Predicate("lug_boot", "==", "big"),
            ),
            2,
        ),
        PlantedRule(
            clause(
                Predicate("buying", "==", "low"),
                Predicate("safety", "==", "med"),
            ),
            2,
        ),
    ]

    return build_dataset(
        schema, columns, rules, LABELS, default_class=1, noise=0.05, rng=rng
    )
