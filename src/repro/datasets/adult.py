"""Adult (census income) equivalent: 12 features (4 numeric / 8 nominal), 2 classes.

Mirrors the UCI Adult schema the paper uses (after its preprocessing:
45 222 instances).  Labels encode the ">50K" decision via planted rules on
education, hours, age, capital gain, and occupation.
"""

from __future__ import annotations

import numpy as np

from repro.data.dataset import Dataset
from repro.data.table import make_schema
from repro.datasets.synthetic import (
    PlantedRule,
    build_dataset,
    resolve_size,
    sample_categorical,
    sample_mixture,
)
from repro.rules.clause import clause
from repro.rules.predicate import Predicate
from repro.utils.rng import RandomState, check_random_state

PAPER_N = 45222
DEFAULT_N = 3000

LABELS = ("<=50K", ">50K")

_WORKCLASS = ("private", "self-emp", "government", "other")
_EDUCATION = ("hs-grad", "some-college", "bachelors", "masters", "doctorate", "dropout")
_MARITAL = ("married", "never-married", "divorced", "widowed")
_OCCUPATION = ("tech", "craft", "sales", "admin", "service", "exec-managerial", "other")
_RELATIONSHIP = ("husband", "wife", "own-child", "unmarried", "other")
_RACE = ("white", "black", "asian", "amer-indian", "other")
_SEX = ("male", "female")
_COUNTRY = ("united-states", "mexico", "philippines", "germany", "other")


def load_adult(n: int | None = None, *, random_state: RandomState = 0) -> Dataset:
    """Generate the Adult-equivalent dataset."""
    rng = check_random_state(random_state)
    n = resolve_size(n, PAPER_N, DEFAULT_N)

    schema = make_schema(
        numeric=["age", "education-num", "capital-gain", "hours-per-week"],
        categorical={
            "workclass": _WORKCLASS,
            "education": _EDUCATION,
            "marital-status": _MARITAL,
            "occupation": _OCCUPATION,
            "relationship": _RELATIONSHIP,
            "race": _RACE,
            "sex": _SEX,
            "native-country": _COUNTRY,
        },
    )

    education = sample_categorical(rng, n, len(_EDUCATION), probs=[0.32, 0.22, 0.2, 0.12, 0.04, 0.10])
    # Education-num loosely tracks the education category.
    edu_base = np.array([9.0, 10.0, 13.0, 14.0, 16.0, 7.0])
    columns = {
        "age": np.clip(sample_mixture(rng, n, [(0.6, 37, 11), (0.4, 52, 9)]), 17, 90),
        "education-num": np.clip(edu_base[education] + rng.normal(0, 1.0, n), 1, 16),
        "capital-gain": np.where(
            rng.uniform(size=n) < 0.08, rng.exponential(12000, n), 0.0
        ),
        "hours-per-week": np.clip(sample_mixture(rng, n, [(0.7, 40, 6), (0.3, 50, 10)]), 1, 99),
        "workclass": sample_categorical(rng, n, len(_WORKCLASS), probs=[0.7, 0.1, 0.14, 0.06]),
        "education": education,
        "marital-status": sample_categorical(rng, n, len(_MARITAL), probs=[0.47, 0.32, 0.16, 0.05]),
        "occupation": sample_categorical(rng, n, len(_OCCUPATION)),
        "relationship": sample_categorical(rng, n, len(_RELATIONSHIP), probs=[0.4, 0.05, 0.15, 0.25, 0.15]),
        "race": sample_categorical(rng, n, len(_RACE), probs=[0.85, 0.09, 0.03, 0.01, 0.02]),
        "sex": sample_categorical(rng, n, len(_SEX), probs=[0.67, 0.33]),
        "native-country": sample_categorical(rng, n, len(_COUNTRY), probs=[0.9, 0.02, 0.02, 0.01, 0.05]),
    }

    rules = [
        PlantedRule(clause(Predicate("capital-gain", ">", 7000.0)), 1),
        PlantedRule(
            clause(
                Predicate("education-num", ">=", 13.0),
                Predicate("marital-status", "==", "married"),
                Predicate("hours-per-week", ">", 42.0),
            ),
            1,
        ),
        PlantedRule(
            clause(
                Predicate("occupation", "==", "exec-managerial"),
                Predicate("age", ">", 38.0),
            ),
            1,
        ),
        PlantedRule(
            clause(
                Predicate("education-num", ">=", 14.0),
                Predicate("age", ">", 33.0),
            ),
            1,
        ),
        PlantedRule(clause(Predicate("education", "==", "dropout")), 0),
        PlantedRule(clause(Predicate("age", "<", 25.0)), 0),
    ]

    return build_dataset(
        schema, columns, rules, LABELS, default_class=0, noise=0.08, rng=rng
    )
