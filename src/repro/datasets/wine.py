"""Wine Quality (white) equivalent: 11 numeric features, 7 classes, 4 898 instances.

Quality grades (codes 0..6 standing for scores 3..9) follow an ordinal
latent variable driven by alcohol, volatile acidity, and density, matching
the real data's heavy concentration in the middle grades.
"""

from __future__ import annotations

import numpy as np

from repro.data.dataset import Dataset
from repro.data.table import Table, make_schema
from repro.datasets.synthetic import resolve_size
from repro.utils.rng import RandomState, check_random_state

PAPER_N = 4898
DEFAULT_N = 2000

LABELS = ("q3", "q4", "q5", "q6", "q7", "q8", "q9")

FEATURES = (
    "fixed-acidity",
    "volatile-acidity",
    "citric-acid",
    "residual-sugar",
    "chlorides",
    "free-so2",
    "total-so2",
    "density",
    "ph",
    "sulphates",
    "alcohol",
)


def load_wine(n: int | None = None, *, random_state: RandomState = 0) -> Dataset:
    """Generate the white-wine-equivalent dataset."""
    rng = check_random_state(random_state)
    n = resolve_size(n, PAPER_N, DEFAULT_N)
    schema = make_schema(numeric=list(FEATURES))

    alcohol = np.clip(rng.normal(10.5, 1.2, n), 8.0, 14.2)
    volatile = np.clip(rng.gamma(4.0, 0.07, n), 0.05, 1.1)
    density = np.clip(0.997 - 0.0008 * (alcohol - 10.5) + rng.normal(0, 0.0015, n), 0.987, 1.004)
    residual = np.clip(rng.exponential(5.0, n), 0.5, 60.0)

    columns = {
        "fixed-acidity": np.clip(rng.normal(6.8, 0.8, n), 3.8, 14.2),
        "volatile-acidity": volatile,
        "citric-acid": np.clip(rng.normal(0.33, 0.12, n), 0.0, 1.7),
        "residual-sugar": residual,
        "chlorides": np.clip(rng.gamma(5.0, 0.009, n), 0.009, 0.35),
        "free-so2": np.clip(rng.normal(35, 17, n), 2, 290),
        "total-so2": np.clip(rng.normal(138, 42, n), 9, 440),
        "density": density,
        "ph": np.clip(rng.normal(3.19, 0.15, n), 2.7, 3.8),
        "sulphates": np.clip(rng.normal(0.49, 0.11, n), 0.2, 1.1),
        "alcohol": alcohol,
    }

    # Ordinal latent quality: alcohol up, volatile acidity down, density down.
    latent = (
        0.9 * (alcohol - 10.5)
        - 2.2 * (volatile - 0.28)
        - 250.0 * (density - 0.994)
        + rng.normal(0, 0.9, n)
    )
    # Cut points chosen so the marginal concentrates on q5/q6 like the
    # real data (scores 3 and 9 are rare).
    cuts = np.array([-3.4, -2.2, -0.6, 1.0, 2.4, 3.6])
    y = np.digitize(latent, cuts).astype(np.int64)
    return Dataset(Table(schema, columns, copy=False), y, LABELS)
