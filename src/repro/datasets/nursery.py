"""Nursery equivalent: 8 nominal features, 4 classes, 12 958 instances.

The UCI Nursery labels are a hand-crafted hierarchical rule system over
application attributes; the generator plants a comparable rule cascade
(parents' occupation, family finance, housing, health) over the same-shaped
schema.
"""

from __future__ import annotations

from repro.data.dataset import Dataset
from repro.data.table import make_schema
from repro.datasets.synthetic import (
    PlantedRule,
    build_dataset,
    resolve_size,
    sample_categorical,
)
from repro.rules.clause import clause
from repro.rules.predicate import Predicate
from repro.utils.rng import RandomState, check_random_state

PAPER_N = 12958
DEFAULT_N = 2500

LABELS = ("not_recom", "priority", "spec_prior", "very_recom")

_PARENTS = ("usual", "pretentious", "great_pret")
_HAS_NURS = ("proper", "less_proper", "improper", "critical", "very_crit")
_FORM = ("complete", "completed", "incomplete", "foster")
_CHILDREN = ("one", "two", "three", "more")
_HOUSING = ("convenient", "less_conv", "critical")
_FINANCE = ("convenient", "inconv")
_SOCIAL = ("nonprob", "slightly_prob", "problematic")
_HEALTH = ("recommended", "priority", "not_recom")


def load_nursery(n: int | None = None, *, random_state: RandomState = 0) -> Dataset:
    """Generate the Nursery-equivalent dataset."""
    rng = check_random_state(random_state)
    n = resolve_size(n, PAPER_N, DEFAULT_N)

    schema = make_schema(
        categorical={
            "parents": _PARENTS,
            "has_nurs": _HAS_NURS,
            "form": _FORM,
            "children": _CHILDREN,
            "housing": _HOUSING,
            "finance": _FINANCE,
            "social": _SOCIAL,
            "health": _HEALTH,
        }
    )
    columns = {
        "parents": sample_categorical(rng, n, len(_PARENTS)),
        "has_nurs": sample_categorical(rng, n, len(_HAS_NURS)),
        "form": sample_categorical(rng, n, len(_FORM)),
        "children": sample_categorical(rng, n, len(_CHILDREN)),
        "housing": sample_categorical(rng, n, len(_HOUSING)),
        "finance": sample_categorical(rng, n, len(_FINANCE)),
        "social": sample_categorical(rng, n, len(_SOCIAL)),
        "health": sample_categorical(rng, n, len(_HEALTH)),
    }

    # Cascade mimicking the original hierarchy: health dominates, then
    # parental/home conditions refine priority.
    rules = [
        PlantedRule(clause(Predicate("health", "==", "not_recom")), 0),
        PlantedRule(
            clause(
                Predicate("health", "==", "recommended"),
                Predicate("parents", "==", "usual"),
                Predicate("finance", "==", "convenient"),
            ),
            3,
        ),
        PlantedRule(
            clause(
                Predicate("health", "==", "recommended"),
                Predicate("social", "==", "nonprob"),
            ),
            3,
        ),
        PlantedRule(
            clause(
                Predicate("has_nurs", "==", "very_crit"),
            ),
            2,
        ),
        PlantedRule(
            clause(
                Predicate("parents", "==", "great_pret"),
                Predicate("housing", "==", "critical"),
            ),
            2,
        ),
        PlantedRule(clause(Predicate("health", "==", "priority")), 1),
    ]

    return build_dataset(
        schema, columns, rules, LABELS, default_class=1, noise=0.06, rng=rng
    )
