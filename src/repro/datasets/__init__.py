"""Synthetic UCI-equivalent datasets (paper Table 1)."""

from repro.datasets.adult import load_adult
from repro.datasets.base import (
    BINARY_DATASETS,
    DATASETS,
    DatasetInfo,
    dataset_defaults,
    load_dataset,
    register_dataset,
    table1_rows,
)
from repro.datasets.breast_cancer import load_breast_cancer
from repro.datasets.car import load_car
from repro.datasets.contraceptive import load_contraceptive
from repro.datasets.mushroom import load_mushroom
from repro.datasets.nursery import load_nursery
from repro.datasets.splice import load_splice
from repro.datasets.wine import load_wine

__all__ = [
    "DATASETS",
    "BINARY_DATASETS",
    "DatasetInfo",
    "register_dataset",
    "dataset_defaults",
    "load_dataset",
    "table1_rows",
    "load_adult",
    "load_breast_cancer",
    "load_car",
    "load_contraceptive",
    "load_mushroom",
    "load_nursery",
    "load_splice",
    "load_wine",
]
