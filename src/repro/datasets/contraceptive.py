"""Contraceptive Method Choice equivalent: 9 features (2 num / 7 nom), 3 classes.

The CMC task is famously noisy (best published accuracies ~55%); the
generator keeps weak planted structure and strong label noise to match that
difficulty, which the paper's larger FROTE gains on this dataset reflect.
"""

from __future__ import annotations

import numpy as np

from repro.data.dataset import Dataset
from repro.data.table import make_schema
from repro.datasets.synthetic import (
    PlantedRule,
    build_dataset,
    resolve_size,
    sample_categorical,
)
from repro.rules.clause import clause
from repro.rules.predicate import Predicate
from repro.utils.rng import RandomState, check_random_state

PAPER_N = 1473
DEFAULT_N = 1473

LABELS = ("no-use", "long-term", "short-term")

_EDU = ("low", "mid-low", "mid-high", "high")
_RELIGION = ("islam", "other")
_WORKING = ("yes", "no")
_OCC = ("prof", "clerical", "manual", "farm")
_SOLI = ("low", "mid-low", "mid-high", "high")
_MEDIA = ("good", "not-good")


def load_contraceptive(n: int | None = None, *, random_state: RandomState = 0) -> Dataset:
    """Generate the CMC-equivalent dataset."""
    rng = check_random_state(random_state)
    n = resolve_size(n, PAPER_N, DEFAULT_N)

    schema = make_schema(
        numeric=["wife-age", "n-children"],
        categorical={
            "wife-edu": _EDU,
            "husband-edu": _EDU,
            "wife-religion": _RELIGION,
            "wife-working": _WORKING,
            "husband-occ": _OCC,
            "sol-index": _SOLI,
            "media-exposure": _MEDIA,
        },
    )
    age = np.clip(rng.normal(32.5, 8.2, n), 16, 49)
    children = np.clip(rng.poisson(3.0, n).astype(float), 0, 16)
    columns = {
        "wife-age": age,
        "n-children": children,
        "wife-edu": sample_categorical(rng, n, 4, probs=[0.1, 0.22, 0.28, 0.4]),
        "husband-edu": sample_categorical(rng, n, 4, probs=[0.03, 0.12, 0.25, 0.6]),
        "wife-religion": sample_categorical(rng, n, 2, probs=[0.85, 0.15]),
        "wife-working": sample_categorical(rng, n, 2, probs=[0.25, 0.75]),
        "husband-occ": sample_categorical(rng, n, 4),
        "sol-index": sample_categorical(rng, n, 4, probs=[0.09, 0.15, 0.3, 0.46]),
        "media-exposure": sample_categorical(rng, n, 2, probs=[0.93, 0.07]),
    }

    rules = [
        PlantedRule(clause(Predicate("n-children", "==", 0.0)), 0),
        PlantedRule(
            clause(Predicate("wife-age", ">", 42.0)),
            0,
        ),
        PlantedRule(
            clause(
                Predicate("wife-edu", "==", "high"),
                Predicate("n-children", ">=", 3.0),
            ),
            1,
        ),
        PlantedRule(
            clause(
                Predicate("wife-age", "<", 30.0),
                Predicate("n-children", ">=", 1.0),
            ),
            2,
        ),
        PlantedRule(clause(Predicate("media-exposure", "==", "not-good")), 0),
    ]

    def default(rng_: np.random.Generator, size: int) -> np.ndarray:
        return rng_.choice(3, size=size, p=[0.42, 0.23, 0.35])

    return build_dataset(
        schema, columns, rules, LABELS, default_class=default, noise=0.25, rng=rng
    )
