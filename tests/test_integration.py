"""End-to-end integration tests: the full paper pipeline at small scale."""

import numpy as np
import pytest

from repro import FROTE, FroteConfig, FeedbackRuleSet, evaluate_model, parse_rule
from repro.data import coverage_aware_split
from repro.datasets import load_dataset
from repro.models import paper_algorithm
from repro.rules import draw_conflict_free, generate_feedback_pool, learn_model_explanation


@pytest.fixture(scope="module")
def car():
    return load_dataset("car", random_state=1)


@pytest.fixture(scope="module")
def car_pipeline(car):
    """Dataset -> model -> explanation -> feedback pool (shared)."""
    alg = paper_algorithm("LR")
    model = alg(car)
    expl = learn_model_explanation(car, model.predict(car.X))
    pool = generate_feedback_pool(car, expl, n_rules=30, random_state=2)
    return alg, pool


class TestFullPipeline:
    def test_frote_improves_test_j(self, car, car_pipeline):
        """The headline claim: FROTE raises test J̄ over the initial model."""
        alg, pool = car_pipeline
        rng = np.random.default_rng(42)
        frs = draw_conflict_free(pool, 3, car.X.schema, rng)
        assert frs is not None
        split = coverage_aware_split(
            car, frs.coverage_mask(car.X), tcf=0.1, random_state=42
        )
        initial = evaluate_model(alg(split.train), split.test, frs)
        result = FROTE(
            alg, frs, FroteConfig(tau=15, q=0.5, eta=20, random_state=42)
        ).run(split.train)
        final = evaluate_model(result.model, split.test, frs)
        assert final.j_weighted() > initial.j_weighted()
        assert final.mra > initial.mra

    def test_tcf_zero_new_rule_scenario(self, car, car_pipeline):
        """tcf = 0: rule has no training coverage; relaxation must kick in
        and FROTE must still raise MRA."""
        alg, pool = car_pipeline
        rng = np.random.default_rng(7)
        frs = draw_conflict_free(pool, 1, car.X.schema, rng)
        split = coverage_aware_split(
            car, frs.coverage_mask(car.X), tcf=0.0, random_state=7
        )
        assert frs.coverage_mask(split.train.X).sum() == 0
        initial = evaluate_model(alg(split.train), split.test, frs)
        result = FROTE(
            alg, frs,
            FroteConfig(tau=15, q=0.5, eta=20, mod_strategy="none", random_state=7),
        ).run(split.train)
        final = evaluate_model(result.model, split.test, frs)
        assert final.mra >= initial.mra

    def test_parse_rule_to_frote(self, car):
        """User-authored textual rule drives an edit end to end."""
        rule = parse_rule(
            "safety = 'low' AND buying = 'low' => acc",
            car.X.schema,
            car.label_names,
        )
        frs = FeedbackRuleSet((rule,))
        alg = paper_algorithm("LR")
        result = FROTE(
            alg, frs, FroteConfig(tau=8, q=0.3, eta=15, random_state=0)
        ).run(car)
        ev = evaluate_model(result.model, result.dataset, frs)
        assert ev.mra > 0.5

    def test_multiclass_gbdt_pipeline(self, car, car_pipeline):
        _, pool = car_pipeline
        alg = paper_algorithm("LGBM")
        rng = np.random.default_rng(3)
        frs = draw_conflict_free(pool, 2, car.X.schema, rng)
        split = coverage_aware_split(
            car, frs.coverage_mask(car.X), tcf=0.2, random_state=3
        )
        result = FROTE(
            alg, frs, FroteConfig(tau=6, q=0.5, eta=20, random_state=3)
        ).run(split.train)
        assert result.iterations <= 6
        assert evaluate_model(result.model, split.test, frs).j_weighted() > 0.0

    def test_mixed_type_dataset_pipeline(self):
        """Adult-like data exercises numeric + categorical generation."""
        ds = load_dataset("adult", n=600, random_state=0)
        alg = paper_algorithm("RF")
        model = alg(ds)
        expl = learn_model_explanation(ds, model.predict(ds.X))
        pool = generate_feedback_pool(ds, expl, n_rules=10, random_state=1)
        assert pool
        rng = np.random.default_rng(5)
        frs = draw_conflict_free(pool, 2, ds.X.schema, rng)
        assert frs is not None
        result = FROTE(
            alg, frs, FroteConfig(tau=5, q=0.3, eta=25, random_state=5)
        ).run(ds)
        if result.n_added:
            synth = result.dataset.X.take(np.arange(ds.n, result.dataset.n))
            covered = frs.coverage_mask(synth)
            assert covered.all()
