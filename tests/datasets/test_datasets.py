"""Tests for the synthetic UCI-equivalent datasets (paper Table 1)."""

import numpy as np
import pytest

from repro.datasets import BINARY_DATASETS, DATASETS, load_dataset, table1_rows

EXPECTED = {
    # name: (n_numeric, n_nominal, n_labels, paper_instances)
    "adult": (4, 8, 2, 45222),
    "breast_cancer": (32, 0, 2, 569),
    "nursery": (0, 8, 4, 12958),
    "wine": (11, 0, 7, 4898),
    "mushroom": (0, 21, 2, 8124),
    "contraceptive": (2, 7, 3, 1473),
    "car": (0, 6, 4, 1728),
    "splice": (0, 60, 3, 3190),
}


class TestRegistry:
    def test_all_eight_datasets_registered(self):
        assert set(DATASETS) == set(EXPECTED)

    @pytest.mark.parametrize("name", sorted(EXPECTED))
    def test_schema_matches_table1(self, name):
        info = DATASETS[name]
        n_num, n_nom, n_lab, paper_n = EXPECTED[name]
        assert info.n_numeric == n_num
        assert info.n_nominal == n_nom
        assert info.n_labels == n_lab
        assert info.paper_instances == paper_n

    @pytest.mark.parametrize("name", sorted(EXPECTED))
    def test_generated_data_matches_schema(self, name):
        ds = load_dataset(name, random_state=0)
        n_num, n_nom, n_lab, _ = EXPECTED[name]
        assert len(ds.X.schema.numeric_names) == n_num
        assert len(ds.X.schema.categorical_names) == n_nom
        assert ds.n_classes == n_lab

    @pytest.mark.parametrize("name", sorted(EXPECTED))
    def test_all_classes_present(self, name):
        ds = load_dataset(name, random_state=0)
        counts = ds.class_counts()
        assert (counts > 0).all(), f"{name}: empty class {counts}"

    @pytest.mark.parametrize("name", sorted(EXPECTED))
    def test_deterministic_generation(self, name):
        a = load_dataset(name, random_state=3)
        b = load_dataset(name, random_state=3)
        np.testing.assert_array_equal(a.y, b.y)
        col = a.X.schema.names[0]
        np.testing.assert_array_equal(a.X.column(col), b.X.column(col))

    @pytest.mark.parametrize("name", sorted(EXPECTED))
    def test_different_seeds_differ(self, name):
        a = load_dataset(name, random_state=1)
        b = load_dataset(name, random_state=2)
        assert not np.array_equal(a.y, b.y)

    def test_custom_size(self):
        ds = load_dataset("adult", n=500, random_state=0)
        assert ds.n == 500

    def test_too_small_size_raises(self):
        with pytest.raises(ValueError, match="n must be"):
            load_dataset("adult", n=5)

    def test_unknown_dataset_raises(self):
        with pytest.raises(KeyError, match="unknown dataset"):
            load_dataset("iris")

    def test_binary_datasets_are_binary(self):
        for name in BINARY_DATASETS:
            assert DATASETS[name].n_labels == 2

    def test_table1_rows_complete(self):
        rows = table1_rows()
        assert len(rows) == 8
        assert {r["dataset"] for r in rows} == set(EXPECTED)


class TestLearnability:
    """Each dataset must have planted structure a model can learn —
    otherwise rule explanations (and hence the whole pipeline) degenerate."""

    @pytest.mark.parametrize("name", ["adult", "mushroom", "car", "nursery"])
    def test_model_beats_majority_baseline(self, name):
        from repro.models import paper_algorithm

        ds = load_dataset(name, n=800, random_state=0)
        model = paper_algorithm("LGBM")(ds)
        acc = (model.predict(ds.X) == ds.y).mean()
        majority = ds.class_counts().max() / ds.n
        assert acc > majority + 0.05, f"{name}: acc={acc:.3f} vs maj={majority:.3f}"

    def test_breast_cancer_nearly_separable(self):
        from repro.models import paper_algorithm

        ds = load_dataset("breast_cancer", random_state=0)
        model = paper_algorithm("LR")(ds)
        assert (model.predict(ds.X) == ds.y).mean() > 0.9

    def test_splice_motifs_learnable(self):
        from repro.models import paper_algorithm

        ds = load_dataset("splice", n=800, random_state=0)
        model = paper_algorithm("LGBM")(ds)
        acc = (model.predict(ds.X) == ds.y).mean()
        assert acc > 0.7

    @pytest.mark.parametrize("name", sorted(EXPECTED))
    def test_feedback_pool_constructible(self, name):
        """Rules with 5-25% coverage must exist for every dataset."""
        from repro.models import paper_algorithm
        from repro.rules import generate_feedback_pool, learn_model_explanation

        ds = load_dataset(name, n=600, random_state=0)
        model = paper_algorithm("LGBM")(ds)
        expl = learn_model_explanation(ds, model.predict(ds.X))
        assert expl, f"{name}: no explanation rules"
        pool = generate_feedback_pool(
            ds, expl, n_rules=10, random_state=0, max_attempts=4000
        )
        assert len(pool) >= 3, f"{name}: pool too small ({len(pool)})"
