"""The public API surface advertised in the README must exist and work."""

import pytest


class TestImports:
    def test_top_level_exports(self):
        import repro

        for name in repro.__all__:
            assert hasattr(repro, name), f"missing export {name}"

    def test_version(self):
        import repro

        assert repro.__version__

    def test_subpackages_importable(self):
        import repro.baselines
        import repro.core
        import repro.data
        import repro.datasets
        import repro.engine
        import repro.experiments
        import repro.metrics
        import repro.models
        import repro.neighbors
        import repro.rules
        import repro.sampling
        import repro.utils

    def test_subpackage_alls_resolve(self):
        import importlib

        for mod_name in (
            "repro.data",
            "repro.rules",
            "repro.models",
            "repro.core",
            "repro.engine",
            "repro.sampling",
            "repro.neighbors",
            "repro.metrics",
            "repro.datasets",
            "repro.baselines",
            "repro.experiments",
            "repro.utils",
        ):
            mod = importlib.import_module(mod_name)
            for name in getattr(mod, "__all__", []):
                assert hasattr(mod, name), f"{mod_name} missing {name}"


class TestReadmeQuickstart:
    def test_docstring_example_runs(self):
        """The module docstring's quick-start must be executable."""
        from repro import FROTE, FroteConfig, FeedbackRuleSet, parse_rule
        from repro.datasets import load_dataset
        from repro.models import paper_algorithm

        data = load_dataset("adult", n=400, random_state=0)
        rule = parse_rule(
            "age < 29 AND education = 'bachelors' => >50K",
            data.X.schema,
            data.label_names,
        )
        frote = FROTE(
            paper_algorithm("RF"),
            FeedbackRuleSet((rule,)),
            FroteConfig(tau=3, q=0.2, eta=10, random_state=0),
        )
        result = frote.run(data)
        assert result.model.predict(data.X).shape == (data.n,)
