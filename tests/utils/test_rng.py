"""Tests for RNG normalization."""

import numpy as np
import pytest

from repro.utils.rng import check_random_state, spawn_rng


class TestCheckRandomState:
    def test_none_returns_generator(self):
        assert isinstance(check_random_state(None), np.random.Generator)

    def test_int_seed_is_reproducible(self):
        a = check_random_state(42).integers(0, 1000, 10)
        b = check_random_state(42).integers(0, 1000, 10)
        np.testing.assert_array_equal(a, b)

    def test_different_seeds_differ(self):
        a = check_random_state(1).integers(0, 10**9)
        b = check_random_state(2).integers(0, 10**9)
        assert a != b

    def test_numpy_integer_seed_accepted(self):
        g = check_random_state(np.int64(5))
        assert isinstance(g, np.random.Generator)

    def test_generator_passthrough(self):
        g = np.random.default_rng(0)
        assert check_random_state(g) is g

    def test_invalid_type_raises(self):
        with pytest.raises(TypeError, match="random_state"):
            check_random_state("seed")

    def test_legacy_randomstate_rejected(self):
        with pytest.raises(TypeError):
            check_random_state(np.random.RandomState(0))


class TestSpawnRng:
    def test_spawn_count(self):
        children = spawn_rng(check_random_state(0), 5)
        assert len(children) == 5

    def test_children_are_independent_streams(self):
        children = spawn_rng(check_random_state(0), 3)
        draws = [c.integers(0, 10**9) for c in children]
        assert len(set(draws)) == 3

    def test_spawn_reproducible(self):
        a = [g.integers(0, 10**9) for g in spawn_rng(check_random_state(7), 4)]
        b = [g.integers(0, 10**9) for g in spawn_rng(check_random_state(7), 4)]
        assert a == b

    def test_spawn_zero(self):
        assert spawn_rng(check_random_state(0), 0) == []

    def test_spawn_negative_raises(self):
        with pytest.raises(ValueError):
            spawn_rng(check_random_state(0), -1)
