"""Tests for validation helpers."""

import numpy as np
import pytest

from repro.utils.validation import (
    check_array_1d,
    check_array_2d,
    check_fraction,
    check_positive_int,
)


class TestCheckArray2d:
    def test_accepts_lists(self):
        out = check_array_2d([[1, 2], [3, 4]])
        assert out.shape == (2, 2)
        assert out.dtype == np.float64

    def test_rejects_1d(self):
        with pytest.raises(ValueError, match="2-dimensional"):
            check_array_2d([1, 2, 3])

    def test_rejects_nan(self):
        with pytest.raises(ValueError, match="NaN"):
            check_array_2d([[1.0, np.nan]])

    def test_rejects_inf(self):
        with pytest.raises(ValueError, match="infinite"):
            check_array_2d([[np.inf, 0.0]])

    def test_empty_ok(self):
        out = check_array_2d(np.zeros((0, 3)))
        assert out.shape == (0, 3)

    def test_name_in_error(self):
        with pytest.raises(ValueError, match="features"):
            check_array_2d([1.0], name="features")


class TestCheckArray1d:
    def test_accepts_list(self):
        out = check_array_1d([1, 2, 3], dtype=np.int64)
        assert out.dtype == np.int64

    def test_rejects_2d(self):
        with pytest.raises(ValueError, match="1-dimensional"):
            check_array_1d([[1], [2]])


class TestCheckFraction:
    def test_bounds_inclusive(self):
        assert check_fraction(0.0, name="f") == 0.0
        assert check_fraction(1.0, name="f") == 1.0

    def test_exclusive_low(self):
        with pytest.raises(ValueError):
            check_fraction(0.0, name="f", inclusive_low=False)

    def test_above_one_raises(self):
        with pytest.raises(ValueError, match="f must be in"):
            check_fraction(1.5, name="f")

    def test_negative_raises(self):
        with pytest.raises(ValueError):
            check_fraction(-0.1, name="f")


class TestCheckPositiveInt:
    def test_accepts_positive(self):
        assert check_positive_int(3, name="k") == 3

    def test_rejects_zero(self):
        with pytest.raises(ValueError):
            check_positive_int(0, name="k")

    def test_rejects_bool(self):
        with pytest.raises(TypeError):
            check_positive_int(True, name="k")

    def test_rejects_float(self):
        with pytest.raises(TypeError):
            check_positive_int(2.0, name="k")

    def test_accepts_numpy_int(self):
        assert check_positive_int(np.int32(4), name="k") == 4
