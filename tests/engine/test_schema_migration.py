"""Engine-level schema migration: apply_schema_delta over a live state,
the with_schema_migration schedule, and rule parking/deferral."""

import numpy as np
import pytest

import repro
from repro.data.evolution import (
    Migration,
    SchemaDelta,
    SchemaMigrationError,
    schema_fingerprint,
)
from repro.engine.migration import (
    SchemaMigrationRecord,
    apply_schema_delta,
    migration_from_jsonable,
    migration_to_jsonable,
)
from repro.feedback import ScriptedFeedbackSource


def base_session(dataset, frs, **cfg):
    return (
        repro.edit(dataset)
        .with_rules(frs)
        .with_algorithm("LR")
        .configure(**{"tau": 4, "q": 0.5, "random_state": 0, **cfg})
    )


@pytest.fixture
def live_state(mixed_dataset, single_rule_frs):
    """A state after engine setup: active dataset, fitted model, caches."""
    session = base_session(mixed_dataset, single_rule_frs)
    state = session.build_state()
    session.build_engine().initialize(state)
    return state


class TestApplySchemaDelta:
    def test_add_column_migrates_dataset_and_refits(self, live_state):
        old_model = live_state.model
        old_version = live_state.dataset_version
        record = apply_schema_delta(
            live_state, SchemaDelta.add_column("tenure", fill=3.0)
        )
        assert isinstance(record, SchemaMigrationRecord)
        assert record.model_refit
        assert "tenure" in live_state.active.X.schema.names
        np.testing.assert_array_equal(
            live_state.active.X.column("tenure"),
            np.full(live_state.active.n, 3.0),
        )
        assert live_state.model is not old_model  # deterministic refit
        assert live_state.dataset_version != old_version
        assert live_state.schema_log == [record]

    def test_rename_survives_without_refit(self, live_state):
        old_model = live_state.model
        record = apply_schema_delta(
            live_state, SchemaDelta.rename_column("income", "annual_income")
        )
        assert not record.model_refit
        assert live_state.model is old_model  # encoder migrated symbolically
        assert "annual_income" in live_state.active.X.schema.names
        # Rules migrated in lockstep: none still references the old name.
        for rule in live_state.frs.rules:
            assert "income" not in rule.clause.attributes

    def test_assignment_cache_rekeyed_not_recomputed(self, live_state):
        assign = live_state.active_assignment()
        apply_schema_delta(live_state, SchemaDelta.add_column("tenure"))
        version, cached = live_state.assign_cache
        assert version == live_state.dataset_version
        assert cached is assign  # the array survived, re-keyed

    def test_version_lineage_content_hashed(self, live_state, mixed_dataset,
                                            single_rule_frs):
        delta = SchemaDelta.add_column("tenure", fill=1.0)
        record = apply_schema_delta(live_state, delta)
        assert record.parent == schema_fingerprint(mixed_dataset.X.schema)
        # An independent state applying the same delta derives the same token.
        session = base_session(mixed_dataset, single_rule_frs)
        other = session.build_state()
        session.build_engine().initialize(other)
        assert apply_schema_delta(other, delta).version == record.version

    def test_refused_delta_is_a_clean_noop(self, live_state):
        before_schema = live_state.active.X.schema
        before_version = live_state.dataset_version
        before_model = live_state.model
        with pytest.raises(SchemaMigrationError, match="references column"):
            apply_schema_delta(live_state, SchemaDelta.drop_column("age"))
        assert live_state.active.X.schema == before_schema
        assert live_state.dataset_version == before_version
        assert live_state.model is before_model
        assert live_state.schema_log == []

    def test_emits_schema_event(self, live_state):
        events = []
        live_state.listeners.append(events.append)
        record = apply_schema_delta(live_state, SchemaDelta.add_column("t"))
        kinds = [e.kind for e in events]
        assert "schema" in kinds
        assert events[kinds.index("schema")].schema is record

    def test_reevaluates_under_migrated_state(self, live_state):
        apply_schema_delta(live_state, SchemaDelta.add_column("t"))
        assert live_state.evaluation is not None
        assert np.isfinite(live_state.best_loss)
        assert live_state.population_stale

    def test_record_jsonable_roundtrip(self, live_state):
        record = apply_schema_delta(
            live_state, SchemaDelta.rename_column("color", "hue"),
            provenance="ops",
        )
        assert migration_from_jsonable(migration_to_jsonable(record)) == record


class TestScheduledMigrations:
    def test_migration_lands_at_its_boundary(self, mixed_dataset,
                                             single_rule_frs):
        result = (
            base_session(mixed_dataset, single_rule_frs)
            .with_schema_migration(2, SchemaDelta.add_column("tenure", fill=1.0))
            .run()
        )
        assert [r.iteration for r in result.schema_log] == [2]
        assert result.schema_log[0].provenance == "scheduled@2"
        assert "tenure" in result.dataset.X.schema.names
        assert result.dataset.X.column("tenure").shape[0] == result.dataset.n

    def test_rename_migrates_final_ruleset(self, mixed_dataset,
                                           single_rule_frs):
        result = (
            base_session(mixed_dataset, single_rule_frs)
            .with_schema_migration(1, SchemaDelta.rename_column("age", "years"))
            .run()
        )
        assert "years" in result.dataset.X.schema.names
        assert all(
            "age" not in r.clause.attributes for r in result.frs.rules
        )

    def test_whole_migration_expands_in_order(self, mixed_dataset,
                                              single_rule_frs):
        migration = Migration(
            (
                SchemaDelta.add_column("tenure"),
                SchemaDelta.rename_column("tenure", "years"),
            ),
            name="v2",
        )
        result = (
            base_session(mixed_dataset, single_rule_frs)
            .with_schema_migration(1, migration)
            .run()
        )
        assert [r.delta.op for r in result.schema_log] == [
            "add_column", "rename_column",
        ]
        assert "years" in result.dataset.X.schema.names

    def test_rejects_non_delta(self, mixed_dataset):
        with pytest.raises(TypeError, match="SchemaDelta or Migration"):
            repro.edit(mixed_dataset).with_schema_migration(1, "drop age")

    def test_rejects_negative_iteration(self, mixed_dataset):
        with pytest.raises(ValueError, match=">= 0"):
            repro.edit(mixed_dataset).with_schema_migration(
                -1, SchemaDelta.add_column("t")
            )

    def test_frozen_run_has_empty_schema_log(self, mixed_dataset,
                                             single_rule_frs):
        result = base_session(mixed_dataset, single_rule_frs).run()
        assert result.schema_log == []

    def test_frozen_path_unchanged_by_migration_machinery(
        self, mixed_dataset, single_rule_frs
    ):
        """A schedule-bearing session whose boundary is never reached is
        bit-identical to a plain run (the no-delta default path)."""
        plain = base_session(mixed_dataset, single_rule_frs, tau=2).run()
        armed = (
            base_session(mixed_dataset, single_rule_frs, tau=2)
            .with_schema_migration(50, SchemaDelta.add_column("never"))
            .run()
        )
        assert armed.history == plain.history
        assert armed.schema_log == []
        np.testing.assert_array_equal(armed.dataset.y, plain.dataset.y)
        for name in plain.dataset.X.schema.names:
            np.testing.assert_array_equal(
                armed.dataset.X.column(name), plain.dataset.X.column(name)
            )


class TestParkingAndDeferral:
    def test_scheduled_rule_parks_until_column_lands(self, mixed_dataset,
                                                     single_rule_frs):
        result = (
            base_session(mixed_dataset, single_rule_frs, tau=5)
            .with_scheduled_rules(1, "tenure > 2 => approve")
            .with_schema_migration(3, SchemaDelta.add_column("tenure", fill=3.0))
            .run()
        )
        assert [r.iteration for r in result.schema_log] == [3]
        applied = [
            d
            for d in result.ruleset_log
            if any("tenure" in r.clause.attributes for r in d.rules_added)
        ]
        assert len(applied) == 1
        assert applied[0].iteration >= 3  # waited for the column
        assert any(
            "tenure" in r.clause.attributes for r in result.frs.rules
        )

    def test_streamed_migration_then_dependent_rule_same_boundary(
        self, mixed_dataset, single_rule_frs
    ):
        source = ScriptedFeedbackSource(
            {2: [SchemaDelta.add_column("tenure", fill=3.0)]}
        )
        result = (
            base_session(mixed_dataset, single_rule_frs, tau=5)
            .with_feedback(source)
            .with_scheduled_rules(2, "tenure > 2 => approve")
            .run()
        )
        # Migration applies before the same boundary's scheduled rule.
        assert [r.iteration for r in result.schema_log] == [2]
        assert any(
            "tenure" in r.clause.attributes for r in result.frs.rules
        )

    def test_unknown_attribute_string_defers_but_bad_syntax_raises(
        self, mixed_dataset
    ):
        session = repro.edit(mixed_dataset)
        session.with_scheduled_rules(1, "tenure > 2 => approve")  # defers
        with pytest.raises(Exception, match="age"):
            # Bad value for an existing column can never be fixed by a
            # migration: it must raise eagerly.
            session.with_scheduled_rules(1, "age > 'abc' => approve")
