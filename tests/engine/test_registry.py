"""Tests for the strategy registries (repro.engine.registry)."""

import pytest

from repro.engine import (
    MODIFIERS,
    OBJECTIVES,
    SAMPLERS,
    SELECTORS,
    Registry,
    RegistryError,
    register_selector,
)


class TestRegistryBasics:
    def test_register_and_create(self):
        reg = Registry("widget")

        @reg.register("basic")
        class Basic:
            def __init__(self, size=1):
                self.size = size

        assert "basic" in reg
        assert reg.names() == ("basic",)
        assert isinstance(reg.create("basic"), Basic)
        assert reg.create("basic", size=3).size == 3

    def test_duplicate_rejected(self):
        reg = Registry("widget")
        reg.register("a", object())
        with pytest.raises(RegistryError, match="already registered"):
            reg.register("a", object())

    def test_duplicate_with_overwrite(self):
        reg = Registry("widget")
        reg.register("a", 1)
        reg.register("a", 2, overwrite=True)
        assert reg.get("a") == 2

    def test_unregister(self):
        reg = Registry("widget")
        reg.register("a", 1)
        reg.unregister("a")
        assert "a" not in reg
        reg.unregister("a")  # idempotent

    def test_registry_error_is_value_error(self):
        assert issubclass(RegistryError, ValueError)


class TestErrorMessages:
    def test_unknown_lists_registered(self):
        reg = Registry("widget")
        reg.register("alpha", 1)
        reg.register("beta", 2)
        with pytest.raises(RegistryError, match="alpha, beta"):
            reg.get("gamma")

    def test_did_you_mean(self):
        reg = Registry("widget")
        reg.register("random", 1)
        with pytest.raises(RegistryError, match="did you mean 'random'"):
            reg.get("randm")

    def test_kind_in_message(self):
        with pytest.raises(RegistryError, match="unknown selection strategy"):
            SELECTORS.get("no-such-selector")

    def test_user_plugins_enumerated(self):
        @register_selector("test-enumerated-plugin")
        class Plugin:
            pass

        try:
            with pytest.raises(RegistryError, match="test-enumerated-plugin"):
                SELECTORS.get("bogus-name-xyz")
        finally:
            SELECTORS.unregister("test-enumerated-plugin")


class TestLazyEntries:
    def test_lazy_resolves_on_get(self):
        reg = Registry("widget")
        reg.register_lazy("lr", "repro.models.logistic:LogisticRegression")
        from repro.models.logistic import LogisticRegression

        assert reg.get("lr") is LogisticRegression

    def test_lazy_listed_without_import(self):
        reg = Registry("widget")
        reg.register_lazy("ghost", "no.such.module:Nothing")
        assert "ghost" in reg.names()
        reg.validate("ghost")  # must not import

    def test_concrete_overrides_lazy(self):
        reg = Registry("widget")
        reg.register_lazy("x", "no.such.module:Nothing")
        reg.register("x", 42)  # no overwrite flag needed over a lazy entry
        assert reg.get("x") == 42


class TestBuiltins:
    def test_selectors(self):
        assert set(SELECTORS.names()) >= {"random", "ip", "online"}

    def test_modifiers(self):
        assert set(MODIFIERS.names()) >= {"none", "relabel", "drop"}

    def test_samplers(self):
        assert set(SAMPLERS.names()) >= {"smote", "adasyn", "borderline"}

    def test_objectives(self):
        assert set(OBJECTIVES.names()) >= {"equal", "weighted"}

    def test_sampler_create(self):
        from repro.sampling import SMOTE

        sampler = SAMPLERS.create("smote", k=3)
        assert isinstance(sampler, SMOTE)
        assert sampler.k == 3

    def test_make_sampler_consumes_registry(self):
        from repro.engine import register_sampler
        from repro.sampling import make_sampler

        @register_sampler("identity-test-sampler")
        class Identity:
            def fit_resample(self, dataset):
                return dataset

        try:
            assert isinstance(make_sampler("identity-test-sampler"), Identity)
        finally:
            SAMPLERS.unregister("identity-test-sampler")
