"""Incremental-vs-rebuild parity for whole edit runs, and stage timings.

The incremental path (``configure(incremental=True)``) must change *when*
work happens, never *what* is computed: a session driven with partial
model refits, staged candidates, and delta-extended caches produces the
same run as the default rebuild path.
"""

import numpy as np
import pytest

import repro
from repro.data import Dataset, Table, make_schema
from repro.models import GaussianNB, KNeighborsClassifier, make_algorithm

SCHEMA = make_schema(
    numeric=["age", "income"], categorical={"marital": ("single", "married")}
)


def make_dataset(n=260, seed=0):
    rng = np.random.default_rng(seed)
    age = rng.uniform(18, 80, size=n)
    income = rng.uniform(10, 200, size=n)
    marital = rng.integers(0, 2, size=n)
    table = Table(SCHEMA, {"age": age, "income": income, "marital": marital})
    y = ((age < 40) & (income > 100)).astype(np.int64)
    noise = rng.uniform(size=n) < 0.05
    y[noise] = 1 - y[noise]
    return Dataset(table, y, ("deny", "approve"))


RULES = (
    "age < 35 => approve",
    "income < 40 AND marital = 'single' => deny",
)


def run_session(dataset, algorithm, *, incremental, tau=8, seed=3):
    return (
        repro.edit(dataset)
        .with_rules(*RULES)
        .with_algorithm(algorithm)
        .configure(tau=tau, q=0.5, random_state=seed, incremental=incremental)
        .run()
    )


def assert_same_run(a, b, *, loss_exact=True):
    assert a.n_added == b.n_added
    assert a.iterations == b.iterations
    assert [r.accepted for r in a.history] == [r.accepted for r in b.history]
    assert [r.n_generated for r in a.history] == [r.n_generated for r in b.history]
    if loss_exact:
        assert [r.candidate_loss for r in a.history] == [
            r.candidate_loss for r in b.history
        ]
    assert a.dataset.n == b.dataset.n
    np.testing.assert_array_equal(a.dataset.y, b.dataset.y)
    for name in a.dataset.X.schema.names:
        np.testing.assert_array_equal(
            a.dataset.X.column(name), b.dataset.X.column(name)
        )


class TestIncrementalRunParity:
    def test_knn_incremental_bit_identical(self):
        """KNN partial refits are exact, so whole runs match bit-for-bit."""
        dataset = make_dataset()
        algorithm = make_algorithm(
            lambda: KNeighborsClassifier(k=3), standardize=False
        )
        rebuild = run_session(dataset, algorithm, incremental=False)
        incremental = run_session(dataset, algorithm, incremental=True)
        assert rebuild.accepted_iterations > 0  # the comparison must bite
        assert_same_run(rebuild, incremental)
        assert (
            incremental.final_evaluation.j_weighted()
            == rebuild.final_evaluation.j_weighted()
        )

    def test_brute_knn_bit_identical_on_tie_heavy_categorical_data(self):
        """Brute KNN is tie-proof: same matrix ⇒ same distance matrix ⇒
        same top-k, so even all-categorical data (exact distance ties
        everywhere under the overlap metric) runs identically."""
        from repro.datasets import load_dataset

        data = load_dataset("car", n=300, random_state=0)
        algorithm = make_algorithm(
            lambda: KNeighborsClassifier(k=3, algorithm="brute"),
            standardize=False,
        )
        def run(incremental):
            return (
                repro.edit(data)
                .with_rules("buying = 'low' AND safety = 'high' => acc")
                .with_algorithm(algorithm)
                .configure(tau=6, q=0.5, eta=10, random_state=3)
                .incremental(incremental)
                .run()
            )
        rebuild, incremental = run(False), run(True)
        assert rebuild.accepted_iterations > 0
        assert_same_run(rebuild, incremental)

    def test_nb_incremental_matches_within_rounding(self):
        """NB folds exact moments; only float association differs."""
        dataset = make_dataset(seed=1)
        algorithm = make_algorithm(lambda: GaussianNB(), standardize=False)
        rebuild = run_session(dataset, algorithm, incremental=False)
        incremental = run_session(dataset, algorithm, incremental=True)
        assert_same_run(rebuild, incremental, loss_exact=False)
        for ra, rb in zip(rebuild.history, incremental.history):
            assert ra.candidate_loss == pytest.approx(rb.candidate_loss, abs=1e-9)

    def test_unsupported_model_incremental_is_noop(self):
        """Models without the protocol silently use the rebuild path."""
        dataset = make_dataset(seed=2)
        rebuild = run_session(dataset, "LR", incremental=False)
        incremental = run_session(dataset, "LR", incremental=True)
        assert_same_run(rebuild, incremental)

    def test_resume_from_prior_result(self):
        """Warm starts keep working on top of builder-backed actives."""
        dataset = make_dataset(seed=4)
        algorithm = make_algorithm(
            lambda: KNeighborsClassifier(k=3), standardize=False
        )
        first = run_session(dataset, algorithm, incremental=True, tau=4)
        resumed = (
            repro.edit(dataset)
            .with_rules(*RULES)
            .with_algorithm(algorithm)
            .configure(tau=3, q=0.5, random_state=9, incremental=True)
            .resume_from(first)
            .run()
        )
        assert resumed.iterations == first.iterations + 3
        assert resumed.n_added >= first.n_added


class TestCustomRebuildStages:
    def test_mid_loop_mutation_is_not_resurrected_by_the_builder(self):
        """A custom stage that replaces ``active`` (same row count) and
        records a rebuild must not have its mutation silently reverted
        by acceptance staging onto the old builder rows."""
        from repro.engine import (
            AcceptanceStage,
            GenerationStage,
            PreselectStage,
            SelectionStage,
        )

        class FlipFirstLabel:
            def run(self, state):
                y = state.active.y.copy()
                y[0] = 1
                state.active = Dataset(state.active.X, y, state.active.label_names)
                state.record_rebuild("flip-first-label")

        dataset = make_dataset(seed=7)
        result = (
            repro.edit(dataset)
            .with_rules(*RULES)
            .with_algorithm("LR")
            .configure(tau=5, q=0.5, random_state=1, accept_equal=True)
            .with_stages(
                PreselectStage(),
                SelectionStage(),
                GenerationStage(),
                FlipFirstLabel(),
                AcceptanceStage(),
            )
            .run()
        )
        assert result.accepted_iterations >= 1
        assert result.dataset.y[0] == 1  # the mutation survived acceptance


class TestStageTimings:
    def test_events_carry_stage_seconds(self):
        dataset = make_dataset(seed=5)
        events = []
        (
            repro.edit(dataset)
            .with_rules(*RULES)
            .with_algorithm("LR")
            .configure(tau=3, q=0.5, random_state=0)
            .on_iteration(events.append)
            .run()
        )
        assert events
        for event in events:
            assert event.stage_seconds is not None
            assert set(event.stage_seconds) >= {
                "PreselectStage",
                "SelectionStage",
                "GenerationStage",
                "AcceptanceStage",
            }
            assert all(s >= 0 for s in event.stage_seconds.values())
            assert event.iteration_seconds == sum(event.stage_seconds.values())

    def test_started_event_has_no_timings(self):
        dataset = make_dataset(seed=6)
        events = []
        (
            repro.edit(dataset)
            .with_rules(*RULES)
            .with_algorithm("LR")
            .configure(tau=2, q=0.5, random_state=0)
            .on_event(events.append)
            .run()
        )
        started = [e for e in events if e.kind == "started"]
        assert started and started[0].stage_seconds is None
        assert started[0].iteration_seconds is None