"""Out-of-core session tests: the sharded path is bit-identical to dense."""

import numpy as np
import pytest

import repro
from repro.core.config import FroteConfig
from repro.data import Dataset, ShardedTable
from repro.engine.state import EditState
from repro.perf.hotpaths import synthetic_mixed_table


def make_dataset(n=1200, seed=42):
    table = synthetic_mixed_table(n, seed)
    rng = np.random.default_rng(seed + 1)
    y = ((table.column("age") < 40) & (table.column("income") > 100)).astype(np.int64)
    noise = rng.uniform(size=n) < 0.05
    y[noise] = 1 - y[noise]
    return Dataset(table, y, ("deny", "approve"))


def session(dataset, **configure):
    return (
        repro.edit(dataset)
        .with_rules(
            "age < 35 => approve",
            "income < 40 AND marital = 'single' => deny",
        )
        .with_algorithm("LR")
        .configure(tau=6, q=0.5, random_state=42, **configure)
    )


class TestOutOfCoreSession:
    def test_bit_identical_to_dense_path(self):
        """The ISSUE acceptance criterion at test scale: a full edit-loop
        run with a resident budget far below the dense size produces a
        bit-identical FroteResult, with real spills along the way."""
        dataset = make_dataset()
        dense = session(dataset).run()
        ooc = session(dataset).out_of_core(0.01, shard_rows=128).run()

        assert isinstance(ooc.dataset.X, ShardedTable)
        stats = ooc.dataset.X.storage_stats()
        assert stats["n_spilled"] > 0  # the budget actually bound storage
        assert dense.n_added == ooc.n_added and dense.n_added > 0
        for name in dataset.X.schema.names:
            np.testing.assert_array_equal(
                ooc.dataset.X.column(name), dense.dataset.X.column(name)
            )
        np.testing.assert_array_equal(ooc.dataset.y, dense.dataset.y)
        assert [
            (r.candidate_loss, r.accepted, r.n_generated) for r in dense.history
        ] == [(r.candidate_loss, r.accepted, r.n_generated) for r in ooc.history]
        assert dense.final_evaluation.mra == ooc.final_evaluation.mra
        assert dense.final_evaluation.f1_outside == ooc.final_evaluation.f1_outside

    def test_incremental_composes_with_out_of_core(self):
        dataset = make_dataset(800, seed=7)
        dense = session(dataset, incremental=True).run()
        ooc = (
            session(dataset, incremental=True)
            .out_of_core(0.01, shard_rows=64)
            .run()
        )
        np.testing.assert_array_equal(ooc.dataset.y, dense.dataset.y)
        assert [r.candidate_loss for r in dense.history] == [
            r.candidate_loss for r in ooc.history
        ]

    def test_spill_dir_is_honoured(self, tmp_path):
        dataset = make_dataset(600, seed=3)
        result = (
            session(dataset)
            .out_of_core(0.005, shard_rows=64, spill_dir=str(tmp_path))
            .run()
        )
        # The result keeps its storage alive, so the private spill
        # directory (and its shard files) exist under the base we chose.
        subdirs = list(tmp_path.iterdir())
        assert subdirs and any(any(d.iterdir()) for d in subdirs)
        assert result.dataset.X.column("age").shape[0] == result.dataset.n

    def test_resume_from_out_of_core_result(self):
        dataset = make_dataset(600, seed=5)
        prior = session(dataset).out_of_core(0.005, shard_rows=64).run()
        resumed = (
            session(dataset)
            .resume_from(prior)
            .run()
        )
        assert resumed.iterations == prior.iterations + 6
        assert resumed.dataset.n >= prior.dataset.n


class TestConfigValidation:
    def test_budget_must_be_positive(self):
        with pytest.raises(ValueError, match="max_resident_mb"):
            FroteConfig(max_resident_mb=0)
        with pytest.raises(ValueError, match="max_resident_mb"):
            FroteConfig(max_resident_mb=-1.5)

    def test_shard_rows_requires_budget(self):
        with pytest.raises(ValueError, match="max_resident_mb"):
            FroteConfig(shard_rows=1024)
        with pytest.raises(ValueError, match="shard_rows"):
            FroteConfig(max_resident_mb=8, shard_rows=0)

    def test_spill_dir_requires_budget(self):
        with pytest.raises(ValueError, match="max_resident_mb"):
            FroteConfig(spill_dir="/tmp")

    def test_defaults_stay_dense(self):
        assert FroteConfig().max_resident_mb is None


class TestMakeBuilder:
    def test_policy_selection(self, tmp_path):
        dataset = make_dataset(100, seed=9)
        dense_state = EditState(config=FroteConfig())
        assert dense_state.make_builder(dataset).policy is None
        ooc_state = EditState(
            config=FroteConfig(
                max_resident_mb=1.0, shard_rows=32, spill_dir=str(tmp_path)
            )
        )
        builder = ooc_state.make_builder(dataset)
        assert builder.policy is not None
        assert builder.policy.shard_rows == 32
        assert builder.policy.spill.path.parent == tmp_path
        assert isinstance(builder.snapshot().X, ShardedTable)

    def test_fresh_policy_per_builder(self):
        dataset = make_dataset(100, seed=9)
        state = EditState(config=FroteConfig(max_resident_mb=1.0))
        a = state.make_builder(dataset)
        b = state.make_builder(dataset)
        assert a.policy is not b.policy
        assert a.policy.spill.path != b.policy.spill.path


class TestSessionSugar:
    def test_out_of_core_configures(self):
        dataset = make_dataset(100, seed=11)
        state = (
            session(dataset)
            .out_of_core(16, shard_rows=256, spill_dir="/tmp")
            .build_state()
        )
        assert state.config.max_resident_mb == 16
        assert state.config.shard_rows == 256
        assert state.config.spill_dir == "/tmp"

    def test_out_of_core_does_not_clobber_prior_configure(self):
        """configure() merge semantics: a bare out_of_core(budget) keeps
        shard_rows/spill_dir set by an earlier call."""
        dataset = make_dataset(100, seed=11)
        state = (
            session(dataset)
            .configure(shard_rows=512, max_resident_mb=1, spill_dir="/tmp")
            .out_of_core(32)
            .build_state()
        )
        assert state.config.max_resident_mb == 32
        assert state.config.shard_rows == 512
        assert state.config.spill_dir == "/tmp"
