"""Out-of-core session tests: the sharded path is bit-identical to dense."""

import numpy as np
import pytest

import repro
from repro.core.config import FroteConfig
from repro.data import Dataset, ShardedTable
from repro.engine.state import EditState
from repro.perf.hotpaths import synthetic_mixed_table


def make_dataset(n=1200, seed=42):
    table = synthetic_mixed_table(n, seed)
    rng = np.random.default_rng(seed + 1)
    y = ((table.column("age") < 40) & (table.column("income") > 100)).astype(np.int64)
    noise = rng.uniform(size=n) < 0.05
    y[noise] = 1 - y[noise]
    return Dataset(table, y, ("deny", "approve"))


def session(dataset, **configure):
    return (
        repro.edit(dataset)
        .with_rules(
            "age < 35 => approve",
            "income < 40 AND marital = 'single' => deny",
        )
        .with_algorithm("LR")
        .configure(tau=6, q=0.5, random_state=42, **configure)
    )


class TestOutOfCoreSession:
    def test_bit_identical_to_dense_path(self):
        """The ISSUE acceptance criterion at test scale: a full edit-loop
        run with a resident budget far below the dense size produces a
        bit-identical FroteResult, with real spills along the way."""
        dataset = make_dataset()
        dense = session(dataset).run()
        ooc = session(dataset).out_of_core(0.01, shard_rows=128).run()

        assert isinstance(ooc.dataset.X, ShardedTable)
        stats = ooc.dataset.X.storage_stats()
        assert stats["n_spilled"] > 0  # the budget actually bound storage
        assert dense.n_added == ooc.n_added and dense.n_added > 0
        for name in dataset.X.schema.names:
            np.testing.assert_array_equal(
                ooc.dataset.X.column(name), dense.dataset.X.column(name)
            )
        np.testing.assert_array_equal(ooc.dataset.y, dense.dataset.y)
        assert [
            (r.candidate_loss, r.accepted, r.n_generated) for r in dense.history
        ] == [(r.candidate_loss, r.accepted, r.n_generated) for r in ooc.history]
        assert dense.final_evaluation.mra == ooc.final_evaluation.mra
        assert dense.final_evaluation.f1_outside == ooc.final_evaluation.f1_outside

    def test_incremental_composes_with_out_of_core(self):
        dataset = make_dataset(800, seed=7)
        dense = session(dataset, incremental=True).run()
        ooc = (
            session(dataset, incremental=True)
            .out_of_core(0.01, shard_rows=64)
            .run()
        )
        np.testing.assert_array_equal(ooc.dataset.y, dense.dataset.y)
        assert [r.candidate_loss for r in dense.history] == [
            r.candidate_loss for r in ooc.history
        ]

    def test_spill_dir_is_honoured(self, tmp_path):
        dataset = make_dataset(600, seed=3)
        result = (
            session(dataset)
            .out_of_core(0.005, shard_rows=64, spill_dir=str(tmp_path))
            .run()
        )
        # The result keeps its storage alive, so the private spill
        # directory (and its shard files) exist under the base we chose.
        subdirs = list(tmp_path.iterdir())
        assert subdirs and any(any(d.iterdir()) for d in subdirs)
        assert result.dataset.X.column("age").shape[0] == result.dataset.n

    def test_resume_from_out_of_core_result(self):
        dataset = make_dataset(600, seed=5)
        prior = session(dataset).out_of_core(0.005, shard_rows=64).run()
        resumed = (
            session(dataset)
            .resume_from(prior)
            .run()
        )
        assert resumed.iterations == prior.iterations + 6
        assert resumed.dataset.n >= prior.dataset.n


class TestConfigValidation:
    def test_budget_must_be_positive(self):
        with pytest.raises(ValueError, match="max_resident_mb"):
            FroteConfig(max_resident_mb=0)
        with pytest.raises(ValueError, match="max_resident_mb"):
            FroteConfig(max_resident_mb=-1.5)

    def test_shard_rows_requires_budget(self):
        with pytest.raises(ValueError, match="max_resident_mb"):
            FroteConfig(shard_rows=1024)
        with pytest.raises(ValueError, match="shard_rows"):
            FroteConfig(max_resident_mb=8, shard_rows=0)

    def test_spill_dir_requires_budget(self):
        with pytest.raises(ValueError, match="max_resident_mb"):
            FroteConfig(spill_dir="/tmp")

    def test_defaults_stay_dense(self):
        assert FroteConfig().max_resident_mb is None


class TestMakeBuilder:
    def test_policy_selection(self, tmp_path):
        dataset = make_dataset(100, seed=9)
        dense_state = EditState(config=FroteConfig())
        assert dense_state.make_builder(dataset).policy is None
        ooc_state = EditState(
            config=FroteConfig(
                max_resident_mb=1.0, shard_rows=32, spill_dir=str(tmp_path)
            )
        )
        builder = ooc_state.make_builder(dataset)
        assert builder.policy is not None
        assert builder.policy.shard_rows == 32
        assert builder.policy.spill.path.parent == tmp_path
        assert isinstance(builder.snapshot().X, ShardedTable)

    def test_fresh_policy_per_builder(self):
        dataset = make_dataset(100, seed=9)
        state = EditState(config=FroteConfig(max_resident_mb=1.0))
        a = state.make_builder(dataset)
        b = state.make_builder(dataset)
        assert a.policy is not b.policy
        assert a.policy.spill.path != b.policy.spill.path


class TestSessionSugar:
    def test_out_of_core_configures(self):
        dataset = make_dataset(100, seed=11)
        state = (
            session(dataset)
            .out_of_core(16, shard_rows=256, spill_dir="/tmp")
            .build_state()
        )
        assert state.config.max_resident_mb == 16
        assert state.config.shard_rows == 256
        assert state.config.spill_dir == "/tmp"

    def test_out_of_core_does_not_clobber_prior_configure(self):
        """configure() merge semantics: a bare out_of_core(budget) keeps
        shard_rows/spill_dir set by an earlier call."""
        dataset = make_dataset(100, seed=11)
        state = (
            session(dataset)
            .configure(shard_rows=512, max_resident_mb=1, spill_dir="/tmp")
            .out_of_core(32)
            .build_state()
        )
        assert state.config.max_resident_mb == 32
        assert state.config.shard_rows == 512
        assert state.config.spill_dir == "/tmp"


class TestBlockedWholeTablePasses:
    """Whole-table passes must not densify a ShardedTable.

    ``TableModel.predict``, ``FeedbackRuleSet.assign`` and the encoder's
    blocked transform walk shard-aligned row blocks; pinned here with
    ``tracemalloc``: peak traced heap during each pass stays well below
    what materializing the dense feature matrix (or whole columns) would
    allocate, on a snapshot whose dense size is many times the resident
    budget.
    """

    def _sharded(self, n=16384, shard_rows=256):
        from repro.data.builder import DatasetBuilder
        from repro.data.shards import SpillPolicy

        dataset = make_dataset(n, seed=13)
        builder = DatasetBuilder.from_dataset(
            dataset, policy=SpillPolicy(0, shard_rows=shard_rows)
        )
        snap = builder.snapshot()
        assert isinstance(snap.X, ShardedTable)
        assert snap.X.storage_stats()["n_spilled"] > 0
        return dataset, snap, builder

    def _frs(self, dataset):
        from repro.rules.parser import parse_rule
        from repro.rules.ruleset import FeedbackRuleSet

        return FeedbackRuleSet(
            tuple(
                parse_rule(text, dataset.X.schema, dataset.label_names)
                for text in (
                    "age < 35 => approve",
                    "income < 40 AND marital = 'single' => deny",
                )
            )
        )

    @staticmethod
    def _traced_peak(fn):
        """Peak traced heap of a warmed run of ``fn``.

        The untraced warm-up call lets the spilled shards open their
        memmap handles — O(n_shards) metadata that is cached afterwards —
        so the traced pass measures the steady-state transients the
        blocked walk actually allocates.
        """
        import tracemalloc

        fn()
        tracemalloc.start()
        try:
            out = fn()
            _, peak = tracemalloc.get_traced_memory()
        finally:
            tracemalloc.stop()
        return out, peak

    def test_predict_streams_shard_blocks(self):
        from repro.models import LogisticRegression, make_algorithm

        dataset, snap, _ = self._sharded()
        model = make_algorithm(lambda: LogisticRegression(max_iter=50))(
            dataset.row_slice(0, 2048)
        )
        dense_matrix_bytes = snap.n * model.encoder_.n_features * 8
        proba, peak = self._traced_peak(lambda: model.predict_proba(snap.X))
        # Budget: the (n, n_classes) output + O(shard) block transients —
        # nowhere near the full encoded matrix a densifying pass allocates.
        assert peak < dense_matrix_bytes / 2
        np.testing.assert_allclose(
            proba, model.predict_proba(dataset.X), rtol=1e-9, atol=1e-12
        )

    def test_assign_and_coverage_stream_shard_blocks(self):
        dataset, snap, _ = self._sharded()
        frs = self._frs(dataset)
        dense_column_bytes = snap.n * len(dataset.X.schema.names) * 8
        assign, peak = self._traced_peak(lambda: frs.assign(snap.X))
        assert peak < dense_column_bytes / 2
        np.testing.assert_array_equal(assign, frs.assign(dataset.X))
        mask, peak = self._traced_peak(lambda: frs.coverage_mask(snap.X))
        assert peak < dense_column_bytes / 2
        np.testing.assert_array_equal(mask, frs.coverage_mask(dataset.X))

    def test_encoder_blocks_are_bounded_and_bit_identical(self):
        from repro.data.encoding import TabularEncoder

        dataset, snap, _ = self._sharded()
        encoder = TabularEncoder(standardize=True).fit(dataset.X)
        dense = encoder.transform(dataset.X)

        def consume():
            total = 0
            for start, stop, X in encoder.iter_transform_blocks(snap.X):
                np.testing.assert_array_equal(X, dense[start:stop])
                total += stop - start
            return total

        total, peak = self._traced_peak(consume)
        assert total == snap.n
        assert peak < dense.nbytes / 2
        # The full blocked transform still returns the identical matrix.
        np.testing.assert_array_equal(encoder.transform(snap.X), dense)

    def test_scaler_stats_identical_when_fit_on_sharded(self):
        from repro.data.encoding import TabularEncoder

        dataset, snap, _ = self._sharded(n=4096, shard_rows=128)
        dense_enc = TabularEncoder(standardize=True).fit(dataset.X)
        sharded_enc = TabularEncoder(standardize=True).fit(snap.X)
        np.testing.assert_array_equal(
            dense_enc._scaler.mean_, sharded_enc._scaler.mean_
        )
        np.testing.assert_array_equal(
            dense_enc._scaler.scale_, sharded_enc._scaler.scale_
        )
