"""Tests for the EditSession fluent façade (repro.edit)."""

import numpy as np
import pytest

import repro
from repro.engine import SELECTORS, EditSession, register_selector
from repro.models import LogisticRegression, make_algorithm


@pytest.fixture
def algorithm():
    return make_algorithm(lambda: LogisticRegression(max_iter=200))


def base_session(dataset, frs, algorithm, **cfg):
    return (
        repro.edit(dataset)
        .with_rules(frs)
        .with_algorithm(algorithm)
        .configure(**{"tau": 5, "q": 0.5, "eta": 8, "random_state": 0, **cfg})
    )


class TestBuilder:
    def test_edit_returns_session(self, mixed_dataset):
        assert isinstance(repro.edit(mixed_dataset), EditSession)

    def test_chaining_returns_self(self, mixed_dataset, single_rule_frs, algorithm):
        s = repro.edit(mixed_dataset)
        assert s.with_rules(single_rule_frs) is s
        assert s.with_algorithm(algorithm) is s
        assert s.configure(tau=3) is s
        assert s.on_iteration(lambda e: None) is s

    def test_requires_algorithm(self, mixed_dataset, single_rule_frs):
        with pytest.raises(ValueError, match="algorithm"):
            repro.edit(mixed_dataset).with_rules(single_rule_frs).run()

    def test_requires_rules(self, mixed_dataset, algorithm):
        with pytest.raises(ValueError, match="rules"):
            repro.edit(mixed_dataset).with_algorithm(algorithm).run()

    def test_algorithm_by_name(self, mixed_dataset, single_rule_frs):
        result = (
            repro.edit(mixed_dataset)
            .with_rules(single_rule_frs)
            .with_algorithm("LR")
            .configure(tau=2, eta=5, random_state=0)
            .run()
        )
        assert result.iterations <= 2

    def test_bad_algorithm_type(self, mixed_dataset):
        with pytest.raises(TypeError, match="callable"):
            repro.edit(mixed_dataset).with_algorithm(42)

    def test_bad_rule_type(self, mixed_dataset):
        with pytest.raises(TypeError, match="feedback rule"):
            repro.edit(mixed_dataset).with_rules(3.14)

    def test_config_validated_at_run(self, mixed_dataset, single_rule_frs, algorithm):
        session = base_session(mixed_dataset, single_rule_frs, algorithm, tau=-1)
        with pytest.raises(ValueError, match="tau"):
            session.run()


class TestIncrementalRules:
    def test_rule_strings_parsed(self, mixed_dataset, algorithm):
        result = (
            repro.edit(mixed_dataset)
            .with_rules("age < 35 => approve")
            .with_algorithm(algorithm)
            .configure(tau=2, eta=5, random_state=0)
            .run()
        )
        assert result.iterations > 0

    def test_multi_expert_accumulation(self, mixed_dataset, two_rule_frs, algorithm):
        """Each with_rules call appends — two experts, one session."""
        r1, r2 = list(two_rule_frs)
        session = repro.edit(mixed_dataset).with_algorithm(algorithm)
        session.with_rules(r1)  # expert A
        session.with_rules(r2)  # expert B, later
        state = session.configure(tau=2, eta=5, random_state=0).build_state()
        assert len(state.frs) == 2

    def test_mixed_rule_forms(self, mixed_dataset, two_rule_frs, young_rule, algorithm):
        session = (
            repro.edit(mixed_dataset)
            .with_algorithm(algorithm)
            .with_rules(two_rule_frs, young_rule, "income > 150 => deny")
            .configure(tau=1, eta=5, random_state=0)
        )
        assert len(session.build_state().frs) == 4


class TestEvents:
    def test_on_iteration(self, mixed_dataset, single_rule_frs, algorithm):
        events = []
        result = (
            base_session(mixed_dataset, single_rule_frs, algorithm)
            .on_iteration(events.append)
            .run()
        )
        assert len(events) == result.iterations
        assert all(e.record is not None for e in events)

    def test_on_accept_only_accepted(self, mixed_dataset, single_rule_frs, algorithm):
        events = []
        result = (
            base_session(mixed_dataset, single_rule_frs, algorithm)
            .on_accept(events.append)
            .run()
        )
        assert len(events) == result.accepted_iterations
        assert all(e.accepted for e in events)

    def test_on_event_sees_lifecycle(self, mixed_dataset, single_rule_frs, algorithm):
        kinds = []
        base_session(mixed_dataset, single_rule_frs, algorithm).on_event(
            lambda e: kinds.append(e.kind)
        ).run()
        assert kinds[0] == "started" and kinds[-1] == "finished"

    def test_track_metric_recorded(self, mixed_dataset, single_rule_frs, algorithm):
        result = (
            base_session(mixed_dataset, single_rule_frs, algorithm)
            .track_metric(lambda model: 0.75)
            .run()
        )
        for rec in result.history:
            if rec.accepted:
                assert rec.external_score == 0.75
            else:
                assert rec.external_score is None


class TestWarmStart:
    def test_resume_continues(self, mixed_dataset, single_rule_frs, algorithm):
        first = base_session(mixed_dataset, single_rule_frs, algorithm, tau=3).run()
        resumed = (
            base_session(mixed_dataset, single_rule_frs, algorithm, tau=3)
            .resume_from(first)
            .run()
        )
        assert resumed.iterations == first.iterations + 3
        assert len(resumed.history) == len(first.history) + 3
        assert resumed.n_added >= first.n_added
        assert resumed.dataset.n >= first.dataset.n
        # prior history is preserved verbatim at the front
        assert resumed.history[: len(first.history)] == first.history

    def test_resume_patience_ignores_prior_rejections(
        self, mixed_dataset, single_rule_frs, algorithm
    ):
        """A warm-started run must not early-stop on rejections inherited
        from the prior run's history."""
        from repro.engine import (
            AcceptanceStage,
            GenerationStage,
            PreselectStage,
            SelectionStage,
        )

        class NeverSelect:
            needs_predictions = False

            def select(self, bp, eta, ctx):
                return [np.empty(0, dtype=np.intp) for _ in bp.per_rule]

        # Prior run: 4 straight rejections (empty batches).
        first = (
            base_session(mixed_dataset, single_rule_frs, algorithm, tau=4)
            .with_selector(NeverSelect())
            .run()
        )
        assert not any(r.accepted for r in first.history)

        # Resumed run with patience=2 still gets its own 2 fresh attempts.
        resumed = (
            base_session(mixed_dataset, single_rule_frs, algorithm, tau=10)
            .with_selector(NeverSelect())
            .with_stages(
                PreselectStage(),
                SelectionStage(),
                GenerationStage(),
                AcceptanceStage(patience=2),
            )
            .resume_from(first)
            .run()
        )
        assert resumed.iterations == first.iterations + 2

    def test_selector_factory_fresh_per_run(
        self, mixed_dataset, single_rule_frs, algorithm
    ):
        built = []

        class CountingSelector:
            needs_predictions = False

            def __init__(self):
                built.append(self)

            def select(self, bp, eta, ctx):
                return [np.empty(0, dtype=np.intp) for _ in bp.per_rule]

        session = base_session(
            mixed_dataset, single_rule_frs, algorithm, tau=2
        ).with_selector(CountingSelector)  # factory form (the class itself)
        session.run()
        session.run()
        assert len(built) == 2  # a fresh instance per run

    def test_resume_does_not_remodify(self, mixed_dataset, single_rule_frs, algorithm):
        first = base_session(mixed_dataset, single_rule_frs, algorithm, tau=2).run()
        resumed = (
            base_session(mixed_dataset, single_rule_frs, algorithm, tau=2)
            .resume_from(first)
            .run()
        )
        # relabel counts carry over, not re-applied
        assert resumed.n_relabelled == first.n_relabelled


class TestPluggableStrategies:
    def test_custom_selector_instance(self, mixed_dataset, single_rule_frs, algorithm):
        calls = []

        class FirstK:
            needs_predictions = False

            def select(self, bp, eta, ctx):
                calls.append(eta)
                return [
                    np.arange(min(eta, pop.size), dtype=np.intp)
                    for pop in bp.per_rule
                ]

        result = (
            base_session(mixed_dataset, single_rule_frs, algorithm, tau=2)
            .with_selector(FirstK())
            .run()
        )
        assert calls and result.iterations == 2

    def test_registered_selector_via_config_name(
        self, mixed_dataset, single_rule_frs, algorithm
    ):
        """The acceptance-criterion scenario: a strategy registered from
        user code (no edits under src/repro/) runs end-to-end by name."""

        @register_selector("user-first-k")
        class UserFirstK:
            needs_predictions = False

            def select(self, bp, eta, ctx):
                return [
                    np.arange(min(eta, pop.size), dtype=np.intp)
                    for pop in bp.per_rule
                ]

        try:
            result = base_session(
                mixed_dataset, single_rule_frs, algorithm, selection="user-first-k"
            ).run()
            assert result.iterations > 0
            assert len(result.history) == result.iterations
        finally:
            SELECTORS.unregister("user-first-k")

    def test_unknown_strategy_suggests_registered(
        self, mixed_dataset, single_rule_frs, algorithm
    ):
        with pytest.raises(ValueError, match="did you mean 'random'"):
            base_session(
                mixed_dataset, single_rule_frs, algorithm, selection="randm"
            ).run()


class TestRerun:
    def test_session_rerun_is_deterministic(
        self, mixed_dataset, single_rule_frs, algorithm
    ):
        session = base_session(mixed_dataset, single_rule_frs, algorithm)
        a = session.run()
        b = session.run()
        assert [r.candidate_loss for r in a.history] == [
            r.candidate_loss for r in b.history
        ]
        assert a.n_added == b.n_added
