"""Tests for the composable pipeline stages and the EditEngine driver."""

import numpy as np
import pytest

from repro.core import FroteConfig
from repro.engine import (
    AcceptanceStage,
    EditEngine,
    EditState,
    GenerationStage,
    ModificationStage,
    PreselectStage,
    SelectionStage,
    default_stages,
)
from repro.models import LogisticRegression, make_algorithm
from repro.utils.rng import check_random_state


@pytest.fixture
def algorithm():
    return make_algorithm(lambda: LogisticRegression(max_iter=200))


def make_state(dataset, frs, algorithm, **config_kwargs):
    config = FroteConfig(**{"tau": 5, "q": 0.5, "eta": 8, "random_state": 0, **config_kwargs})
    return EditState(
        input_dataset=dataset,
        frs=frs,
        algorithm=algorithm,
        config=config,
        rng=check_random_state(config.random_state),
    )


class TestModificationStage:
    def test_prepares_state(self, mixed_dataset, single_rule_frs, algorithm):
        state = make_state(mixed_dataset, single_rule_frs, algorithm)
        ModificationStage().run(state)
        assert state.active is not None
        assert state.model is not None
        assert state.best_loss < float("inf")
        assert state.initial_evaluation is state.evaluation
        assert state.eta == 8
        assert state.quota == state.config.oversampling_quota(state.active.n)
        assert state.max_iteration == 5
        assert state.selector is not None
        assert state.provenance is not None

    def test_relabel_counts(self, mixed_dataset, single_rule_frs, algorithm):
        state = make_state(mixed_dataset, single_rule_frs, algorithm)
        ModificationStage().run(state)
        assert state.n_relabelled > 0
        assert state.n_dropped == 0

    def test_warm_start_skips_modification(
        self, mixed_dataset, single_rule_frs, algorithm
    ):
        state = make_state(mixed_dataset, single_rule_frs, algorithm)
        state.warm_start = True
        ModificationStage().run(state)
        # The active dataset moves into the append builder (a zero-copy
        # snapshot), so compare contents: no rows were relabelled/dropped.
        assert state.active.n == mixed_dataset.n
        np.testing.assert_array_equal(state.active.y, mixed_dataset.y)
        for name in mixed_dataset.X.schema.names:
            np.testing.assert_array_equal(
                state.active.X.column(name), mixed_dataset.X.column(name)
            )
        assert state.n_relabelled == 0

    def test_preseeded_selector_kept(self, mixed_dataset, single_rule_frs, algorithm):
        sentinel = object()
        state = make_state(mixed_dataset, single_rule_frs, algorithm)
        state.selector = sentinel
        ModificationStage().run(state)
        assert state.selector is sentinel


class TestPreselectStage:
    def test_computes_populations(self, mixed_dataset, single_rule_frs, algorithm):
        state = make_state(mixed_dataset, single_rule_frs, algorithm)
        ModificationStage().run(state)
        PreselectStage().run(state)
        assert state.bp is not None
        assert len(state.generators) == len(single_rule_frs)
        assert not state.population_stale

    def test_noop_when_fresh(self, mixed_dataset, single_rule_frs, algorithm):
        state = make_state(mixed_dataset, single_rule_frs, algorithm)
        ModificationStage().run(state)
        PreselectStage().run(state)
        bp = state.bp
        PreselectStage().run(state)
        assert state.bp is bp  # not recomputed


class TestSelectionGeneration:
    def test_selection_fills_positions(self, mixed_dataset, two_rule_frs, algorithm):
        state = make_state(mixed_dataset, two_rule_frs, algorithm)
        ModificationStage().run(state)
        PreselectStage().run(state)
        SelectionStage().run(state)
        assert len(state.per_rule_positions) == len(two_rule_frs)
        assert sum(p.size for p in state.per_rule_positions) == state.eta

    def test_random_selector_skips_predictions(
        self, mixed_dataset, two_rule_frs, algorithm
    ):
        state = make_state(mixed_dataset, two_rule_frs, algorithm, selection="random")
        ModificationStage().run(state)
        PreselectStage().run(state)
        SelectionStage().run(state)
        assert state.predictions is None

    def test_ip_selector_gets_predictions(
        self, mixed_dataset, two_rule_frs, algorithm
    ):
        state = make_state(mixed_dataset, two_rule_frs, algorithm, selection="ip")
        ModificationStage().run(state)
        PreselectStage().run(state)
        SelectionStage().run(state)
        assert state.predictions is not None

    def test_generation_produces_batch(self, mixed_dataset, two_rule_frs, algorithm):
        state = make_state(mixed_dataset, two_rule_frs, algorithm)
        ModificationStage().run(state)
        PreselectStage().run(state)
        SelectionStage().run(state)
        GenerationStage().run(state)
        assert state.batch.n > 0
        assert sum(state.per_rule_counts) == state.batch.n


class TestAcceptanceStage:
    def test_advances_iteration_and_history(
        self, mixed_dataset, two_rule_frs, algorithm
    ):
        state = make_state(mixed_dataset, two_rule_frs, algorithm)
        engine = EditEngine()
        engine.initialize(state)
        engine.step(state)
        assert state.iteration == 1
        assert len(state.history) == 1

    def test_accept_grows_dataset(self, mixed_dataset, single_rule_frs, algorithm):
        state = make_state(mixed_dataset, single_rule_frs, algorithm)
        engine = EditEngine()
        engine.initialize(state)
        n0 = state.active.n
        while not state.done:
            engine.step(state)
        accepted = sum(1 for r in state.history if r.accepted)
        assert state.active.n == n0 + state.n_added
        if accepted:
            assert state.n_added > 0

    def test_patience_stops_early(self, mixed_dataset, single_rule_frs, algorithm):
        class RejectEverything:
            """Objective that can never improve after the first evaluation."""

            needs_predictions = False

            def select(self, bp, eta, ctx):
                return [np.empty(0, dtype=np.intp) for _ in bp.per_rule]

        state = make_state(mixed_dataset, single_rule_frs, algorithm, tau=50)
        state.selector = RejectEverything()
        engine = EditEngine(
            stages=(
                PreselectStage(),
                SelectionStage(),
                GenerationStage(),
                AcceptanceStage(patience=3),
            )
        )
        result = engine.run(state)
        assert result.iterations == 3  # stopped long before tau=50
        assert not any(r.accepted for r in result.history)

    def test_patience_validation(self):
        with pytest.raises(ValueError, match="patience"):
            AcceptanceStage(patience=0)


class TestEditEngine:
    def test_default_stages(self):
        engine = EditEngine()
        kinds = [type(s).__name__ for s in engine.stages]
        assert kinds == [
            "PreselectStage",
            "SelectionStage",
            "GenerationStage",
            "AcceptanceStage",
        ]
        assert [type(s).__name__ for s in engine.setup_stages] == ["ModificationStage"]

    def test_run_returns_result(self, mixed_dataset, single_rule_frs, algorithm):
        state = make_state(mixed_dataset, single_rule_frs, algorithm)
        result = EditEngine().run(state)
        assert result.iterations <= 5
        assert result.dataset.n >= mixed_dataset.n - result.n_dropped
        assert len(result.history) == result.iterations

    def test_custom_stage_injection(self, mixed_dataset, single_rule_frs, algorithm):
        """A user stage slotted into the chain sees every iteration."""
        seen = []

        class SpyStage:
            def run(self, state):
                seen.append(state.iteration)

        stages = (SpyStage(),) + default_stages()
        state = make_state(mixed_dataset, single_rule_frs, algorithm, tau=3)
        EditEngine(stages=stages).run(state)
        assert seen == [0, 1, 2]

    def test_custom_preselect_without_pools_still_generates(
        self, mixed_dataset, single_rule_frs, algorithm
    ):
        """A user preselect stage that only sets bp/generators (the
        pre-pools contract) must keep working: GenerationStage falls back
        to materializing the pool itself."""
        from repro.core.preselect import preselect_base_population
        from repro.sampling.rule_generation import RuleConstrainedGenerator

        class MinimalPreselect:
            def run(self, state):
                if not state.population_stale:
                    return
                state.bp = preselect_base_population(
                    state.active, state.frs, k=state.config.k
                )
                state.generators = [
                    RuleConstrainedGenerator(rule, state.active.X, k=state.config.k)
                    for rule in state.frs
                ]
                # Deliberately does NOT set state.pools.
                state.population_stale = False

        stages = (MinimalPreselect(),) + default_stages()[1:]
        state = make_state(mixed_dataset, single_rule_frs, algorithm, tau=3)
        result = EditEngine(stages=stages).run(state)
        assert result.iterations == 3
        assert any(rec.n_generated > 0 for rec in result.history)

    def test_events_emitted(self, mixed_dataset, single_rule_frs, algorithm):
        events = []
        state = make_state(mixed_dataset, single_rule_frs, algorithm, tau=3)
        state.listeners.append(events.append)
        EditEngine().run(state)
        kinds = [e.kind for e in events]
        assert kinds[0] == "started"
        assert kinds[-1] == "finished"
        assert len(kinds) == 2 + 3  # started + one per iteration + finished
        for e in events:
            assert e.model is not None
