"""Tests for the dataset delta journal and EditState's delta-aware caches."""

import numpy as np
import pytest

from repro.core import FroteConfig
from repro.data import Dataset, DatasetBuilder, Table, make_schema
from repro.engine import DatasetDelta, DeltaJournal, EditState
from repro.models import KNeighborsClassifier, make_algorithm
from repro.rules import FeedbackRule, Predicate, clause
from repro.rules.ruleset import FeedbackRuleSet

SCHEMA = make_schema(numeric=["age", "income"], categorical={"kind": ("a", "b")})


def make_dataset(n, seed=0):
    rng = np.random.default_rng(seed)
    table = Table(
        SCHEMA,
        {
            "age": rng.uniform(18, 80, size=n),
            "income": rng.uniform(10, 200, size=n),
            "kind": rng.integers(0, 2, size=n),
        },
    )
    return Dataset(table, rng.integers(0, 2, size=n), ("deny", "approve"))


def make_frs():
    return FeedbackRuleSet(
        (
            FeedbackRule.deterministic(clause(Predicate("age", "<", 35.0)), 1, 2),
            FeedbackRule.deterministic(clause(Predicate("income", ">", 150.0)), 0, 2),
        )
    )


class TestDeltaJournal:
    def test_append_chain_merges(self):
        j = DeltaJournal()
        j.record_append(1, 2, 100, 110, "batch")
        j.record_append(2, 3, 110, 125, "batch")
        assert j.appended_between(1, 3) == (100, 125)
        assert j.appended_between(2, 3) == (110, 125)
        assert j.appended_between(1, 2) == (100, 110)

    def test_equal_versions(self):
        assert DeltaJournal().appended_between(7, 7) == (0, 0)

    def test_rebuild_breaks_the_chain(self):
        j = DeltaJournal()
        j.record_append(1, 2, 100, 110)
        j.record_rebuild(2, 3, "modification")
        j.record_append(3, 4, 50, 60)
        assert j.appended_between(1, 4) is None
        assert j.appended_between(2, 4) is None
        assert j.appended_between(3, 4) == (50, 60)

    def test_unknown_version_answers_none(self):
        j = DeltaJournal()
        j.record_append(1, 2, 0, 5)
        assert j.appended_between(0, 9) is None

    def test_eviction_bounds_memory(self):
        j = DeltaJournal(max_entries=4)
        for v in range(1, 20):
            j.record_append(v, v + 1, v * 10, v * 10 + 10)
        assert len(j) == 4
        # Evicted prefix: unknown.  Recent suffix: still answered.
        assert j.appended_between(1, 20) is None
        assert j.appended_between(16, 20) == (160, 200)

    def test_delta_properties(self):
        d = DatasetDelta(version=2, parent=1, start=10, stop=14, provenance="x")
        assert d.is_append and d.n_appended == 4
        with pytest.raises(ValueError):
            DeltaJournal().record_append(1, 2, 5, 3)


def make_state(n=120, seed=0, **config_kwargs):
    dataset = make_dataset(n, seed)
    algorithm = make_algorithm(lambda: KNeighborsClassifier(k=3), standardize=False)
    state = EditState(
        input_dataset=dataset,
        frs=make_frs(),
        algorithm=algorithm,
        config=FroteConfig(tau=5, random_state=0, **config_kwargs),
        rng=np.random.default_rng(0),
    )
    # Mirrors ModificationStage: the rebuild delta is recorded first
    # (it drops any prior builder), then the builder takes ownership.
    state.record_rebuild("setup")
    state.active_builder = DatasetBuilder.from_dataset(dataset)
    state.active = state.active_builder.snapshot()
    state.model = algorithm(state.active)
    return state


class TestEditStateDeltas:
    def test_record_append_keeps_assignment_extendable(self):
        state = make_state()
        before = state.active_assignment()
        extra = make_dataset(17, seed=1)
        state.active = state.active_builder.append(extra.X, extra.y)
        state.record_append(extra.n, "accepted-batch")
        merged = state.active_assignment()
        full = state.frs.assign(state.active.X)
        np.testing.assert_array_equal(merged, full)
        np.testing.assert_array_equal(merged[: before.shape[0]], before)

    def test_multiple_appends_merge(self):
        state = make_state()
        state.active_assignment()
        for i in range(3):
            extra = make_dataset(5 + i, seed=10 + i)
            state.active = state.active_builder.append(extra.X, extra.y)
            state.record_append(extra.n, "accepted-batch")
        np.testing.assert_array_equal(
            state.active_assignment(), state.frs.assign(state.active.X)
        )

    def test_rebuild_clears_caches(self):
        state = make_state()
        state.active_assignment()
        state.active_predictions()
        state.record_rebuild("modification")
        assert state.assign_cache is None
        assert state.predictions_cache is None

    def test_rebuild_drops_the_builder(self):
        """A rebuilt ``active`` no longer matches the builder's rows, so
        keeping the builder would let staging resurrect stale data (the
        acceptance stage re-homes a fresh builder on the next accept)."""
        state = make_state()
        assert state.active_builder is not None
        state.active = make_dataset(state.active.n, seed=99)  # same length!
        state.record_rebuild("custom-stage-mutation")
        assert state.active_builder is None

    def test_bump_dataset_version_compat(self):
        state = make_state()
        v0 = state.dataset_version
        state.active_predictions()
        state.bump_dataset_version()
        assert state.dataset_version != v0
        assert state.predictions_cache is None
        delta = state.journal.get(state.dataset_version)
        assert delta is not None and not delta.is_append

    def test_predictions_cache_requires_same_model(self):
        state = make_state()
        preds = state.active_predictions()
        assert state.predictions_cache[1] is state.model
        # Same version, different model object: full recompute, not a hit.
        state.model = state.algorithm(state.active)
        again = state.active_predictions()
        np.testing.assert_array_equal(preds, again)
        assert state.predictions_cache[1] is state.model

    def test_incremental_prediction_extension_is_exact(self):
        state = make_state(incremental=True)
        state.active_predictions()
        extra = make_dataset(11, seed=3)
        state.active = state.active_builder.append(extra.X, extra.y)
        state.model.partial_update(extra)
        state.record_append(extra.n, "accepted-batch")
        # Seed with the updated model's predictions over the old rows,
        # exactly like the acceptance stage does...
        old_n = state.active.n - extra.n
        state.predictions_cache = (
            state.journal.get(state.dataset_version).parent,
            state.model,
            state.model.predict(state.active.X.row_slice(0, old_n)),
        )
        extended = state.active_predictions()
        np.testing.assert_array_equal(extended, state.model.predict(state.active.X))

    def test_default_mode_does_not_extend_predictions(self):
        state = make_state()  # incremental off
        state.active_predictions()
        extra = make_dataset(7, seed=4)
        state.active = state.active_builder.append(extra.X, extra.y)
        state.record_append(extra.n, "accepted-batch")
        preds = state.active_predictions()  # full recompute path
        assert preds.shape[0] == state.active.n
        np.testing.assert_array_equal(preds, state.model.predict(state.active.X))
