"""A raising progress listener must never corrupt the edit loop.

Listeners are observers: the engine fans ``ProgressEvent`` s out to them
(and, through the serving layer, to per-session queues), so a buggy
listener raising mid-step must not abort or perturb the run.  The
contract: the exception is swallowed and recorded on
``EditState.listener_errors``, a ``RuntimeWarning`` is emitted once per
offending listener, remaining listeners still fire, and the result is
bit-identical to a run without any listeners.
"""

import warnings

import numpy as np
import pytest

import repro


def base_session(dataset, frs, **cfg):
    return (
        repro.edit(dataset)
        .with_rules(frs)
        .with_algorithm("LR")
        .configure(**{"tau": 4, "q": 0.5, "eta": 8, "random_state": 0, **cfg})
    )


def run_with_listeners(dataset, frs, *listeners):
    session = base_session(dataset, frs)
    for listener in listeners:
        session.on_event(listener)
    state = session.build_state()
    engine = session.build_engine()
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        result = engine.run(state)
    return result, state, caught


class TestRaisingListener:
    def test_run_completes_and_result_is_unperturbed(
        self, mixed_dataset, single_rule_frs
    ):
        def bomb(event):
            raise RuntimeError("listener bug")

        clean, _, _ = run_with_listeners(mixed_dataset, single_rule_frs)
        dirty, state, _ = run_with_listeners(mixed_dataset, single_rule_frs, bomb)
        assert dirty.iterations == clean.iterations
        assert dirty.n_added == clean.n_added
        np.testing.assert_array_equal(dirty.dataset.y, clean.dataset.y)
        for name in clean.dataset.X.schema.names:
            np.testing.assert_array_equal(
                dirty.dataset.X.column(name), clean.dataset.X.column(name)
            )
        assert dirty.history == clean.history
        # Every event the engine emitted hit the bomb and was recorded.
        assert state.listener_errors
        kinds = {kind for kind, _ in state.listener_errors}
        assert "started" in kinds and "finished" in kinds
        assert all(
            isinstance(exc, RuntimeError) for _, exc in state.listener_errors
        )

    def test_later_listeners_still_fire(self, mixed_dataset, single_rule_frs):
        seen = []

        def bomb(event):
            raise ValueError("first in line")

        _, state, _ = run_with_listeners(
            mixed_dataset, single_rule_frs, bomb, lambda e: seen.append(e.kind)
        )
        assert seen[0] == "started"
        assert seen[-1] == "finished"
        assert len(seen) == len(state.listener_errors)

    def test_warns_once_per_listener(self, mixed_dataset, single_rule_frs):
        def bomb_a(event):
            raise RuntimeError("a")

        def bomb_b(event):
            raise RuntimeError("b")

        _, state, caught = run_with_listeners(
            mixed_dataset, single_rule_frs, bomb_a, bomb_b
        )
        listener_warnings = [
            w for w in caught if issubclass(w.category, RuntimeWarning)
            and "progress listener" in str(w.message)
        ]
        # Deduplicated per listener, not per event.
        assert len(listener_warnings) == 2
        assert len(state.listener_errors) > 2

    def test_session_run_path_also_survives(
        self, mixed_dataset, single_rule_frs
    ):
        def bomb(event):
            raise RuntimeError("boom")

        with warnings.catch_warnings():
            warnings.simplefilter("ignore", RuntimeWarning)
            result = (
                base_session(mixed_dataset, single_rule_frs)
                .on_iteration(bomb)
                .run()
            )
        assert result.iterations > 0

    def test_errors_attribute_event_kind_and_iteration(
        self, mixed_dataset, single_rule_frs
    ):
        """Regression: ``listener_errors`` entries are attributable.

        Entries used to be bare ``(kind, exc)`` tuples, so a consumer gap
        (a journal missing an iteration record, a dropped serving event)
        could not be traced to the failure that caused it.  Each entry is
        now a :class:`ListenerError` carrying the event kind *and* the
        iteration at emission time — while still unpacking like the old
        tuples.
        """
        from repro.engine import ListenerError

        observed = []

        def spy_bomb(event):
            observed.append((event.kind, event.iteration))
            raise RuntimeError("attributable")

        _, state, _ = run_with_listeners(mixed_dataset, single_rule_frs, spy_bomb)
        assert state.listener_errors
        assert all(isinstance(e, ListenerError) for e in state.listener_errors)
        # Every error names exactly the event that triggered it.
        assert [
            (e.event_kind, e.iteration) for e in state.listener_errors
        ] == observed
        iteration_kinds = {"accepted", "rejected", "empty-batch"}
        per_iteration = [
            e for e in state.listener_errors if e.event_kind in iteration_kinds
        ]
        assert [e.iteration for e in per_iteration] == list(
            range(len(per_iteration))
        )
        # Old tuple-unpacking consumers keep working.
        kind, exc = state.listener_errors[0]
        assert kind == state.listener_errors[0].event_kind
        assert exc is state.listener_errors[0].error

    def test_keyboard_interrupt_propagates(
        self, mixed_dataset, single_rule_frs
    ):
        """Only Exception is swallowed; BaseException must still abort."""

        def interrupt(event):
            raise KeyboardInterrupt

        session = base_session(mixed_dataset, single_rule_frs).on_event(interrupt)
        state = session.build_state()
        with pytest.raises(KeyboardInterrupt):
            session.build_engine().run(state)
