"""Journal parity across schema migrations.

The schema-evolution acceptance criteria, pinned at test scale:

* a session that adds and renames columns mid-run, crashed after a
  migration and an accepted post-migration batch were journaled,
  fast-forwards through the schema deltas and finishes **bit-identical**
  to the uninterrupted run (history, final columns, labels, and the
  content-hashed version lineage);
* the journal records the schema timeline (``SessionReplay
  .schema_timeline()``) and replay validates the re-derived version
  tokens against the journaled ones;
* runs with no schema deltas journal no schema records — the frozen
  default path is untouched.
"""

import numpy as np
import pytest

from repro.data.evolution import SchemaDelta
from repro.journal import JournalReader, SessionReplay
from repro.models import paper_algorithm

from test_replay_parity import make_session

DELTA2 = SchemaDelta.add_column("tenure", fill=3.0)
DELTA4 = SchemaDelta.rename_column("income", "annual_income")


def migrating_session(jdir, name, algorithm=None):
    """tau=8 with accept_equal so a batch is accepted *after* the
    iteration-2 migration — exercising journaled batches keyed by the
    migrated schema — plus a rule deferred until ``tenure`` lands."""
    session = (
        make_session(tau=8, accept_equal=True)
        .with_schema_migration(2, DELTA2)
        .with_schema_migration(4, DELTA4)
        .with_scheduled_rules(3, "tenure > 2 AND age < 30 => approve")
        .journaled(jdir, name=name)
    )
    if algorithm is not None:
        session = session.with_algorithm(algorithm)
    return session


class Crash(RuntimeError):
    """Simulated mid-iteration death (in-process SIGKILL stand-in)."""


def bomb_algorithm(at_fit):
    base = paper_algorithm("LR")
    fits = {"n": 0}

    def algorithm(dataset):
        fits["n"] += 1
        if fits["n"] == at_fit:
            raise Crash(f"fit #{at_fit}")
        return base(dataset)

    return algorithm


def assert_runs_identical(got, want):
    assert got.history == want.history
    assert got.n_added == want.n_added
    assert got.dataset.X.schema == want.dataset.X.schema
    np.testing.assert_array_equal(got.dataset.y, want.dataset.y)
    for name in want.dataset.X.schema.names:
        np.testing.assert_array_equal(
            got.dataset.X.column(name), want.dataset.X.column(name)
        )
    assert [r.version for r in got.schema_log] == [
        r.version for r in want.schema_log
    ]


class TestSchemaCrashResume:
    def test_crash_after_migration_resumes_bit_identical(self, tmp_path):
        full = migrating_session(tmp_path, "full").run()
        assert [r.iteration for r in full.schema_log] == [2, 4]
        assert [r.model_refit for r in full.schema_log] == [True, False]
        assert "annual_income" in full.dataset.X.schema.names

        # Fit #6 dies inside iteration 3: the journal holds the
        # iteration-2 migration plus an accepted post-migration batch.
        with pytest.raises(Crash):
            migrating_session(tmp_path, "crash", bomb_algorithm(6)).run()

        replay = SessionReplay.load(tmp_path / "crash")
        committed = replay.committed()
        assert 0 < len(committed) < 8
        assert any(c.accepted for c in committed)
        assert len(replay.schema_timeline()) == 1
        assert replay.schema_timeline()[0]["op"] == "add_column"

        resumed = migrating_session(tmp_path, "crash").run()
        assert_runs_identical(resumed, full)

        replay = SessionReplay.load(tmp_path / "crash")
        assert replay.summary()["resumes"] == 1
        assert replay.summary()["finished"]
        assert replay.summary()["schema_deltas"] == 2

    def test_crash_before_first_migration_resumes_bit_identical(self, tmp_path):
        full = migrating_session(tmp_path, "full").run()
        # Fit #3 dies inside iteration 2, before the boundary migration.
        with pytest.raises(Crash):
            migrating_session(tmp_path, "crash", bomb_algorithm(3)).run()
        assert SessionReplay.load(tmp_path / "crash").schema_timeline() == []
        resumed = migrating_session(tmp_path, "crash").run()
        assert_runs_identical(resumed, full)

    def test_finished_migrated_journal_fast_forwards(self, tmp_path):
        full = migrating_session(tmp_path, "s").run()
        again = migrating_session(tmp_path, "s").run()
        assert_runs_identical(again, full)
        replay = SessionReplay.load(tmp_path / "s")
        assert replay.summary()["runs"] == 1
        assert replay.summary()["resumes"] == 1

    def test_schema_timeline_carries_lineage(self, tmp_path):
        result = migrating_session(tmp_path, "s").run()
        timeline = SessionReplay.load(tmp_path / "s").schema_timeline()
        assert [row["iteration"] for row in timeline] == [2, 4]
        assert [row["op"] for row in timeline] == [
            "add_column", "rename_column",
        ]
        assert [row["version"] for row in timeline] == [
            r.version for r in result.schema_log
        ]
        # The chain links: the rename's parent is the add's version.
        assert timeline[1]["parent"] == timeline[0]["version"]

    def test_frozen_run_journals_no_schema_records(self, tmp_path):
        make_session().journaled(tmp_path, name="s").run()
        replay = SessionReplay.load(tmp_path / "s")
        assert replay.schema_timeline() == []
        assert replay.summary()["schema_deltas"] == 0
        kinds = {
            record.kind
            for record in JournalReader(tmp_path / "s").iter_records()
        }
        assert "schema-delta" not in kinds
