"""Journal format round-trip and corruption-taxonomy tests.

The writer/reader pair's contract, pinned here:

* whatever the writer appends — including NaN/±inf payloads via the
  repo-wide ``{"__float__": ...}`` markers — the reader returns
  bit-identical, across segment rotation and reopen;
* whatever bytes end up on disk — torn final lines, flipped bytes,
  rewritten or deleted records, missing segments, future schema
  versions — ``scan()`` never raises: it reports a structured
  :class:`Truncation` naming the reason and the last good sequence
  number.
"""

import json
import math

import numpy as np
import pytest

from repro.journal import JournalError, JournalReader, JournalWriter
from repro.journal.records import (
    SCHEMA_VERSION,
    encode_line,
    list_segments,
    segment_index,
)


def random_payload(rng: np.random.Generator, depth: int = 0):
    """A random strict-jsonable-after-markers value, non-finites included."""
    kind = rng.integers(0, 8 if depth < 2 else 6)
    if kind == 0:
        return int(rng.integers(-(10**9), 10**9))
    if kind == 1:
        return float(rng.normal(0, 1e6))
    if kind == 2:
        return rng.choice([math.nan, math.inf, -math.inf]).item()
    if kind == 3:
        return "".join(rng.choice(list("abcé\"\\ {}")) for _ in range(5))
    if kind == 4:
        return bool(rng.integers(0, 2))
    if kind == 5:
        return None
    if kind == 6:
        return [random_payload(rng, depth + 1) for _ in range(rng.integers(0, 4))]
    return {
        f"k{i}": random_payload(rng, depth + 1)
        for i in range(rng.integers(0, 4))
    }


def equal_payload(a, b) -> bool:
    """Recursive equality where NaN == NaN (JSON has no NaN identity)."""
    if isinstance(a, float) and isinstance(b, float):
        return (math.isnan(a) and math.isnan(b)) or a == b
    if isinstance(a, list) and isinstance(b, list):
        return len(a) == len(b) and all(map(equal_payload, a, b))
    if isinstance(a, dict) and isinstance(b, dict):
        return set(a) == set(b) and all(equal_payload(v, b[k]) for k, v in a.items())
    return type(a) is type(b) and a == b


def write_journal(path, payloads, *, segment_max_records=4096, meta=None):
    with JournalWriter(
        path, meta=meta, segment_max_records=segment_max_records, fsync=False
    ) as writer:
        for kind, data in payloads:
            writer.append(kind, data, sync=True)
    return path


class TestRoundTrip:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_randomized_streams_read_back_bit_identical(self, tmp_path, seed):
        rng = np.random.default_rng(seed)
        payloads = [
            (f"kind-{rng.integers(0, 3)}", random_payload(rng))
            for _ in range(60)
        ]
        write_journal(tmp_path / "j", payloads, segment_max_records=16)

        scan = JournalReader(tmp_path / "j").scan()
        assert scan.ok
        body = [r for r in scan.records if r.kind != "header"]
        assert len(body) == len(payloads)
        for record, (kind, data) in zip(body, payloads):
            assert record.kind == kind
            assert equal_payload(record.data, data)
        # The whole journal is one gapless sequence.
        assert [r.seq for r in scan.records] == list(range(len(scan.records)))

    def test_nonfinite_floats_travel_as_markers(self, tmp_path):
        data = {"a": math.nan, "b": math.inf, "c": -math.inf, "v": [1.5, math.nan]}
        write_journal(tmp_path / "j", [("metrics", data)])

        (seg,) = list_segments(tmp_path / "j")
        raw = seg.read_text()
        assert "__float__" in raw
        assert "NaN" not in raw and "Infinity" not in raw  # strict JSON only
        (record,) = JournalReader(tmp_path / "j").scan().of_kind("metrics")
        assert math.isnan(record.data["a"])
        assert record.data["b"] == math.inf and record.data["c"] == -math.inf
        assert math.isnan(record.data["v"][1])

    def test_numpy_payloads_decode_to_plain_python(self, tmp_path):
        data = {
            "arr": np.array([1.5, 2.5], dtype=np.float64),
            "n": np.int64(7),
            "x": np.float64(0.25),
        }
        write_journal(tmp_path / "j", [("np", data)])
        (record,) = JournalReader(tmp_path / "j").scan().of_kind("np")
        assert record.data == {"arr": [1.5, 2.5], "n": 7, "x": 0.25}

    def test_segment_rotation_keeps_one_chain(self, tmp_path):
        payloads = [("tick", {"i": i}) for i in range(23)]
        write_journal(tmp_path / "j", payloads, segment_max_records=5)

        segments = list_segments(tmp_path / "j")
        assert len(segments) > 1
        assert [segment_index(p) for p in segments] == list(range(len(segments)))
        scan = JournalReader(tmp_path / "j").scan()
        assert scan.ok
        assert [r.data["i"] for r in scan.of_kind("tick")] == list(range(23))
        # Every segment opens with a header carrying the format version.
        headers = scan.of_kind("header")
        assert len(headers) == len(segments)
        assert all(h.data["schema_version"] == SCHEMA_VERSION for h in headers)

    def test_reopen_continues_chain_in_new_segment(self, tmp_path):
        write_journal(tmp_path / "j", [("a", {"i": i}) for i in range(3)])
        n_before = len(list_segments(tmp_path / "j"))
        write_journal(tmp_path / "j", [("b", {"i": i}) for i in range(3)])

        assert len(list_segments(tmp_path / "j")) == n_before + 1
        scan = JournalReader(tmp_path / "j").scan()
        assert scan.ok
        assert len(scan.of_kind("a")) == 3 and len(scan.of_kind("b")) == 3

    def test_fresh_wipes_previous_segments(self, tmp_path):
        write_journal(tmp_path / "j", [("a", {})] * 4)
        with JournalWriter(tmp_path / "j", fresh=True, fsync=False) as writer:
            writer.append("b", {})
        scan = JournalReader(tmp_path / "j").scan()
        assert scan.ok
        assert not scan.of_kind("a") and len(scan.of_kind("b")) == 1

    def test_tail_and_iter_records(self, tmp_path):
        write_journal(tmp_path / "j", [("tick", {"i": i}) for i in range(9)])
        reader = JournalReader(tmp_path / "j")
        assert [r.data["i"] for r in reader.tail(3)] == [6, 7, 8]
        assert len(list(reader.iter_records())) == 10  # header + 9
        assert reader.exists
        assert not JournalReader(tmp_path / "nope").exists


class TestCorruptionTaxonomy:
    """Damaged bytes are reported, never raised."""

    def journal(self, tmp_path, n=8):
        path = write_journal(tmp_path / "j", [("tick", {"i": i}) for i in range(n)])
        lines = list_segments(path)[0].read_bytes().decode().splitlines()
        return path, lines

    def test_torn_final_line_is_repairable(self, tmp_path):
        path, lines = self.journal(tmp_path)
        seg = list_segments(path)[0]
        with open(seg, "ab") as fh:
            fh.write(b'{"seq": 99, "torn mid-wri')  # crash during append

        scan = JournalReader(path).scan()
        assert scan.truncation is not None
        assert scan.truncation.reason == "torn-tail"
        assert scan.truncation.repairable
        assert scan.truncation.last_good_seq == len(lines) - 1
        assert len(scan.records) == len(lines)  # every full line survived

        # Reopening repairs the tail in place and appending verifies again.
        with JournalWriter(path, fsync=False) as writer:
            writer.append("after-repair", {})
        healed = JournalReader(path).scan()
        assert healed.ok
        assert healed.of_kind("after-repair")

    def test_flipped_byte_is_checksum_mismatch(self, tmp_path):
        path, lines = self.journal(tmp_path)
        damaged = lines[3].replace('"i":2', '"i":7')  # silent value edit
        assert damaged != lines[3]
        list_segments(path)[0].write_text("\n".join(lines[:3] + [damaged] + lines[4:]) + "\n")

        scan = JournalReader(path).scan()
        assert scan.truncation is not None
        assert scan.truncation.reason == "checksum-mismatch"
        assert not scan.truncation.repairable
        assert scan.truncation.last_good_seq == 2

    def test_garbage_middle_line_is_corrupt_record(self, tmp_path):
        path, lines = self.journal(tmp_path)
        list_segments(path)[0].write_text(
            "\n".join(lines[:4] + ["!!not json!!"] + lines[5:]) + "\n"
        )
        scan = JournalReader(path).scan()
        assert scan.truncation is not None
        assert scan.truncation.reason == "corrupt-record"
        assert scan.truncation.last_good_seq == 3

    def test_rewritten_record_is_hash_chain_break(self, tmp_path):
        path, lines = self.journal(tmp_path)
        # A perfectly well-formed record whose prev doesn't match line 3:
        # passes its own checksum, so only the chain can catch it.
        forged = encode_line(4, "f" * 16, "tick", 0.0, {"i": "forged"}).decode()
        list_segments(path)[0].write_text(
            "\n".join(lines[:4] + [forged] + lines[5:]) + "\n"
        )
        scan = JournalReader(path).scan()
        assert scan.truncation is not None
        assert scan.truncation.reason == "hash-chain-break"
        # Conservative: the record the forgery refused to chain to is
        # dropped too — we cannot tell which of the pair was replaced.
        assert scan.truncation.last_good_seq == 2
        assert scan.records[-1].seq == 2

    def test_deleted_line_is_sequence_gap(self, tmp_path):
        path, lines = self.journal(tmp_path)
        list_segments(path)[0].write_text("\n".join(lines[:4] + lines[5:]) + "\n")
        scan = JournalReader(path).scan()
        assert scan.truncation is not None
        assert scan.truncation.reason == "sequence-gap"
        assert scan.truncation.last_good_seq == 3

    def test_missing_segment_is_sequence_gap(self, tmp_path):
        path = write_journal(
            tmp_path / "j",
            [("tick", {"i": i}) for i in range(20)],
            segment_max_records=5,
        )
        segments = list_segments(path)
        assert len(segments) >= 3
        segments[1].unlink()
        scan = JournalReader(path).scan()
        assert scan.truncation is not None
        assert scan.truncation.reason == "sequence-gap"

    def test_future_schema_version_is_refused_loudly(self, tmp_path):
        path = tmp_path / "j"
        path.mkdir()
        header = encode_line(
            0, "", "header", 0.0,
            {"schema_version": SCHEMA_VERSION + 1, "segment": 0, "meta": {}},
        )
        (path / "segment-00000.jsonl").write_bytes(header + b"\n")
        scan = JournalReader(path).scan()
        assert scan.truncation is not None
        assert scan.truncation.reason == "schema-version"
        assert str(SCHEMA_VERSION + 1) in scan.truncation.detail

    def test_scan_of_missing_or_empty_journal_is_clean(self, tmp_path):
        assert JournalReader(tmp_path / "absent").scan().ok
        (tmp_path / "empty").mkdir()
        scan = JournalReader(tmp_path / "empty").scan()
        assert scan.ok and scan.records == [] and scan.last_seq == -1


class TestWriterSafety:
    def test_reopen_refuses_deep_corruption(self, tmp_path):
        path = write_journal(tmp_path / "j", [("tick", {"i": i}) for i in range(6)])
        seg = list_segments(path)[0]
        lines = seg.read_bytes().decode().splitlines()
        seg.write_text("\n".join(lines[:3] + ["garbage"] + lines[4:]) + "\n")

        with pytest.raises(JournalError, match="corrupt-record"):
            JournalWriter(path)
        # fresh=True is the documented escape hatch.
        with JournalWriter(path, fresh=True, fsync=False) as writer:
            writer.append("reborn", {})
        assert JournalReader(path).scan().ok

    def test_closed_writer_refuses_appends(self, tmp_path):
        writer = JournalWriter(tmp_path / "j", fsync=False)
        writer.close()
        writer.close()  # idempotent
        assert writer.closed
        with pytest.raises(JournalError, match="closed"):
            writer.append("tick", {})

    def test_segment_files_are_valid_jsonl(self, tmp_path):
        """Each line parses standalone — the format is greppable JSONL."""
        path = write_journal(tmp_path / "j", [("tick", {"i": i}) for i in range(5)])
        for seg in list_segments(path):
            for line in seg.read_text().splitlines():
                record = json.loads(line)
                assert set(record) == {"seq", "prev", "h", "t", "kind", "data"}
