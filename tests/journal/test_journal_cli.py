"""``repro-journal`` CLI and status presenter: collapse, tail, gate.

The presenter contract: a journal tree full of repeated per-event
records collapses into one row per session / grid workload / service,
and ``--strict`` turns any truncation into a non-zero exit for CI.
"""

import json

import pytest

from repro.journal import JournalWriter, journal_rows
from repro.journal.cli import main
from repro.journal.records import list_segments
from repro.journal.status import discover_journals

from test_replay_parity import make_session


@pytest.fixture(scope="module")
def journal_tree(tmp_path_factory):
    """One session journal plus one synthetic service journal."""
    root = tmp_path_factory.mktemp("journals")
    make_session(tau=3).journaled(root, name="sess").run()
    with JournalWriter(
        root / "_service", meta={"journal_kind": "service"}, fsync=False
    ) as writer:
        writer.append("session-submitted", {"name": "t"})
        writer.append(
            "quantum", {"name": "t", "kind": "step", "seconds": 0.25, "iteration": 1}
        )
        writer.append("session-terminal", {"name": "t", "status": "done"})
    return root


class TestStatusPresenter:
    def test_rows_collapse_one_per_journal(self, journal_tree):
        columns, rows = journal_rows(journal_tree)
        assert "journal" in columns and "status" in columns
        by_name = {row["journal"]: row for row in rows}
        assert by_name["sess"]["kind"] == "session"
        assert by_name["sess"]["status"] == "finished"
        assert by_name["sess"]["iters"] == 3
        assert by_name["_service"]["kind"] == "service"
        assert by_name["_service"]["iters"] == 1  # one step quantum

    def test_discovery_finds_nested_journals_only(self, journal_tree, tmp_path):
        found = [p.name for p in discover_journals(journal_tree)]
        assert sorted(found) == ["_service", "sess"]
        (tmp_path / "not-a-journal").mkdir()
        assert discover_journals(tmp_path) == []


class TestCli:
    def test_status_command(self, journal_tree, capsys):
        assert main(["status", str(journal_tree)]) == 0
        out = capsys.readouterr().out
        assert "sess" in out and "_service" in out and "finished" in out

    def test_tail_command(self, journal_tree, capsys):
        assert main(["tail", str(journal_tree / "sess"), "-n", "2"]) == 0
        lines = capsys.readouterr().out.strip().splitlines()
        assert len(lines) == 2
        assert "run-finished" in lines[-1]

    def test_replay_command_text_and_json(self, journal_tree, capsys):
        assert main(["replay", str(journal_tree / "sess")]) == 0
        text = capsys.readouterr().out
        assert "3 iterations" in text and "finished" in text

        assert main(["replay", str(journal_tree / "sess"), "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["summary"]["iterations"] == 3
        assert len(payload["iterations"]) == 3
        assert payload["meta"]["config"]["tau"] == 3

    def test_counters_command_emits_json_lines(self, journal_tree, capsys):
        assert main(["counters", str(journal_tree)]) == 0
        entries = [
            json.loads(line)
            for line in capsys.readouterr().out.strip().splitlines()
        ]
        names = {entry["name"] for entry in entries}
        assert "journal_records_total" in names
        assert "session_iterations_total" in names
        assert "service_steps_total" in names
        assert all(
            entry["type"] in ("counter", "gauge") and "labels" in entry
            for entry in entries
        )

    def test_strict_gates_on_truncation(self, tmp_path, capsys):
        with JournalWriter(
            tmp_path / "j", meta={"journal_kind": "service"}, fsync=False
        ) as writer:
            writer.append("tick", {"i": 0})
        assert main(["--strict", "status", str(tmp_path)]) == 0

        seg = list_segments(tmp_path / "j")[0]
        with open(seg, "ab") as fh:
            fh.write(b'{"torn')
        assert main(["--strict", "status", str(tmp_path)]) == 1
        assert "torn-tail" in capsys.readouterr().err
        # Without --strict the same tree still renders (exit 0).
        assert main(["status", str(tmp_path)]) == 0
