"""Replay parity and crash-resume: the journal is a faithful run record.

Two acceptance criteria from the observability issue, pinned at test
scale:

* **Replay parity** — for seeded sessions across the engine's compute
  modes (default full-refit, ``incremental=True``, out-of-core), the
  history :class:`~repro.journal.SessionReplay` reconstructs *from the
  journal alone* matches the live ``FroteResult.history``
  field-for-field.
* **Crash-resume** — a journaled run SIGKILLed mid-iteration in a
  subprocess, then re-run, fast-forwards its committed iterations and
  finishes with a final dataset bit-identical to the uninterrupted run.
"""

import json
import signal
import subprocess
import sys
from pathlib import Path

import numpy as np
import pytest

import repro
from repro.data import Dataset, Table, make_schema
from repro.experiments.persistence import from_jsonable
from repro.journal import JournalReader, JournalResumeError, SessionReplay

SCHEMA = make_schema(
    numeric=["age", "income"],
    categorical={"marital": ("single", "married", "divorced")},
)


def make_dataset(n=250, seed=42):
    rng = np.random.default_rng(seed)
    table = Table(
        SCHEMA,
        {
            "age": rng.uniform(18, 80, n),
            "income": rng.uniform(10, 200, n),
            "marital": rng.integers(0, 3, n),
        },
    )
    y = ((table.column("age") < 40) & (table.column("income") > 100)).astype(
        np.int64
    )
    noise = rng.uniform(size=n) < 0.05
    y[noise] = 1 - y[noise]
    return Dataset(table, y, ("deny", "approve"))


def make_session(dataset=None, *, tau=4, seed=42, **configure):
    return (
        repro.edit(dataset if dataset is not None else make_dataset())
        .with_rules(
            "age < 35 => approve",
            "income < 40 AND marital = 'single' => deny",
        )
        .with_algorithm("LR")
        .configure(tau=tau, q=0.5, random_state=seed, **configure)
    )


class TestReplayParity:
    @pytest.mark.parametrize(
        "mode, configure",
        [
            ("default", {}),
            ("incremental", {"incremental": True}),
            ("out-of-core", {"max_resident_mb": 0.05, "shard_rows": 64}),
        ],
    )
    def test_history_matches_live_run_field_for_field(
        self, tmp_path, mode, configure
    ):
        result = (
            make_session(**configure).journaled(tmp_path, name=mode).run()
        )
        replay = SessionReplay.load(tmp_path / mode)

        assert replay.truncation is None
        assert replay.history() == result.history  # IterationRecord equality
        assert replay.summary()["iterations"] == result.iterations
        assert replay.summary()["n_added"] == result.n_added
        assert replay.summary()["finished"]
        assert replay.summary()["runs"] == 1
        # The objective trajectory is the monotone best-so-far curve.
        trajectory = replay.objective_trajectory()
        assert trajectory == sorted(trajectory, reverse=True)

    def test_replay_carries_timings_and_rng(self, tmp_path):
        make_session().journaled(tmp_path, name="s").run()
        replay = SessionReplay.load(tmp_path / "s")
        for it in replay.iterations:
            assert it.stage_seconds and it.iteration_seconds > 0
            assert it.rng is not None and "state" in it.rng
        accepted = [it for it in replay.iterations if it.accepted]
        for it in accepted:
            assert it.batch is not None
            assert sum(it.per_rule_counts) == it.n_generated
            assert len(it.batch["labels"]) == it.n_generated
        assert replay.meta["dataset"]["n"] == 250
        assert replay.summary()["seconds"] > 0

    def test_journaled_run_equals_plain_run(self, tmp_path):
        plain = make_session().run()
        journaled = make_session().journaled(tmp_path, name="s").run()
        assert journaled.history == plain.history
        np.testing.assert_array_equal(journaled.dataset.y, plain.dataset.y)
        for name in SCHEMA.names:
            np.testing.assert_array_equal(
                journaled.dataset.X.column(name), plain.dataset.X.column(name)
            )

    def test_finished_journal_fast_forwards_to_same_result(self, tmp_path):
        first = make_session().journaled(tmp_path, name="s").run()
        again = make_session().journaled(tmp_path, name="s").run()
        assert again.history == first.history
        np.testing.assert_array_equal(again.dataset.y, first.dataset.y)
        replay = SessionReplay.load(tmp_path / "s")
        assert replay.summary()["resumes"] == 1  # one run-resumed record
        assert replay.summary()["runs"] == 1  # ...extending the same run

    def test_resume_false_starts_fresh(self, tmp_path):
        make_session().journaled(tmp_path, name="s").run()
        make_session().journaled(tmp_path, name="s", resume=False).run()
        replay = SessionReplay.load(tmp_path / "s")
        assert replay.summary()["runs"] == 1
        assert replay.summary()["resumes"] == 0


class TestResumeValidation:
    """Resume refuses journals that belong to a different run."""

    def test_config_mismatch(self, tmp_path):
        make_session(tau=2).journaled(tmp_path, name="s").run()
        with pytest.raises(JournalResumeError, match="tau"):
            make_session(tau=5).journaled(tmp_path, name="s").run()

    def test_seed_mismatch(self, tmp_path):
        make_session(tau=2, seed=1).journaled(tmp_path, name="s").run()
        with pytest.raises(JournalResumeError, match="random_state"):
            make_session(tau=2, seed=2).journaled(tmp_path, name="s").run()

    def test_dataset_mismatch(self, tmp_path):
        make_session(tau=2).journaled(tmp_path, name="s").run()
        other = make_dataset(seed=7)
        with pytest.raises(JournalResumeError, match="fingerprint"):
            make_session(other, tau=2).journaled(tmp_path, name="s").run()

    def test_unseeded_session_cannot_resume(self, tmp_path):
        session = make_session(tau=2)
        session._config_kwargs["random_state"] = None
        session.journaled(tmp_path, name="s").run()
        fresh = make_session(tau=2)
        fresh._config_kwargs["random_state"] = None
        with pytest.raises(JournalResumeError, match="integer random_state"):
            fresh.journaled(tmp_path, name="s").run()

    def test_journal_name_requires_journal_dir(self):
        from repro.core.config import FroteConfig

        with pytest.raises(ValueError, match="journal_name"):
            FroteConfig(journal_name="s")


# --------------------------------------------------------------------- #
# SIGKILL crash-resume (subprocess: a real process dies mid-iteration).
# --------------------------------------------------------------------- #
CHILD = """
import os, signal, sys
sys.path.insert(0, {test_dir!r})
from test_replay_parity import make_session

mode, jdir, out = sys.argv[1], sys.argv[2], sys.argv[3]
kill_at_fit = int(os.environ.get("KILL_AT_FIT", "0"))

from repro.models import paper_algorithm
base = paper_algorithm("LR")
fits = 0

def algorithm(dataset):
    global fits
    fits += 1
    if mode == "kill" and fits == kill_at_fit:
        os.kill(os.getpid(), signal.SIGKILL)  # dies mid-iteration
    return base(dataset)

session = make_session(tau=6).with_algorithm(algorithm)
result = session.journaled(jdir, name="crash").run()

import json
from repro.experiments.persistence import to_jsonable
payload = {{
    "columns": {{
        name: result.dataset.X.column(name)
        for name in result.dataset.X.schema.names
    }},
    "y": result.dataset.y,
    "n_added": result.n_added,
    "history": [
        [r.iteration, r.candidate_loss, r.accepted, r.n_generated,
         r.n_added_total]
        for r in result.history
    ],
}}
with open(out, "w") as fh:
    json.dump(to_jsonable(payload), fh, allow_nan=False)
"""


def run_child(tmp_path, mode, jdir, out, *, kill_at_fit=0):
    script = tmp_path / "child.py"
    script.write_text(CHILD.format(test_dir=str(Path(__file__).parent)))
    src = str(Path(__file__).resolve().parents[2] / "src")
    import os

    env = dict(os.environ, PYTHONPATH=src, KILL_AT_FIT=str(kill_at_fit))
    return subprocess.run(
        [sys.executable, str(script), mode, str(jdir), str(out)],
        env=env,
        capture_output=True,
        text=True,
        timeout=300,
    )


@pytest.mark.slow
class TestCrashResume:
    def test_sigkill_mid_iteration_resumes_bit_identical(self, tmp_path):
        # Reference: the same journaled session, uninterrupted.
        full = run_child(tmp_path, "run", tmp_path / "j-full", tmp_path / "full.json")
        assert full.returncode == 0, full.stderr

        # Fit #4 happens inside loop iteration 2 (setup fit + one
        # candidate fit per iteration), so the process dies with two
        # iterations committed and the third in flight.
        crashed = run_child(
            tmp_path, "kill", tmp_path / "j", tmp_path / "unused.json",
            kill_at_fit=4,
        )
        assert crashed.returncode == -signal.SIGKILL

        scan = JournalReader(tmp_path / "j" / "crash").scan()
        assert scan.truncation is None or scan.truncation.repairable
        committed = SessionReplay.load(tmp_path / "j" / "crash").committed()
        assert 0 < len(committed) < 6  # partial progress survived the kill

        # Re-running the same spec fast-forwards and finishes the run.
        resumed = run_child(
            tmp_path, "run", tmp_path / "j", tmp_path / "resumed.json"
        )
        assert resumed.returncode == 0, resumed.stderr

        with open(tmp_path / "full.json") as fh:
            want = from_jsonable(json.load(fh))
        with open(tmp_path / "resumed.json") as fh:
            got = from_jsonable(json.load(fh))
        assert got["history"] == want["history"]
        assert got["n_added"] == want["n_added"]
        np.testing.assert_array_equal(np.asarray(got["y"]), np.asarray(want["y"]))
        for name, column in want["columns"].items():
            np.testing.assert_array_equal(
                np.asarray(got["columns"][name]), np.asarray(column)
            )

        replay = SessionReplay.load(tmp_path / "j" / "crash")
        assert replay.summary()["resumes"] == 1
        assert replay.summary()["finished"]
        assert replay.summary()["iterations"] == 6
        # The resumed journal alone reconstructs the full history.
        assert [
            [r.iteration, r.candidate_loss, r.accepted, r.n_generated,
             r.n_added_total]
            for r in replay.history()
        ] == want["history"]
