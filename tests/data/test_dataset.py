"""Tests for the Dataset container."""

import numpy as np
import pytest

from repro.data import Dataset, Table, make_schema


@pytest.fixture
def dataset():
    schema = make_schema(numeric=["x"])
    t = Table(schema, {"x": np.arange(6, dtype=float)})
    return Dataset(t, np.array([0, 1, 0, 1, 2, 2]), ("a", "b", "c"))


class TestConstruction:
    def test_basic(self, dataset):
        assert dataset.n == 6
        assert dataset.n_classes == 3

    def test_length_mismatch_raises(self, dataset):
        with pytest.raises(ValueError, match="labels"):
            Dataset(dataset.X, np.array([0, 1]), ("a", "b"))

    def test_label_out_of_range_raises(self, dataset):
        with pytest.raises(ValueError, match="codes in"):
            Dataset(dataset.X, np.array([0, 1, 0, 1, 2, 5]), ("a", "b", "c"))

    def test_negative_label_raises(self, dataset):
        with pytest.raises(ValueError):
            Dataset(dataset.X, np.array([0, -1, 0, 1, 2, 2]), ("a", "b", "c"))

    def test_single_class_name_raises(self, dataset):
        with pytest.raises(ValueError, match="at least 2"):
            Dataset(dataset.X, np.zeros(6, dtype=int), ("only",))

    def test_2d_labels_raise(self, dataset):
        with pytest.raises(ValueError, match="1-D"):
            Dataset(dataset.X, np.zeros((6, 1), dtype=int), ("a", "b"))


class TestOperations:
    def test_class_counts(self, dataset):
        assert dataset.class_counts().tolist() == [2, 2, 2]

    def test_take(self, dataset):
        sub = dataset.take(np.array([4, 5]))
        assert sub.y.tolist() == [2, 2]

    def test_loc_mask(self, dataset):
        sub = dataset.loc_mask(dataset.y == 0)
        assert sub.n == 2

    def test_with_labels_copies(self, dataset):
        y = np.zeros(6, dtype=int)
        d2 = dataset.with_labels(y)
        y[0] = 2
        assert d2.y[0] == 0

    def test_concat(self, dataset):
        d = Dataset.concat([dataset, dataset])
        assert d.n == 12
        assert d.class_counts().tolist() == [4, 4, 4]

    def test_concat_label_mismatch_raises(self, dataset):
        other = Dataset(dataset.X, dataset.y, ("x", "y", "z"))
        with pytest.raises(ValueError, match="label names"):
            Dataset.concat([dataset, other])

    def test_concat_empty_raises(self):
        with pytest.raises(ValueError):
            Dataset.concat([])

    def test_copy_is_independent(self, dataset):
        c = dataset.copy()
        assert c.n == dataset.n
        assert c.y is not dataset.y

    def test_repr(self, dataset):
        assert "n=6" in repr(dataset)
