"""Tests for the Table container."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data import Table, make_schema


@pytest.fixture
def schema():
    return make_schema(numeric=["x"], categorical={"c": ("a", "b", "z")})


@pytest.fixture
def table(schema):
    return Table(schema, {"x": np.array([1.0, 2.0, 3.0]), "c": np.array([0, 2, 1])})


class TestConstruction:
    def test_basic(self, table):
        assert table.n_rows == 3
        assert table.n_columns == 2

    def test_missing_column_raises(self, schema):
        with pytest.raises(ValueError, match="missing"):
            Table(schema, {"x": np.array([1.0])})

    def test_extra_column_raises(self, schema):
        with pytest.raises(ValueError, match="extra"):
            Table(schema, {"x": np.zeros(1), "c": np.zeros(1, int), "y": np.zeros(1)})

    def test_length_mismatch_raises(self, schema):
        with pytest.raises(ValueError, match="rows"):
            Table(schema, {"x": np.zeros(2), "c": np.zeros(3, int)})

    def test_out_of_range_code_raises(self, schema):
        with pytest.raises(ValueError, match="codes outside"):
            Table(schema, {"x": np.zeros(1), "c": np.array([5])})

    def test_negative_code_raises(self, schema):
        with pytest.raises(ValueError, match="codes outside"):
            Table(schema, {"x": np.zeros(1), "c": np.array([-1])})

    def test_2d_column_raises(self, schema):
        with pytest.raises(ValueError, match="1-D"):
            Table(schema, {"x": np.zeros((2, 2)), "c": np.zeros(2, int)})

    def test_copy_semantics(self, schema):
        x = np.array([1.0, 2.0])
        t = Table(schema, {"x": x, "c": np.array([0, 1])})
        x[0] = 99.0
        assert t.column("x")[0] == 1.0

    def test_from_records_with_strings(self, schema):
        t = Table.from_records(schema, [{"x": 1, "c": "z"}, {"x": 2, "c": 0}])
        assert t.column("c").tolist() == [2, 0]

    def test_empty(self, schema):
        t = Table.empty(schema)
        assert t.n_rows == 0


class TestAccess:
    def test_column_missing_raises(self, table):
        with pytest.raises(KeyError):
            table.column("nope")

    def test_decoded(self, table):
        assert table.decoded("c").tolist() == ["a", "z", "b"]

    def test_decoded_numeric_raises(self, table):
        with pytest.raises(ValueError, match="numeric"):
            table.decoded("x")

    def test_row(self, table):
        assert table.row(1) == {"x": 2.0, "c": 2}

    def test_row_decoded(self, table):
        assert table.row_decoded(1) == {"x": 2.0, "c": "z"}

    def test_row_out_of_range(self, table):
        with pytest.raises(IndexError):
            table.row(5)

    def test_repr_mentions_rows(self, table):
        assert "3 rows" in repr(table)


class TestSelection:
    def test_take_preserves_order(self, table):
        t = table.take(np.array([2, 0]))
        assert t.column("x").tolist() == [3.0, 1.0]

    def test_loc_mask(self, table):
        t = table.loc_mask(np.array([True, False, True]))
        assert t.n_rows == 2

    def test_loc_mask_wrong_shape_raises(self, table):
        with pytest.raises(ValueError, match="mask shape"):
            table.loc_mask(np.array([True]))

    def test_with_column(self, table):
        t2 = table.with_column("x", np.array([9.0, 8.0, 7.0]))
        assert t2.column("x")[0] == 9.0
        assert table.column("x")[0] == 1.0  # original untouched

    def test_with_column_wrong_length(self, table):
        with pytest.raises(ValueError, match="shape"):
            table.with_column("x", np.array([1.0]))


class TestConcat:
    def test_concat(self, table):
        t = Table.concat([table, table])
        assert t.n_rows == 6

    def test_concat_empty_list_raises(self):
        with pytest.raises(ValueError):
            Table.concat([])

    def test_concat_schema_mismatch_raises(self, table):
        other_schema = make_schema(numeric=["x"])
        other = Table(other_schema, {"x": np.array([1.0])})
        with pytest.raises(ValueError, match="different schemas"):
            Table.concat([table, other])

    def test_concat_with_empty(self, table, schema):
        t = Table.concat([table, Table.empty(schema)])
        assert t.n_rows == 3


class TestMakeSchema:
    def test_default_order(self):
        s = make_schema(numeric=["a"], categorical={"b": ("x", "y")})
        assert s.names == ("a", "b")

    def test_explicit_order(self):
        s = make_schema(numeric=["a"], categorical={"b": ("x", "y")}, order=["b", "a"])
        assert s.names == ("b", "a")

    def test_bad_order_raises(self):
        with pytest.raises(ValueError, match="order"):
            make_schema(numeric=["a"], order=["a", "b"])


@settings(max_examples=30, deadline=None)
@given(
    n=st.integers(min_value=0, max_value=50),
    seed=st.integers(min_value=0, max_value=1000),
)
def test_take_loc_mask_roundtrip(n, seed):
    """take(flatnonzero(mask)) must equal loc_mask(mask) for any mask."""
    schema = make_schema(numeric=["x"], categorical={"c": ("a", "b")})
    rng = np.random.default_rng(seed)
    t = Table(schema, {"x": rng.normal(size=n), "c": rng.integers(0, 2, n)})
    mask = rng.uniform(size=n) < 0.5
    a = t.loc_mask(mask)
    b = t.take(np.flatnonzero(mask))
    np.testing.assert_array_equal(a.column("x"), b.column("x"))
    np.testing.assert_array_equal(a.column("c"), b.column("c"))
