"""Tests for feature encoders."""

import numpy as np
import pytest

from repro.data import OrdinalEncoder, StandardScaler, Table, TabularEncoder, make_schema


@pytest.fixture
def table():
    schema = make_schema(numeric=["x", "y"], categorical={"c": ("a", "b", "z")})
    return Table(
        schema,
        {
            "x": np.array([1.0, 2.0, 3.0, 4.0]),
            "y": np.array([10.0, 10.0, 10.0, 10.0]),
            "c": np.array([0, 1, 2, 0]),
        },
    )


class TestStandardScaler:
    def test_zero_mean_unit_var(self):
        X = np.random.default_rng(0).normal(5, 3, (100, 2))
        Z = StandardScaler().fit_transform(X)
        np.testing.assert_allclose(Z.mean(axis=0), 0, atol=1e-12)
        np.testing.assert_allclose(Z.std(axis=0), 1, atol=1e-12)

    def test_constant_feature_maps_to_zero(self):
        X = np.full((5, 1), 3.0)
        Z = StandardScaler().fit_transform(X)
        np.testing.assert_allclose(Z, 0.0)

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            StandardScaler().transform(np.zeros((1, 1)))


class TestTabularEncoder:
    def test_shape(self, table):
        M = TabularEncoder().fit_transform(table)
        assert M.shape == (4, 2 + 3)

    def test_feature_names(self, table):
        enc = TabularEncoder().fit(table)
        assert enc.feature_names == ("x", "y", "c=a", "c=b", "c=z")
        assert enc.n_features == 5

    def test_onehot_correct(self, table):
        M = TabularEncoder(standardize=False).fit_transform(table)
        np.testing.assert_array_equal(M[:, 2:], [[1, 0, 0], [0, 1, 0], [0, 0, 1], [1, 0, 0]])

    def test_standardize_numeric(self, table):
        M = TabularEncoder(standardize=True).fit_transform(table)
        np.testing.assert_allclose(M[:, 0].mean(), 0, atol=1e-12)
        # Constant column y maps to zero, not NaN.
        np.testing.assert_allclose(M[:, 1], 0.0)

    def test_no_standardize(self, table):
        M = TabularEncoder(standardize=False).fit_transform(table)
        np.testing.assert_array_equal(M[:, 0], [1, 2, 3, 4])

    def test_transform_consistency_on_new_rows(self, table):
        enc = TabularEncoder().fit(table)
        sub = table.take(np.array([0, 3]))
        M_full = enc.transform(table)
        M_sub = enc.transform(sub)
        np.testing.assert_allclose(M_sub, M_full[[0, 3]])

    def test_schema_mismatch_raises(self, table):
        enc = TabularEncoder().fit(table)
        other = Table(make_schema(numeric=["x"]), {"x": np.zeros(1)})
        with pytest.raises(ValueError, match="schema"):
            enc.transform(other)

    def test_unfitted_raises(self, table):
        with pytest.raises(RuntimeError):
            TabularEncoder().transform(table)

    def test_empty_table(self, table):
        enc = TabularEncoder().fit(table)
        empty = table.loc_mask(np.zeros(4, dtype=bool))
        assert enc.transform(empty).shape == (0, 5)


class TestOrdinalEncoder:
    def test_shape_one_column_per_feature(self, table):
        M = OrdinalEncoder().fit_transform(table)
        assert M.shape == (4, 3)

    def test_categorical_codes_kept(self, table):
        M = OrdinalEncoder().fit_transform(table)
        np.testing.assert_array_equal(M[:, 2], [0, 1, 2, 0])

    def test_unfitted_raises(self, table):
        with pytest.raises(RuntimeError):
            OrdinalEncoder().transform(table)

    def test_schema_mismatch_raises(self, table):
        enc = OrdinalEncoder().fit(table)
        other = Table(make_schema(numeric=["x"]), {"x": np.zeros(1)})
        with pytest.raises(ValueError, match="schema"):
            enc.transform(other)
