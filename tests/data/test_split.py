"""Tests for train/test and coverage-aware (tcf) splits."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data import (
    Dataset,
    Table,
    coverage_aware_split,
    make_schema,
    stratified_split,
    train_test_split,
)


def _dataset(n=200, seed=0):
    schema = make_schema(numeric=["x"])
    rng = np.random.default_rng(seed)
    t = Table(schema, {"x": rng.uniform(0, 1, n)})
    return Dataset(t, rng.integers(0, 2, n), ("a", "b"))


class TestTrainTestSplit:
    def test_sizes(self):
        tr, te = train_test_split(_dataset(100), test_fraction=0.2, random_state=0)
        assert te.n == 20 and tr.n == 80

    def test_disjoint_and_complete(self):
        ds = _dataset(50)
        tr, te = train_test_split(ds, test_fraction=0.3, random_state=1)
        xs = np.concatenate([tr.X.column("x"), te.X.column("x")])
        np.testing.assert_allclose(np.sort(xs), np.sort(ds.X.column("x")))

    def test_reproducible(self):
        ds = _dataset(50)
        a = train_test_split(ds, random_state=7)[0].X.column("x")
        b = train_test_split(ds, random_state=7)[0].X.column("x")
        np.testing.assert_array_equal(a, b)

    def test_invalid_fraction(self):
        with pytest.raises(ValueError):
            train_test_split(_dataset(10), test_fraction=1.5)


class TestStratifiedSplit:
    def test_class_proportions_preserved(self):
        ds = _dataset(400, seed=3)
        tr, te = stratified_split(ds, test_fraction=0.25, random_state=0)
        for c in range(2):
            frac_tr = (tr.y == c).mean()
            frac_full = (ds.y == c).mean()
            assert abs(frac_tr - frac_full) < 0.05

    def test_total_preserved(self):
        ds = _dataset(101)
        tr, te = stratified_split(ds, random_state=0)
        assert tr.n + te.n == 101


class TestCoverageAwareSplit:
    def test_tcf_zero_puts_no_coverage_in_train(self):
        ds = _dataset(300)
        mask = ds.X.column("x") < 0.3
        sp = coverage_aware_split(ds, mask, tcf=0.0, random_state=0)
        assert sp.train_coverage_mask.sum() == 0
        assert sp.test_coverage_mask.sum() == mask.sum()

    def test_tcf_one_puts_all_coverage_in_train(self):
        ds = _dataset(300)
        mask = ds.X.column("x") < 0.3
        sp = coverage_aware_split(ds, mask, tcf=1.0, random_state=0)
        assert sp.train_coverage_mask.sum() == mask.sum()

    def test_partition_is_complete(self):
        ds = _dataset(150)
        mask = ds.X.column("x") > 0.5
        sp = coverage_aware_split(ds, mask, tcf=0.2, random_state=0)
        assert sp.train.n + sp.test.n == ds.n

    def test_outside_test_fraction(self):
        ds = _dataset(1000)
        mask = ds.X.column("x") < 0.2
        sp = coverage_aware_split(
            ds, mask, tcf=0.0, outside_test_fraction=0.2, random_state=0
        )
        n_out = int((~mask).sum())
        n_out_test = sp.test.n - int(sp.test_coverage_mask.sum())
        assert abs(n_out_test - 0.2 * n_out) <= 1

    def test_masks_match_actual_coverage(self):
        ds = _dataset(200)
        mask = ds.X.column("x") < 0.4
        sp = coverage_aware_split(ds, mask, tcf=0.3, random_state=5)
        # Rows flagged as coverage in train must actually satisfy the mask.
        train_x = sp.train.X.column("x")
        assert np.all(train_x[sp.train_coverage_mask] < 0.4)
        assert np.all(train_x[~sp.train_coverage_mask] >= 0.4)

    def test_wrong_mask_shape_raises(self):
        ds = _dataset(10)
        with pytest.raises(ValueError, match="coverage_mask"):
            coverage_aware_split(ds, np.zeros(5, dtype=bool), tcf=0.1)

    def test_reproducible(self):
        ds = _dataset(100)
        mask = ds.X.column("x") < 0.5
        a = coverage_aware_split(ds, mask, tcf=0.2, random_state=3)
        b = coverage_aware_split(ds, mask, tcf=0.2, random_state=3)
        np.testing.assert_array_equal(a.train.X.column("x"), b.train.X.column("x"))


@settings(max_examples=25, deadline=None)
@given(
    tcf=st.floats(min_value=0.0, max_value=1.0),
    seed=st.integers(min_value=0, max_value=500),
)
def test_tcf_fraction_property(tcf, seed):
    """Train coverage count must be round(tcf * |coverage|)."""
    ds = _dataset(200, seed=seed)
    mask = ds.X.column("x") < 0.5
    sp = coverage_aware_split(ds, mask, tcf=tcf, random_state=seed)
    expected = int(round(tcf * mask.sum()))
    assert sp.train_coverage_mask.sum() == expected
