"""Tests for the out-of-core sharded column storage."""

import gc

import numpy as np
import pytest

from repro.data import (
    Dataset,
    DatasetBuilder,
    ShardedArray,
    ShardedTable,
    SpillDir,
    SpillPolicy,
    Table,
    TableBuilder,
    make_schema,
    spill_policy_for,
)

SCHEMA = make_schema(numeric=["a", "b"], categorical={"c": ("x", "y", "z")})


def make_table(n, seed=0):
    rng = np.random.default_rng(seed)
    return Table(
        SCHEMA,
        {
            "a": rng.normal(size=n),
            "b": rng.uniform(size=n),
            "c": rng.integers(0, 3, size=n),
        },
    )


def make_dataset(n, seed=0):
    rng = np.random.default_rng(seed + 100)
    return Dataset(make_table(n, seed), rng.integers(0, 2, size=n), ("neg", "pos"))


def tiny_policy(budget_bytes=0, shard_rows=8):
    """A policy that spills everything sealed (budget 0) by default."""
    return SpillPolicy(budget_bytes, shard_rows=shard_rows)


class TestShardedArray:
    def test_append_and_view_roundtrip(self):
        arr = ShardedArray(np.int64, policy=tiny_policy())
        arr.append(np.arange(5))
        arr.append(np.arange(5, 30))
        np.testing.assert_array_equal(arr.view(), np.arange(30))
        assert arr.n == 30

    def test_append_straddles_shard_boundaries(self):
        """A single append spanning several shards lands intact."""
        arr = ShardedArray(np.float64, policy=tiny_policy(shard_rows=8))
        first = np.arange(5, dtype=np.float64)
        arr.append(first)
        straddle = np.arange(100, 137, dtype=np.float64)  # 5 -> 42 spans 5 shards
        arr.append(straddle)
        assert arr.n_shards == 6
        np.testing.assert_array_equal(arr.view(), np.concatenate([first, straddle]))

    def test_sealed_shards_spill_past_budget(self):
        policy = tiny_policy(budget_bytes=2 * 8 * 8, shard_rows=8)  # two shards
        arr = ShardedArray(np.int64, policy=policy)
        arr.append(np.arange(44))  # 6 shards; 5 full + sealed, tail unsealed
        assert arr.n_spilled == 3  # LRU keeps the 2 most recent sealed
        assert policy.resident_bytes <= policy.max_resident_bytes
        np.testing.assert_array_equal(arr.view(), np.arange(44))

    def test_reads_after_eviction_come_from_spill_files(self):
        arr = ShardedArray(np.int64, policy=tiny_policy(shard_rows=8))
        arr.append(np.arange(64))
        assert arr.n_spilled == 8  # everything sealed is spilled (budget 0)
        np.testing.assert_array_equal(arr.slice(3, 21), np.arange(3, 21))
        np.testing.assert_array_equal(
            arr.gather(np.array([0, 7, 8, 63, -1])), [0, 7, 8, 63, 63]
        )

    def test_slice_within_one_shard_is_zero_copy(self):
        policy = SpillPolicy(1 << 20, shard_rows=8)
        arr = ShardedArray(np.int64, policy=policy)
        arr.append(np.arange(16))
        view = arr.slice(8, 12)
        assert view.base is not None  # a view, not a copy
        assert not view.flags.writeable

    def test_view_is_read_only(self):
        arr = ShardedArray(np.float64, policy=tiny_policy())
        arr.append(np.zeros(20))
        with pytest.raises(ValueError):
            arr.view()[0] = 1.0

    def test_write_at_cannot_touch_committed(self):
        arr = ShardedArray(np.int64, policy=tiny_policy())
        arr.append(np.arange(4))
        with pytest.raises(ValueError, match="committed"):
            arr.write_at(2, np.array([9]))

    def test_write_at_then_set_length(self):
        arr = ShardedArray(np.int64, policy=tiny_policy(shard_rows=4))
        arr.append(np.arange(4))
        arr.write_at(4, np.array([7, 8]))
        assert arr.n == 4  # staged, not committed
        arr.set_length(6)
        np.testing.assert_array_equal(arr.view(), [0, 1, 2, 3, 7, 8])

    def test_staged_writes_overwritten_by_restage(self):
        arr = ShardedArray(np.int64, policy=tiny_policy(shard_rows=4))
        arr.append(np.arange(4))
        arr.write_at(4, np.array([7, 8, 9]))
        arr.write_at(4, np.array([5, 6]))  # reject path: overwrite staged
        arr.set_length(6)
        np.testing.assert_array_equal(arr.view(), [0, 1, 2, 3, 5, 6])

    def test_truncate_across_spilled_shard_reloads(self):
        """Rollback to mid-shard reloads the committed prefix from disk."""
        arr = ShardedArray(np.int64, policy=tiny_policy(shard_rows=8))
        arr.append(np.arange(64))
        assert arr.n_spilled == 8
        arr.truncate(21)  # boundary shard (index 2) was spilled
        assert arr.n == 21
        np.testing.assert_array_equal(arr.view(), np.arange(21))
        # New appends after the rollback land correctly.
        arr.append(np.arange(100, 120))
        np.testing.assert_array_equal(
            arr.view(), np.concatenate([np.arange(21), np.arange(100, 120)])
        )

    def test_truncate_at_exact_shard_boundary(self):
        arr = ShardedArray(np.int64, policy=tiny_policy(shard_rows=8))
        arr.append(np.arange(40))
        arr.truncate(16)
        np.testing.assert_array_equal(arr.view(), np.arange(16))
        arr.append(np.full(4, -1))
        np.testing.assert_array_equal(arr.view()[16:], [-1, -1, -1, -1])

    def test_truncate_bounds(self):
        arr = ShardedArray(np.int64, policy=tiny_policy())
        arr.append(np.arange(10))
        with pytest.raises(ValueError, match="truncate"):
            arr.truncate(11)

    def test_gather_out_of_range_raises(self):
        arr = ShardedArray(np.int64, policy=tiny_policy())
        arr.append(np.arange(10))
        with pytest.raises(IndexError):
            arr.gather(np.array([10]))
        with pytest.raises(IndexError):
            arr.gather(np.array([-11]))

    def test_gather_spilled_large_span_per_element_reads(self):
        """A sparse gather spanning a spilled shard uses per-element reads."""
        arr = ShardedArray(np.int64, policy=tiny_policy(shard_rows=1 << 14))
        arr.append(np.arange(1 << 15))
        assert arr.n_spilled == 2
        idx = np.array([0, (1 << 14) - 1, 1 << 14, (1 << 15) - 1])
        np.testing.assert_array_equal(arr.gather(idx), idx)

    def test_set_length_past_capacity_raises(self):
        arr = ShardedArray(np.int64, policy=tiny_policy(shard_rows=8))
        arr.append(np.arange(4))
        with pytest.raises(ValueError, match="capacity"):
            arr.set_length(9)

    def test_storage_stats(self):
        arr = ShardedArray(np.int64, policy=tiny_policy(shard_rows=8))
        arr.append(np.arange(20))
        stats = arr.storage_stats()
        assert stats["n_shards"] == 3
        assert stats["n_spilled"] == 2
        assert stats["spilled_bytes"] == 2 * 8 * 8


class TestSpillDir:
    def test_close_removes_directory(self):
        spill = SpillDir()
        path = spill.path
        assert path.exists()
        spill.close()
        assert not path.exists()
        assert spill.closed
        with pytest.raises(RuntimeError):
            spill.new_file()

    def test_garbage_collection_removes_directory(self):
        spill = SpillDir()
        path = spill.path
        del spill
        gc.collect()
        assert not path.exists()

    def test_spill_files_live_under_base(self, tmp_path):
        policy = SpillPolicy(0, shard_rows=4, spill=SpillDir(tmp_path))
        arr = ShardedArray(np.int64, policy=policy)
        arr.append(np.arange(16))
        assert any(tmp_path.iterdir())


class TestSpillPolicyConfig:
    def test_spill_policy_for_none_without_budget(self):
        class Cfg:
            max_resident_mb = None

        assert spill_policy_for(Cfg()) is None

    def test_spill_policy_for_reads_fields(self, tmp_path):
        class Cfg:
            max_resident_mb = 2.0
            shard_rows = 128
            spill_dir = str(tmp_path)

        policy = spill_policy_for(Cfg())
        assert policy.max_resident_bytes == 2 * 1024 * 1024
        assert policy.shard_rows == 128
        assert policy.spill.path.parent == tmp_path

    def test_invalid_budget_raises(self):
        with pytest.raises(ValueError, match="max_resident_bytes"):
            SpillPolicy(-1)
        with pytest.raises(ValueError, match="shard_rows"):
            SpillPolicy(0, shard_rows=0)


class TestShardedTable:
    def build(self, n=50, shard_rows=8, budget=0, seed=1):
        policy = SpillPolicy(budget, shard_rows=shard_rows)
        builder = TableBuilder.from_table(make_table(n, seed), policy=policy)
        return builder, builder.snapshot()

    def test_snapshot_type_and_columns(self):
        _, snap = self.build()
        assert isinstance(snap, ShardedTable)
        dense = make_table(50, 1)
        for name in SCHEMA.names:
            np.testing.assert_array_equal(snap.column(name), dense.column(name))

    def test_row_slice_take_loc_mask_row_parity(self):
        _, snap = self.build(60)
        dense = make_table(60, 1)
        np.testing.assert_array_equal(
            snap.row_slice(5, 23).column("a"), dense.row_slice(5, 23).column("a")
        )
        idx = np.array([0, 59, 17, 17, -1])
        for name in SCHEMA.names:
            np.testing.assert_array_equal(
                snap.take(idx).column(name), dense.take(idx).column(name)
            )
        mask = np.zeros(60, dtype=bool)
        mask[[3, 40, 59]] = True
        for name in SCHEMA.names:
            np.testing.assert_array_equal(
                snap.loc_mask(mask).column(name), dense.loc_mask(mask).column(name)
            )
        assert snap.row(13) == dense.row(13)
        assert snap.row(-2) == dense.row(-2)
        assert snap.row_decoded(47) == dense.row_decoded(47)
        np.testing.assert_array_equal(snap.decoded("c"), dense.decoded("c"))

    def test_snapshot_reads_after_eviction(self):
        """A snapshot taken before spills still reads correct bytes after."""
        policy = SpillPolicy(0, shard_rows=8)
        builder = TableBuilder(SCHEMA, policy=policy)
        first = make_table(30, 2)
        snap = builder.append(first)
        builder.append(make_table(100, 3))  # forces sealing + spilling
        assert builder.storage_stats()["n_spilled"] > 0
        for name in SCHEMA.names:
            np.testing.assert_array_equal(snap.column(name), first.column(name))

    def test_concat_and_with_column_fall_back_to_materialization(self):
        _, snap = self.build(20)
        dense = make_table(20, 1)
        both = Table.concat([snap, dense])
        assert both.n_rows == 40
        replaced = snap.with_column("a", np.zeros(20))
        assert float(replaced.column("a").sum()) == 0.0

    def test_row_out_of_range(self):
        _, snap = self.build(10)
        with pytest.raises(IndexError):
            snap.row(10)

    def test_unknown_column_keyerror(self):
        _, snap = self.build(10)
        with pytest.raises(KeyError, match="nope"):
            snap.column("nope")


class TestBuilderCheckpointRollback:
    def test_rollback_across_spilled_shard(self):
        """checkpoint -> grow past spills -> rollback -> bit-exact state."""
        policy = SpillPolicy(0, shard_rows=8)
        builder = DatasetBuilder.from_dataset(make_dataset(30, 5), policy=policy)
        token = builder.checkpoint()
        before = builder.snapshot()
        kept = {n: before.X.column(n).copy() for n in SCHEMA.names}
        kept_y = before.y.copy()
        builder.append(make_dataset(100, 6).X, make_dataset(100, 6).y)
        assert builder.storage_stats()["n_spilled"] > 0
        builder.rollback(token)
        assert builder.n_rows == 30
        after = builder.snapshot()
        for name in SCHEMA.names:
            np.testing.assert_array_equal(after.X.column(name), kept[name])
        np.testing.assert_array_equal(after.y, kept_y)
        # The builder keeps working after the rollback.
        grown = builder.append(make_dataset(12, 7).X, make_dataset(12, 7).y)
        assert grown.n == 42

    def test_dense_rollback_matches(self):
        builder = DatasetBuilder.from_dataset(make_dataset(30, 5))
        token = builder.checkpoint()
        builder.append(make_dataset(10, 6).X, make_dataset(10, 6).y)
        builder.rollback(token)
        assert builder.n_rows == 30


class TestShardedVsDenseParity:
    """Randomized bit-exact parity of sharded and dense TableBuilders."""

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_random_op_sequence(self, seed):
        rng = np.random.default_rng(seed)
        policy = SpillPolicy(
            int(rng.integers(0, 400)), shard_rows=int(rng.integers(3, 17))
        )
        dense = TableBuilder.from_table(make_table(10, seed))
        sharded = TableBuilder.from_table(make_table(10, seed), policy=policy)
        tokens = []
        for step in range(40):
            op = rng.integers(0, 5)
            if op == 0:  # append
                batch = make_table(int(rng.integers(1, 30)), seed * 100 + step)
                dense.append(batch)
                sharded.append(batch)
            elif op == 1:  # stage then discard (reject path)
                batch = make_table(int(rng.integers(1, 20)), seed * 200 + step)
                d_stage = dense.stage(batch)
                s_stage = sharded.stage(batch)
                for name in SCHEMA.names:
                    np.testing.assert_array_equal(
                        np.asarray(s_stage.column(name)), d_stage.column(name)
                    )
            elif op == 2:  # stage then commit
                batch = make_table(int(rng.integers(1, 20)), seed * 300 + step)
                d_stage = dense.stage(batch)
                s_stage = sharded.stage(batch)
                dense.commit(d_stage.n_rows)
                sharded.commit(s_stage.n_rows)
            elif op == 3:  # checkpoint / maybe rollback later
                tokens.append(dense.checkpoint())
                assert sharded.checkpoint() == tokens[-1]
            elif op == 4 and tokens:  # rollback to a random checkpoint
                token = tokens.pop(int(rng.integers(0, len(tokens))))
                dense.rollback(token)
                sharded.rollback(token)
                tokens = [t for t in tokens if t <= token]
            assert dense.n_rows == sharded.n_rows
        d_snap, s_snap = dense.snapshot(), sharded.snapshot()
        for name in SCHEMA.names:
            np.testing.assert_array_equal(
                np.asarray(s_snap.column(name)), d_snap.column(name)
            )
        if policy.max_resident_bytes < 400:
            assert policy.resident_bytes <= max(policy.max_resident_bytes, 0)
