"""Tests for schema-evolution deltas: replay, lineage, serialization."""

import numpy as np
import pytest

from repro.data import Dataset, Table, make_schema
from repro.data.evolution import (
    Migration,
    SchemaDelta,
    SchemaMigrationError,
    SchemaVersion,
    delta_from_jsonable,
    delta_to_jsonable,
    lineage,
    migrate_dataset,
    migrate_rule,
    migrate_ruleset,
    migrate_table,
    schema_delta_key,
    schema_fingerprint,
)
from repro.data.schema import CATEGORICAL, NUMERIC
from repro.rules import FeedbackRule, FeedbackRuleSet, Predicate, clause


def small_schema():
    return make_schema(
        numeric=["age", "income"],
        categorical={"color": ("red", "green", "blue")},
    )


def small_table(n=8, seed=0):
    rng = np.random.default_rng(seed)
    return Table(
        small_schema(),
        {
            "age": rng.uniform(18, 80, n),
            "income": rng.uniform(10, 200, n),
            "color": rng.integers(0, 3, n),
        },
    )


class TestConstructors:
    def test_add_numeric_defaults_zero_fill(self):
        delta = SchemaDelta.add_column("tenure")
        assert delta.kind == NUMERIC and delta.fill == 0.0

    def test_add_numeric_coerces_fill_to_float(self):
        assert SchemaDelta.add_column("tenure", fill=3).fill == 3.0

    def test_add_categorical_defaults_first_category(self):
        delta = SchemaDelta.add_column(
            "region", CATEGORICAL, ("north", "south")
        )
        assert delta.fill == "north"

    def test_add_categorical_without_vocab_raises(self):
        with pytest.raises(SchemaMigrationError, match="vocabulary"):
            SchemaDelta.add_column("region", CATEGORICAL)

    def test_add_fill_outside_vocab_raises(self):
        with pytest.raises(SchemaMigrationError, match="not in categories"):
            SchemaDelta.add_column(
                "region", CATEGORICAL, ("north", "south"), fill="west"
            )

    def test_add_unknown_kind_raises(self):
        with pytest.raises(SchemaMigrationError, match="unknown kind"):
            SchemaDelta.add_column("x", "ordinal")

    def test_rename_empty_target_raises(self):
        with pytest.raises(SchemaMigrationError, match="empty new name"):
            SchemaDelta.rename_column("age", "")

    def test_raw_unknown_op_raises(self):
        with pytest.raises(ValueError, match="unknown schema-delta op"):
            SchemaDelta(op="mutate", column="age")

    def test_raw_empty_column_raises(self):
        with pytest.raises(ValueError, match="column name"):
            SchemaDelta(op="drop_column", column="")

    def test_retype_needs_exactly_one_cast(self):
        with pytest.raises(SchemaMigrationError, match="exactly one"):
            SchemaDelta.retype_column("color", NUMERIC)
        with pytest.raises(SchemaMigrationError, match="exactly one"):
            SchemaDelta.retype_column(
                "color", NUMERIC, values={"red": 1.0}, bins=(0.5,)
            )

    def test_retype_values_targets_numeric(self):
        with pytest.raises(SchemaMigrationError, match="numeric"):
            SchemaDelta.retype_column(
                "color", CATEGORICAL, ("a", "b"), values={"red": 1.0}
            )

    def test_retype_bins_must_be_sorted(self):
        with pytest.raises(SchemaMigrationError, match="sorted"):
            SchemaDelta.retype_column(
                "age", CATEGORICAL, ("lo", "mid", "hi"), bins=(50.0, 30.0)
            )

    def test_retype_bins_count_matches_categories(self):
        with pytest.raises(SchemaMigrationError, match="thresholds"):
            SchemaDelta.retype_column(
                "age", CATEGORICAL, ("lo", "hi"), bins=(30.0, 50.0)
            )

    def test_retype_mapping_into_vocab(self):
        with pytest.raises(SchemaMigrationError, match="not in new vocabulary"):
            SchemaDelta.retype_column(
                "color", CATEGORICAL, ("warm", "cool"), mapping={"red": "hot"}
            )


class TestApplyToSchema:
    def test_add_appends(self):
        schema = SchemaDelta.add_column("tenure").apply_to_schema(small_schema())
        assert schema.names == ("age", "income", "color", "tenure")
        assert schema["tenure"].is_numeric

    def test_add_at_position(self):
        delta = SchemaDelta.add_column("tenure", position=1)
        assert delta.apply_to_schema(small_schema()).names == (
            "age", "tenure", "income", "color",
        )

    def test_add_existing_raises_migration_error(self):
        with pytest.raises(SchemaMigrationError, match="already exists"):
            SchemaDelta.add_column("age").apply_to_schema(small_schema())

    def test_drop(self):
        schema = SchemaDelta.drop_column("income").apply_to_schema(small_schema())
        assert schema.names == ("age", "color")

    def test_drop_missing_raises_migration_error(self):
        with pytest.raises(SchemaMigrationError, match="zzz"):
            SchemaDelta.drop_column("zzz").apply_to_schema(small_schema())

    def test_rename_preserves_position_and_kind(self):
        delta = SchemaDelta.rename_column("income", "annual_income")
        schema = delta.apply_to_schema(small_schema())
        assert schema.names == ("age", "annual_income", "color")
        assert schema["annual_income"].is_numeric

    def test_retype_source_kind_checked(self):
        delta = SchemaDelta.retype_column(
            "age", NUMERIC, values={"red": 1.0}
        )
        with pytest.raises(SchemaMigrationError, match="categorical source"):
            delta.apply_to_schema(small_schema())
        delta = SchemaDelta.retype_column(
            "color", CATEGORICAL, ("lo", "hi"), bins=(0.5,)
        )
        with pytest.raises(SchemaMigrationError, match="numeric source"):
            delta.apply_to_schema(small_schema())


class TestApplyToTable:
    def test_add_numeric_backfills(self):
        table = small_table()
        out = SchemaDelta.add_column("tenure", fill=3.0).apply_to_table(table)
        assert out.n_rows == table.n_rows
        np.testing.assert_array_equal(
            out.column("tenure"), np.full(table.n_rows, 3.0)
        )
        np.testing.assert_array_equal(out.column("age"), table.column("age"))

    def test_add_categorical_backfills_fill_code(self):
        delta = SchemaDelta.add_column(
            "region", CATEGORICAL, ("north", "south"), fill="south"
        )
        out = delta.apply_to_table(small_table())
        np.testing.assert_array_equal(
            out.column("region"), np.ones(8, dtype=np.int64)
        )

    def test_drop_removes_values(self):
        out = SchemaDelta.drop_column("income").apply_to_table(small_table())
        assert out.schema.names == ("age", "color")
        with pytest.raises(KeyError):
            out.column("income")

    def test_rename_keeps_values_bitwise(self):
        table = small_table()
        out = SchemaDelta.rename_column("income", "annual_income").apply_to_table(table)
        np.testing.assert_array_equal(
            out.column("annual_income"), table.column("income")
        )

    def test_retype_values_cast(self):
        table = small_table()
        delta = SchemaDelta.retype_column(
            "color", NUMERIC, values={"red": 1.0, "green": 2.0, "blue": 4.0}
        )
        out = delta.apply_to_table(table)
        lut = np.array([1.0, 2.0, 4.0])
        np.testing.assert_array_equal(
            out.column("color"), lut[table.column("color")]
        )

    def test_retype_values_missing_category_raises(self):
        delta = SchemaDelta.retype_column("color", NUMERIC, values={"red": 1.0})
        with pytest.raises(SchemaMigrationError, match="misses categories"):
            delta.apply_to_table(small_table())

    def test_retype_bins_cast(self):
        table = small_table()
        delta = SchemaDelta.retype_column(
            "age", CATEGORICAL, ("young", "mid", "old"), bins=(30.0, 50.0)
        )
        out = delta.apply_to_table(table)
        want = np.searchsorted(
            np.array([30.0, 50.0]), table.column("age"), side="right"
        )
        np.testing.assert_array_equal(out.column("age"), want)
        assert out.schema["age"].categories == ("young", "mid", "old")

    def test_retype_mapping_cast(self):
        table = small_table()
        delta = SchemaDelta.retype_column(
            "color",
            CATEGORICAL,
            ("warm", "cool"),
            mapping={"red": "warm", "green": "cool", "blue": "cool"},
        )
        out = delta.apply_to_table(table)
        lut = np.array([0, 1, 1], dtype=np.int64)
        np.testing.assert_array_equal(
            out.column("color"), lut[table.column("color")]
        )

    def test_retype_mapping_missing_source_category_raises(self):
        delta = SchemaDelta.retype_column(
            "color", CATEGORICAL, ("warm", "cool"),
            mapping={"red": "warm", "green": "cool"},
        )
        with pytest.raises(SchemaMigrationError, match="misses categories"):
            delta.apply_to_table(small_table())


class TestApplyToDataset:
    def test_labels_untouched(self):
        table = small_table()
        y = (table.column("age") < 40).astype(np.int64)
        data = Dataset(table, y, ("deny", "approve"))
        out = SchemaDelta.add_column("tenure").apply_to_dataset(data)
        assert out.X.schema.names[-1] == "tenure"
        np.testing.assert_array_equal(out.y, y)
        assert out.label_names == ("deny", "approve")

    def test_migrate_table_and_dataset_replay_in_order(self):
        table = small_table()
        deltas = [
            SchemaDelta.add_column("tenure", fill=1.0),
            SchemaDelta.rename_column("tenure", "years"),
        ]
        out = migrate_table(table, deltas)
        assert out.schema.names == ("age", "income", "color", "years")
        y = np.zeros(table.n_rows, dtype=np.int64)
        data = migrate_dataset(Dataset(table, y, ("a", "b")), deltas)
        assert data.X.schema.names == out.schema.names


class TestSurviveClassification:
    def test_model_survives_only_rename(self):
        assert SchemaDelta.rename_column("a", "b").model_survives
        assert not SchemaDelta.add_column("a").model_survives
        assert not SchemaDelta.drop_column("a").model_survives
        assert not SchemaDelta.retype_column(
            "a", NUMERIC, values={"x": 1.0, "y": 2.0}
        ).model_survives

    def test_coverage_survives(self):
        attrs = ("age", "income")
        assert SchemaDelta.add_column("tenure").coverage_survives(attrs)
        assert SchemaDelta.rename_column("age", "years").coverage_survives(attrs)
        assert SchemaDelta.drop_column("color").coverage_survives(attrs)
        assert not SchemaDelta.drop_column("age").coverage_survives(attrs)


class TestSerialization:
    @pytest.mark.parametrize(
        "delta",
        [
            SchemaDelta.add_column("tenure", fill=2.5, position=1),
            SchemaDelta.add_column(
                "region", CATEGORICAL, ("north", "south"), fill="south"
            ),
            SchemaDelta.drop_column("income"),
            SchemaDelta.rename_column("income", "annual_income"),
            SchemaDelta.retype_column(
                "color", NUMERIC, values={"red": 1.0, "green": 2.0}
            ),
            SchemaDelta.retype_column(
                "age", CATEGORICAL, ("lo", "hi"), bins=(40.0,)
            ),
            SchemaDelta.retype_column(
                "color", CATEGORICAL, ("warm", "cool"),
                mapping={"red": "warm", "green": "cool", "blue": "cool"},
            ),
        ],
        ids=lambda d: f"{d.op}-{d.column}",
    )
    def test_jsonable_roundtrip(self, delta):
        assert delta_from_jsonable(delta_to_jsonable(delta)) == delta

    def test_delta_key_is_canonical(self):
        a = SchemaDelta.retype_column(
            "color", NUMERIC, values={"red": 1.0, "green": 2.0}
        )
        b = delta_from_jsonable(delta_to_jsonable(a))
        assert schema_delta_key(a) == schema_delta_key(b)

    def test_unknown_op_from_jsonable_raises(self):
        with pytest.raises(ValueError, match="unknown schema-delta op"):
            delta_from_jsonable({"op": "mutate", "column": "x"})


class TestSchemaVersion:
    def test_fingerprint_content_addressed(self):
        assert schema_fingerprint(small_schema()) == schema_fingerprint(
            small_schema()
        )
        other = SchemaDelta.add_column("t").apply_to_schema(small_schema())
        assert schema_fingerprint(other) != schema_fingerprint(small_schema())

    def test_genesis_uses_fingerprint(self):
        node = SchemaVersion.genesis(small_schema())
        assert node.version == schema_fingerprint(small_schema())
        assert node.parent is None and node.delta is None

    def test_advance_is_deterministic_across_lineages(self):
        delta = SchemaDelta.add_column("tenure", fill=1.0)
        a = SchemaVersion.genesis(small_schema()).advance(delta)
        b = SchemaVersion.genesis(small_schema()).advance(delta)
        assert a.version == b.version
        assert a.parent == b.parent == schema_fingerprint(small_schema())
        assert a.schema == b.schema

    def test_different_deltas_diverge(self):
        genesis = SchemaVersion.genesis(small_schema())
        a = genesis.advance(SchemaDelta.add_column("t", fill=1.0))
        b = genesis.advance(SchemaDelta.add_column("t", fill=2.0))
        assert a.version != b.version

    def test_lineage_chains(self):
        deltas = [
            SchemaDelta.add_column("tenure"),
            SchemaDelta.rename_column("tenure", "years"),
        ]
        nodes = lineage(small_schema(), deltas)
        assert len(nodes) == 3
        assert [n.parent for n in nodes[1:]] == [
            nodes[0].version, nodes[1].version,
        ]
        assert nodes[-1].schema.names[-1] == "years"


class TestMigration:
    def test_sequence_protocol(self):
        m = Migration(
            (SchemaDelta.add_column("a"), SchemaDelta.drop_column("a")),
            name="noop",
        )
        assert len(m) == 2 and [d.op for d in m] == ["add_column", "drop_column"]

    def test_apply_to_schema_replays_in_order(self):
        m = Migration(
            (
                SchemaDelta.add_column("tenure"),
                SchemaDelta.rename_column("tenure", "years"),
            )
        )
        assert m.apply_to_schema(small_schema()).names[-1] == "years"

    def test_jsonable_roundtrip(self):
        m = Migration(
            (
                SchemaDelta.add_column("tenure", fill=2.0),
                SchemaDelta.drop_column("income"),
            ),
            name="v2",
        )
        assert Migration.from_jsonable(m.to_jsonable()) == m


class TestRuleMigration:
    def _rule(self):
        return FeedbackRule.deterministic(
            clause(Predicate("income", ">", 100.0), Predicate("age", "<", 40.0)),
            1,
            2,
            exceptions=(clause(Predicate("income", ">", 500.0)),),
            name="r",
        )

    def test_rename_rewrites_clause_and_exceptions(self):
        out = migrate_rule(
            self._rule(), SchemaDelta.rename_column("income", "annual_income")
        )
        assert "annual_income" in out.clause.attributes
        assert "income" not in out.clause.attributes
        assert out.exceptions[0].attributes == ("annual_income",)
        assert out.name == "r" and out.pi == self._rule().pi

    def test_unreferenced_delta_returns_same_object(self):
        rule = self._rule()
        assert migrate_rule(rule, SchemaDelta.add_column("tenure")) is rule
        assert migrate_rule(rule, SchemaDelta.drop_column("color")) is rule

    def test_drop_referenced_refused(self):
        with pytest.raises(SchemaMigrationError, match="references column"):
            migrate_rule(self._rule(), SchemaDelta.drop_column("income"))

    def test_retype_referenced_refused(self):
        delta = SchemaDelta.retype_column(
            "age", CATEGORICAL, ("lo", "hi"), bins=(40.0,)
        )
        with pytest.raises(SchemaMigrationError, match="references column"):
            migrate_rule(self._rule(), delta)

    def test_exception_only_reference_still_refused(self):
        rule = FeedbackRule.deterministic(
            clause(Predicate("age", "<", 40.0)),
            1,
            2,
            exceptions=(clause(Predicate("income", ">", 500.0)),),
        )
        with pytest.raises(SchemaMigrationError, match="references column"):
            migrate_rule(rule, SchemaDelta.drop_column("income"))

    def test_migrate_ruleset_identity_when_untouched(self):
        frs = FeedbackRuleSet((self._rule(),))
        assert migrate_ruleset(frs, SchemaDelta.add_column("t")) is frs

    def test_migrate_ruleset_rewrites_all(self):
        frs = FeedbackRuleSet((self._rule(),))
        out = migrate_ruleset(
            frs, SchemaDelta.rename_column("age", "years")
        )
        assert out is not frs
        assert all("years" in r.clause.attributes for r in out.rules)
