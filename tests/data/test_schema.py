"""Tests for ColumnSpec and Schema."""

import pytest

from repro.data.schema import CATEGORICAL, NUMERIC, ColumnSpec, Schema


class TestColumnSpec:
    def test_numeric_spec(self):
        spec = ColumnSpec("age", NUMERIC)
        assert spec.is_numeric and not spec.is_categorical

    def test_categorical_spec(self):
        spec = ColumnSpec("color", CATEGORICAL, ("red", "blue"))
        assert spec.is_categorical
        assert spec.categories == ("red", "blue")

    def test_numeric_with_categories_raises(self):
        with pytest.raises(ValueError, match="must not define categories"):
            ColumnSpec("age", NUMERIC, ("a", "b"))

    def test_categorical_needs_two_categories(self):
        with pytest.raises(ValueError, match=">= 2 categories"):
            ColumnSpec("c", CATEGORICAL, ("only",))

    def test_duplicate_categories_raise(self):
        with pytest.raises(ValueError, match="duplicate"):
            ColumnSpec("c", CATEGORICAL, ("a", "a"))

    def test_unknown_kind_raises(self):
        with pytest.raises(ValueError, match="kind"):
            ColumnSpec("x", "ordinal")

    def test_code_of(self):
        spec = ColumnSpec("c", CATEGORICAL, ("a", "b", "c"))
        assert spec.code_of("b") == 1

    def test_code_of_unknown_raises(self):
        spec = ColumnSpec("c", CATEGORICAL, ("a", "b"))
        with pytest.raises(KeyError, match="not in categories"):
            spec.code_of("z")

    def test_frozen(self):
        spec = ColumnSpec("age", NUMERIC)
        with pytest.raises(AttributeError):
            spec.name = "other"


class TestSchema:
    def _schema(self):
        return Schema(
            (
                ColumnSpec("age", NUMERIC),
                ColumnSpec("color", CATEGORICAL, ("r", "g")),
                ColumnSpec("income", NUMERIC),
            )
        )

    def test_len_and_iter(self):
        s = self._schema()
        assert len(s) == 3
        assert [c.name for c in s] == ["age", "color", "income"]

    def test_contains_and_getitem(self):
        s = self._schema()
        assert "age" in s and "missing" not in s
        assert s["color"].is_categorical

    def test_getitem_missing_raises(self):
        with pytest.raises(KeyError, match="no column named"):
            self._schema()["missing"]

    def test_position(self):
        assert self._schema().position("income") == 2

    def test_position_missing_raises(self):
        with pytest.raises(KeyError):
            self._schema().position("zzz")

    def test_names_properties(self):
        s = self._schema()
        assert s.names == ("age", "color", "income")
        assert s.numeric_names == ("age", "income")
        assert s.categorical_names == ("color",)

    def test_duplicate_names_raise(self):
        with pytest.raises(ValueError, match="duplicate"):
            Schema((ColumnSpec("a", NUMERIC), ColumnSpec("a", NUMERIC)))

    def test_equality_and_hash(self):
        assert self._schema() == self._schema()
        assert hash(self._schema()) == hash(self._schema())

    def test_inequality(self):
        other = Schema((ColumnSpec("age", NUMERIC),))
        assert self._schema() != other


class TestFluentEvolution:
    """with_column / without / renamed / retyped return new schemas."""

    def _schema(self):
        return Schema(
            (
                ColumnSpec("age", NUMERIC),
                ColumnSpec("color", CATEGORICAL, ("r", "g")),
            )
        )

    def test_with_column_appends(self):
        s = self._schema().with_column("income")
        assert s.names == ("age", "color", "income")
        assert s["income"].is_numeric

    def test_with_column_at_position(self):
        s = self._schema().with_column("income", position=0)
        assert s.names == ("income", "age", "color")

    def test_with_column_categorical(self):
        s = self._schema().with_column("size", CATEGORICAL, ("s", "m", "l"))
        assert s["size"].categories == ("s", "m", "l")

    def test_with_column_duplicate_raises(self):
        with pytest.raises(ValueError, match="already exists"):
            self._schema().with_column("age")

    def test_without(self):
        assert self._schema().without("color").names == ("age",)

    def test_without_missing_raises(self):
        with pytest.raises(KeyError):
            self._schema().without("zzz")

    def test_renamed_keeps_position_and_kind(self):
        s = self._schema().renamed("color", "hue")
        assert s.names == ("age", "hue")
        assert s["hue"].categories == ("r", "g")

    def test_renamed_onto_existing_raises(self):
        with pytest.raises(ValueError, match="already exists"):
            self._schema().renamed("color", "age")

    def test_retyped(self):
        s = self._schema().retyped("age", CATEGORICAL, ("lo", "hi"))
        assert s["age"].is_categorical
        assert s["age"].categories == ("lo", "hi")

    def test_original_schema_untouched(self):
        base = self._schema()
        base.with_column("x")
        base.without("age")
        base.renamed("age", "years")
        assert base == self._schema()  # immutable: every call returns new
