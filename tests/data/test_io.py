"""Tests for CSV import/export."""

import numpy as np
import pytest

from repro.data import (
    Dataset,
    Table,
    infer_schema,
    make_schema,
    read_csv,
    read_csv_text,
    to_csv_text,
    write_csv,
)

CSV = """age,color,label
25,red,yes
40,blue,no
31,red,yes
"""


class TestReadCsv:
    def test_basic_parse(self):
        ds = read_csv_text(CSV, label_column="label")
        assert ds.n == 3
        assert ds.label_names == ("no", "yes")
        assert ds.X.schema["age"].is_numeric
        assert ds.X.schema["color"].is_categorical

    def test_labels_encoded(self):
        ds = read_csv_text(CSV, label_column="label")
        assert ds.y.tolist() == [1, 0, 1]

    def test_explicit_label_names(self):
        ds = read_csv_text(CSV, label_column="label", label_names=("yes", "no"))
        assert ds.y.tolist() == [0, 1, 0]

    def test_explicit_schema(self):
        schema = make_schema(
            numeric=["age"], categorical={"color": ("red", "blue", "green")}
        )
        ds = read_csv_text(CSV, label_column="label", schema=schema)
        assert ds.X.schema["color"].categories == ("red", "blue", "green")

    def test_missing_label_column_raises(self):
        with pytest.raises(ValueError, match="label column"):
            read_csv_text(CSV, label_column="target")

    def test_unknown_label_value_raises(self):
        with pytest.raises(ValueError, match="not in label_names"):
            read_csv_text(CSV, label_column="label", label_names=("maybe", "no"))

    def test_empty_csv_raises(self):
        with pytest.raises(ValueError, match="empty"):
            read_csv_text("", label_column="label")

    def test_missing_numeric_value_raises(self):
        bad = "age,label\n1,yes\n,no\n"
        with pytest.raises(ValueError, match="missing values"):
            read_csv_text(bad, label_column="label")

    def test_schema_column_missing_from_csv_raises(self):
        schema = make_schema(numeric=["height"])
        with pytest.raises(ValueError, match="missing from CSV"):
            read_csv_text(CSV, label_column="label", schema=schema)

    def test_read_from_file(self, tmp_path):
        path = tmp_path / "data.csv"
        path.write_text(CSV)
        ds = read_csv(path, label_column="label")
        assert ds.n == 3


class TestInferSchema:
    def test_numeric_detection(self):
        schema = infer_schema(["a", "b"], [["1.5", "x"], ["2", "y"]])
        assert schema["a"].is_numeric
        assert schema["b"].is_categorical

    def test_exclude(self):
        schema = infer_schema(["a", "b"], [["1", "x"]], exclude=["b"])
        assert "b" not in schema

    def test_single_category_padded(self):
        schema = infer_schema(["c"], [["only"], ["only"]])
        assert len(schema["c"].categories) >= 2


class TestWriteCsv:
    def test_roundtrip(self, mixed_dataset, tmp_path):
        path = tmp_path / "out.csv"
        write_csv(mixed_dataset, path)
        back = read_csv(
            path,
            label_column="label",
            schema=mixed_dataset.X.schema,
            label_names=mixed_dataset.label_names,
        )
        assert back.n == mixed_dataset.n
        np.testing.assert_array_equal(back.y, mixed_dataset.y)
        np.testing.assert_allclose(
            back.X.column("age"), mixed_dataset.X.column("age")
        )
        np.testing.assert_array_equal(
            back.X.column("marital"), mixed_dataset.X.column("marital")
        )

    def test_label_collision_raises(self, mixed_dataset):
        import dataclasses

        with pytest.raises(ValueError, match="collides"):
            to_csv_text(mixed_dataset, label_column="age")

    def test_categoricals_decoded(self, mixed_dataset):
        text = to_csv_text(mixed_dataset)
        assert "single" in text or "married" in text
