"""Tests for the append builders backing the incremental compute core."""

import numpy as np
import pytest

from repro.data import Dataset, DatasetBuilder, GrowableArray, Table, TableBuilder, make_schema

SCHEMA = make_schema(
    numeric=["a", "b"], categorical={"c": ("x", "y", "z")}
)


def make_table(n, seed=0):
    rng = np.random.default_rng(seed)
    return Table(
        SCHEMA,
        {
            "a": rng.normal(size=n),
            "b": rng.uniform(size=n),
            "c": rng.integers(0, 3, size=n),
        },
    )


def make_dataset(n, seed=0):
    rng = np.random.default_rng(seed + 100)
    return Dataset(make_table(n, seed), rng.integers(0, 2, size=n), ("neg", "pos"))


class TestGrowableArray:
    def test_append_and_view(self):
        arr = GrowableArray(np.int64, initial=np.arange(5))
        arr.append(np.array([5, 6]))
        np.testing.assert_array_equal(arr.view(), np.arange(7))
        assert arr.n == 7

    def test_views_are_read_only(self):
        arr = GrowableArray(np.float64, initial=np.zeros(3))
        view = arr.view()
        with pytest.raises(ValueError):
            view[0] = 1.0

    def test_old_views_survive_growth(self):
        arr = GrowableArray(np.int64, initial=np.arange(4))
        old = arr.view()
        arr.append(np.arange(1000))  # forces reallocation
        np.testing.assert_array_equal(old, np.arange(4))

    def test_write_at_cannot_touch_committed(self):
        arr = GrowableArray(np.int64, initial=np.arange(4))
        with pytest.raises(ValueError, match="committed"):
            arr.write_at(2, np.array([9]))

    def test_write_at_then_set_length(self):
        arr = GrowableArray(np.int64, initial=np.arange(4))
        arr.write_at(4, np.array([7, 8]))
        assert arr.n == 4  # staged, not committed
        arr.set_length(6)
        np.testing.assert_array_equal(arr.view(), [0, 1, 2, 3, 7, 8])

    def test_truncate_rolls_back(self):
        arr = GrowableArray(np.int64, initial=np.arange(4))
        arr.append(np.array([9, 9]))
        arr.truncate(4)
        assert arr.n == 4
        np.testing.assert_array_equal(arr.view(), np.arange(4))
        with pytest.raises(ValueError):
            arr.truncate(5)

    def test_amortized_doubling(self):
        arr = GrowableArray(np.int64)
        for i in range(100):
            arr.append(np.array([i]))
        np.testing.assert_array_equal(arr.view(), np.arange(100))


class TestTableBuilder:
    def test_append_matches_concat(self):
        parts = [make_table(n, seed=n) for n in (50, 7, 23, 1)]
        builder = TableBuilder.from_table(parts[0])
        for part in parts[1:]:
            builder.append(part)
        expected = Table.concat(parts)
        got = builder.snapshot()
        assert got.n_rows == expected.n_rows
        for name in SCHEMA.names:
            np.testing.assert_array_equal(got.column(name), expected.column(name))

    def test_stage_without_commit_is_discarded(self):
        base = make_table(20)
        builder = TableBuilder.from_table(base)
        staged = builder.stage(make_table(5, seed=1))
        assert staged.n_rows == 25
        assert builder.n_rows == 20
        # Re-staging overwrites the previous staged rows.
        other = make_table(3, seed=2)
        staged2 = builder.stage(other)
        assert staged2.n_rows == 23
        for name in SCHEMA.names:
            np.testing.assert_array_equal(
                staged2.column(name)[20:], other.column(name)
            )

    def test_commit_makes_staged_rows_permanent(self):
        builder = TableBuilder.from_table(make_table(10))
        staged = builder.stage(make_table(4, seed=3))
        builder.commit(staged.n_rows)
        assert builder.n_rows == 14
        snap = builder.snapshot()
        for name in SCHEMA.names:
            np.testing.assert_array_equal(snap.column(name), staged.column(name))

    def test_committed_snapshots_survive_later_growth(self):
        builder = TableBuilder.from_table(make_table(8))
        early = builder.snapshot()
        expected = {name: early.column(name).copy() for name in SCHEMA.names}
        for i in range(30):
            builder.append(make_table(17, seed=i))
        for name in SCHEMA.names:
            np.testing.assert_array_equal(early.column(name), expected[name])

    def test_snapshot_is_read_only(self):
        builder = TableBuilder.from_table(make_table(5))
        snap = builder.snapshot()
        with pytest.raises(ValueError):
            snap.column("a")[0] = 99.0

    def test_schema_mismatch_rejected(self):
        builder = TableBuilder.from_table(make_table(5))
        other = Table(make_schema(numeric=["a"]), {"a": np.zeros(2)})
        with pytest.raises(ValueError, match="schema"):
            builder.append(other)


class TestDatasetBuilder:
    def test_append_matches_concat(self):
        base, extra = make_dataset(40), make_dataset(9, seed=1)
        builder = DatasetBuilder.from_dataset(base)
        got = builder.append(extra.X, extra.y)
        expected = Dataset.concat([base, extra])
        np.testing.assert_array_equal(got.y, expected.y)
        for name in SCHEMA.names:
            np.testing.assert_array_equal(
                got.X.column(name), expected.X.column(name)
            )
        assert got.label_names == expected.label_names

    def test_stage_then_commit_or_discard(self):
        base = make_dataset(30)
        builder = DatasetBuilder.from_dataset(base)
        extra = make_dataset(6, seed=2)
        cand = builder.stage(extra.X, extra.y)
        assert cand.n == 36 and builder.n_rows == 30
        # Discard by staging something else.
        cand2 = builder.stage(extra.X.take(np.arange(2)), extra.y[:2])
        assert cand2.n == 32
        builder.commit(cand2.n)
        assert builder.snapshot().n == 32

    def test_label_length_mismatch(self):
        builder = DatasetBuilder.from_dataset(make_dataset(10))
        with pytest.raises(ValueError, match="labels"):
            builder.stage(make_table(3, seed=5), np.zeros(2, dtype=np.int64))

    def test_row_slice_view(self):
        ds = make_dataset(20)
        part = ds.row_slice(5, 11)
        assert part.n == 6
        np.testing.assert_array_equal(part.y, ds.y[5:11])
        np.testing.assert_array_equal(part.X.column("a"), ds.X.column("a")[5:11])
