"""Tests for executors: serial/parallel equivalence and the kind registry."""

import pytest

from repro.experiments import (
    ExperimentSpec,
    ProcessExecutor,
    SerialExecutor,
    execute_spec,
    make_executor,
    register_run_kind,
)
from repro.experiments.kinds import RUN_KINDS, clear_context_cache

SMALL_GRID = ExperimentSpec(
    name="executor-test",
    datasets=("car",),
    models=("LR",),
    frs_sizes=(2, 3),
    tcfs=(0.0, 0.2),
    n_runs=1,
    seed=7,
    n=500,
    config={"tau": 2},
)


class TestExecuteSpec:
    def test_pure_in_the_spec(self):
        spec = SMALL_GRID.expand()[0]
        first = execute_spec(spec)
        clear_context_cache()
        second = execute_spec(spec)
        assert first == second

    def test_envelope_shape(self):
        envelope = execute_spec(SMALL_GRID.expand()[0])
        assert set(envelope) == {"status", "record"}
        assert envelope["status"] in ("ok", "skipped")


class TestSerialExecutor:
    def test_yields_in_order(self):
        runs = SMALL_GRID.expand()
        indices = [i for i, _ in SerialExecutor().execute(runs)]
        assert indices == list(range(len(runs)))


class TestProcessExecutor:
    def test_rejects_bad_worker_count(self):
        with pytest.raises(ValueError, match="workers"):
            ProcessExecutor(0)

    def test_make_executor_dispatch(self):
        assert isinstance(make_executor(1), SerialExecutor)
        parallel = make_executor(3)
        assert isinstance(parallel, ProcessExecutor)
        assert parallel.workers == 3

    @pytest.mark.slow
    def test_parallel_bit_identical_to_serial(self):
        """The acceptance criterion: same spec, same records, any executor."""
        runs = SMALL_GRID.expand()
        serial = dict(SerialExecutor().execute(runs))
        parallel = dict(ProcessExecutor(workers=2).execute(runs))
        assert serial == parallel


class TestRunKindRegistry:
    def test_builtin_kinds_registered(self):
        assert {"frote", "trace", "overlay", "selection", "probabilistic"} <= set(
            RUN_KINDS.names()
        )

    def test_unknown_kind_did_you_mean(self):
        with pytest.raises(ValueError, match="did you mean 'frote'"):
            RUN_KINDS.get("frotee")

    def test_custom_kind_executes(self):
        @register_run_kind("executor-test-kind")
        def fake_kind(spec):
            return {"dataset": spec.dataset, "echo": spec.params_mapping["x"]}

        try:
            spec = ExperimentSpec(
                name="custom",
                experiment="executor-test-kind",
                datasets=("car",),
                models=("LR",),
                params={"x": 5},
            ).expand()[0]
            envelope = execute_spec(spec)
            assert envelope == {
                "status": "ok",
                "record": {"dataset": "car", "echo": 5},
            }
        finally:
            RUN_KINDS.unregister("executor-test-kind")
