"""Tests for the ExperimentRunner: resume, events, and store interplay."""

import pytest

from repro.experiments import (
    ExperimentRunner,
    ExperimentSpec,
    RunStore,
)

GRID = ExperimentSpec(
    name="runner-test",
    datasets=("car",),
    models=("LR",),
    frs_sizes=(2, 3),
    tcfs=(0.0, 0.2),
    n_runs=1,
    seed=7,
    n=500,
    config={"tau": 2},
)


class TestEphemeralRuns:
    def test_records_in_grid_order(self):
        result = ExperimentRunner().run(GRID)
        runs = GRID.expand()
        assert result.runs == tuple(runs)
        assert len(result.envelopes) == len(runs)
        assert result.cached == 0
        for (spec, record) in result.pairs:
            if record is not None:
                assert record["frs_size"] == spec.frs_size
                assert record["tcf"] == spec.tcf

    def test_explicit_run_lists_accepted(self):
        runs = GRID.expand()[:2]
        result = ExperimentRunner().run(runs)
        assert len(result) == 2
        assert result.executed == 2

    def test_status_without_store(self):
        counts = ExperimentRunner().status(GRID)
        assert counts == {"total": 4, "ok": 0, "skipped": 0, "missing": 4}


class TestResume:
    def test_half_completed_grid_executes_only_missing(self, tmp_path):
        """Acceptance criterion: resume runs exactly the missing runs."""
        runs = GRID.expand()
        store = RunStore(tmp_path / "runs")

        # Interrupt after the first half of the grid.
        first = ExperimentRunner(store=store).run(runs[: len(runs) // 2])
        assert first.executed == len(runs) // 2

        executed = []
        runner = ExperimentRunner(store=store).on_event(
            lambda ev: executed.append(ev.spec)
            if ev.kind in ("run-completed", "run-skipped") else None
        )
        result = runner.run(GRID)
        assert result.executed == len(runs) - len(runs) // 2
        assert result.cached == len(runs) // 2
        assert set(executed) == set(runs[len(runs) // 2:])

        # And the resumed grid equals a from-scratch run, record for record.
        fresh = ExperimentRunner().run(GRID)
        assert result.records == fresh.records

    def test_completed_grid_is_all_cache(self, tmp_path):
        store = RunStore(tmp_path)
        ExperimentRunner(store=store).run(GRID)
        again = ExperimentRunner(store=store).run(GRID)
        assert again.executed == 0
        assert again.cached == len(GRID.expand())

    def test_status_reflects_store(self, tmp_path):
        store = RunStore(tmp_path)
        runs = GRID.expand()
        ExperimentRunner(store=store).run(runs[:1])
        counts = ExperimentRunner(store=store).status(GRID)
        assert counts["total"] == len(runs)
        assert counts["ok"] + counts["skipped"] == 1
        assert counts["missing"] == len(runs) - 1


class TestEvents:
    def test_event_stream_structure(self):
        events = []
        ExperimentRunner().on_event(events.append).run(GRID.expand()[:2])
        kinds = [ev.kind for ev in events]
        assert kinds[0] == "started"
        assert kinds[-1] == "finished"
        assert kinds.count("run-started") == 2
        assert kinds.count("run-completed") + kinds.count("run-skipped") == 2
        for ev in events:
            assert ev.total == 2
            if ev.kind.startswith("run-"):
                assert ev.spec is not None
            if ev.kind == "run-completed":
                assert ev.completed and ev.record is not None

    def test_cached_runs_emit_cache_events(self, tmp_path):
        store = RunStore(tmp_path)
        runs = GRID.expand()[:2]
        ExperimentRunner(store=store).run(runs)
        events = []
        ExperimentRunner(store=store).on_event(events.append).run(runs)
        assert [ev.kind for ev in events if ev.kind.startswith("run-")] == [
            "run-cached", "run-cached",
        ]


class TestGridJournal:
    def test_journaled_grid_records_every_outcome(self, tmp_path):
        from repro.journal import JournalReader

        result = ExperimentRunner(journal_dir=str(tmp_path)).run(GRID)

        journals = [p for p in tmp_path.iterdir() if p.is_dir()]
        assert len(journals) == 1 and journals[0].name.startswith("runner-test-")
        scan = JournalReader(journals[0]).scan()
        assert scan.ok
        assert scan.header.data["meta"]["journal_kind"] == "grid"
        assert len(scan.of_kind("grid-started")) == 1
        assert len(scan.of_kind("grid-finished")) == 1
        outcomes = scan.of_kind("run-completed") + scan.of_kind("run-skipped")
        assert len(outcomes) == len(GRID.expand())
        # Each outcome record carries the spec identity and the payload.
        for record in outcomes:
            assert record.data["spec_hash"]
            assert record.data["dataset"] == "car"
            assert "record" in record.data
        completed = {
            record.data["spec_hash"] for record in scan.of_kind("run-completed")
        }
        assert len(completed) == result.executed - result.skipped

    def test_journal_listener_is_removed_after_run(self, tmp_path):
        runner = ExperimentRunner(journal_dir=str(tmp_path))
        runner.run(GRID.expand()[:1])
        assert runner._listeners == []  # no leak into the next run
        runner.run(GRID.expand()[:1])  # reopens cleanly (new segment)
        from repro.journal import JournalReader

        (journal,) = [p for p in tmp_path.iterdir() if p.is_dir()]
        scan = JournalReader(journal).scan()
        assert scan.ok
        assert len(scan.of_kind("grid-started")) == 2


@pytest.mark.slow
class TestParallelRunner:
    def test_workers_produce_identical_store(self, tmp_path):
        serial_store = RunStore(tmp_path / "serial")
        parallel_store = RunStore(tmp_path / "parallel")
        serial = ExperimentRunner(store=serial_store).run(GRID)
        parallel = ExperimentRunner(store=parallel_store, workers=2).run(GRID)
        assert serial.records == parallel.records
        serial_files = sorted(p.name for p in serial_store.root.glob("*.json"))
        parallel_files = sorted(p.name for p in parallel_store.root.glob("*.json"))
        assert serial_files == parallel_files
        for name in serial_files:
            assert (serial_store.root / name).read_text() == (
                parallel_store.root / name
            ).read_text()
