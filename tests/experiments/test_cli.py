"""Tests for the experiments CLI."""

import json

import pytest

from repro.experiments.cli import EXPERIMENTS, build_parser, main, run


class TestParser:
    def test_experiment_required(self):
        # The positional is optional at parse time (--list-strategies needs
        # no experiment) but main() still rejects a bare invocation.
        with pytest.raises(SystemExit):
            main([])

    def test_list_strategies(self, capsys):
        assert main(["--list-strategies"]) == 0
        out = capsys.readouterr().out
        for name in ("random", "ip", "online", "relabel", "smote", "equal"):
            assert name in out

    def test_list_strategies_includes_plugins(self, capsys):
        from repro.engine import SELECTORS, register_selector

        @register_selector("cli-test-plugin")
        class Plugin:
            pass

        try:
            main(["--list-strategies"])
            assert "cli-test-plugin" in capsys.readouterr().out
        finally:
            SELECTORS.unregister("cli-test-plugin")

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fig99"])

    def test_defaults(self):
        args = build_parser().parse_args(["fig2"])
        assert args.dataset == "car"
        assert args.model == "LR"
        assert args.seed == 42

    def test_all_experiments_declared(self):
        assert set(EXPERIMENTS) == {
            "fig2", "fig3", "fig9", "table1", "table2", "table3", "table6",
            "ablation", "bench", "all",
        }


class TestRun:
    def test_table1_instant(self):
        args = build_parser().parse_args(["table1"])
        records, text = run(args)
        assert len(records) == 8
        assert "Table 1" in text

    def test_ablation_tiny(self):
        args = build_parser().parse_args(
            ["ablation", "--parameter", "k", "--runs", "1", "--tau", "2"]
        )
        records, text = run(args)
        assert records
        assert "Ablation" in text

    def test_fig3_tiny(self):
        args = build_parser().parse_args(["fig3", "--runs", "1", "--tau", "2"])
        records, text = run(args)
        assert isinstance(records, list)


class TestMain:
    def test_main_prints_and_saves(self, tmp_path, capsys):
        out = tmp_path / "t1.json"
        code = main(["table1", "--save", str(out)])
        assert code == 0
        captured = capsys.readouterr()
        assert "Table 1" in captured.out
        payload = json.loads(out.read_text())
        assert payload["name"] == "table1"
        assert len(payload["records"]) == 8
