"""Tests for the experiments CLI."""

import json

import pytest

from repro.experiments.cli import EXPERIMENTS, build_parser, main, run


class TestParser:
    def test_experiment_required(self):
        # The positional is optional at parse time (--list-strategies needs
        # no experiment) but main() still rejects a bare invocation.
        with pytest.raises(SystemExit):
            main([])

    def test_list_strategies(self, capsys):
        assert main(["--list-strategies"]) == 0
        out = capsys.readouterr().out
        for name in ("random", "ip", "online", "relabel", "smote", "equal"):
            assert name in out

    def test_list_strategies_includes_plugins(self, capsys):
        from repro.engine import SELECTORS, register_selector

        @register_selector("cli-test-plugin")
        class Plugin:
            pass

        try:
            main(["--list-strategies"])
            assert "cli-test-plugin" in capsys.readouterr().out
        finally:
            SELECTORS.unregister("cli-test-plugin")

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fig99"])

    def test_defaults(self):
        args = build_parser().parse_args(["fig2"])
        assert args.dataset == "car"
        assert args.model == "LR"
        assert args.seed == 42

    def test_all_experiments_declared(self):
        assert set(EXPERIMENTS) == {
            "fig2", "fig3", "fig9", "table1", "table2", "table3", "table6",
            "ablation", "bench", "bench-check", "bench-mem", "bench-ratchet",
            "bench-journal", "all", "run-spec", "status",
        }

    def test_list_datasets_prints_eta(self, capsys):
        assert main(["--list-datasets"]) == 0
        out = capsys.readouterr().out
        assert "adult" in out and "200" in out
        assert "register_dataset" in out

    def test_list_models(self, capsys):
        assert main(["--list-models"]) == 0
        out = capsys.readouterr().out
        for name in ("LR", "RF", "LGBM", "NB", "KNN"):
            assert name in out


class TestRun:
    def test_table1_instant(self):
        args = build_parser().parse_args(["table1"])
        records, text = run(args)
        assert len(records) == 8
        assert "Table 1" in text

    def test_ablation_tiny(self):
        args = build_parser().parse_args(
            ["ablation", "--parameter", "k", "--runs", "1", "--tau", "2"]
        )
        records, text = run(args)
        assert records
        assert "Ablation" in text

    def test_fig3_tiny(self):
        args = build_parser().parse_args(["fig3", "--runs", "1", "--tau", "2"])
        records, text = run(args)
        assert isinstance(records, list)


class TestSpecCommands:
    @pytest.fixture()
    def spec_path(self, tmp_path):
        from repro.experiments import ExperimentSpec

        spec = ExperimentSpec(
            name="cli-smoke",
            datasets=("car",),
            models=("LR",),
            frs_sizes=(2,),
            tcfs=(0.2,),
            n_runs=1,
            seed=11,
            n=400,
            config={"tau": 2},
        )
        return str(spec.save(tmp_path / "spec.json"))

    def test_run_spec_requires_path(self):
        with pytest.raises(SystemExit):
            main(["run-spec"])

    def test_status_requires_store(self, spec_path):
        with pytest.raises(SystemExit, match="--store"):
            main(["status", spec_path])

    def test_run_spec_then_status(self, spec_path, tmp_path, capsys):
        store = str(tmp_path / "runs")
        assert main(["run-spec", spec_path, "--store", store]) == 0
        out = capsys.readouterr().out
        assert "1 executed" in out

        assert main(["status", spec_path, "--store", store]) == 0
        out = capsys.readouterr().out
        assert "1/1 completed" in out and "0 missing" in out

        # Re-running serves everything from the store.
        assert main(["run-spec", spec_path, "--store", store]) == 0
        out = capsys.readouterr().out
        assert "0 executed" in out and "1 from store" in out


class TestMain:
    def test_main_prints_and_saves(self, tmp_path, capsys):
        out = tmp_path / "t1.json"
        code = main(["table1", "--save", str(out)])
        assert code == 0
        captured = capsys.readouterr()
        assert "Table 1" in captured.out
        payload = json.loads(out.read_text())
        assert payload["name"] == "table1"
        assert len(payload["records"]) == 8
