"""The trace run kind's opt-in wall-time fields."""

from repro.experiments import ExperimentSpec
from repro.experiments.kinds import RUN_KINDS


def _spec(**params):
    return ExperimentSpec(
        name="trace-timing-test",
        experiment="trace",
        datasets=("car",),
        models=("LR",),
        frs_sizes=(2,),
        tcfs=(0.2,),
        n_runs=1,
        seed=11,
        n=400,
        config={"tau": 3},
        params=params,
    ).expand()[0]


class TestTraceTimings:
    def test_default_record_has_no_timing_fields(self):
        """Without the param, records keep the executor purity invariant."""
        record = RUN_KINDS["trace"](_spec())
        assert record is not None
        assert "iteration_seconds" not in record
        assert "stage_seconds" not in record

    def test_timings_param_adds_wall_time_fields(self):
        record = RUN_KINDS["trace"](_spec(timings=True))
        assert record is not None
        assert len(record["iteration_seconds"]) == 3  # one per iteration
        assert all(s >= 0 for s in record["iteration_seconds"])
        assert set(record["stage_seconds"]) >= {
            "PreselectStage",
            "SelectionStage",
            "GenerationStage",
            "AcceptanceStage",
        }

    def test_data_fields_identical_with_and_without_timings(self):
        """Timing instrumentation must not perturb the traced run."""
        plain = RUN_KINDS["trace"](_spec())
        timed = RUN_KINDS["trace"](_spec(timings=True))
        assert plain["n_added"] == timed["n_added"]
        assert plain["j_test"] == timed["j_test"]