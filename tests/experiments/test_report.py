"""Tests for ASCII reporting."""

import numpy as np
import pytest

from repro.experiments import BoxStats, ascii_boxplot, format_mean_std, format_table


class TestBoxStats:
    def test_median_and_quartiles(self):
        s = BoxStats.from_values(list(range(1, 101)))
        assert s.median == pytest.approx(50.5)
        assert s.q1 == pytest.approx(25.75)
        assert s.q3 == pytest.approx(75.25)
        assert s.n == 100

    def test_whiskers_clip_outliers(self):
        vals = [1.0] * 20 + [100.0]
        s = BoxStats.from_values(vals)
        assert s.hi_whisker == 1.0  # the outlier is outside 1.5 IQR

    def test_empty(self):
        s = BoxStats.from_values([])
        assert s.n == 0
        assert np.isnan(s.median)

    def test_str(self):
        assert "median=" in str(BoxStats.from_values([1.0, 2.0]))


class TestFormatMeanStd:
    def test_format(self):
        assert format_mean_std([1.0, 3.0]) == "2.000 ± 1.000"

    def test_digits(self):
        assert format_mean_std([1.0], digits=1) == "1.0 ± 0.0"

    def test_empty(self):
        assert format_mean_std([]) == "n/a"


class TestFormatTable:
    def test_renders_rows(self):
        out = format_table([{"a": 1, "b": "x"}, {"a": 2, "b": "y"}])
        assert "a" in out and "x" in out and "2" in out

    def test_title(self):
        out = format_table([{"a": 1}], title="My Table")
        assert out.startswith("My Table")

    def test_empty(self):
        assert "(empty)" in format_table([], title="t")

    def test_float_formatting(self):
        out = format_table([{"v": 0.123456}])
        assert "0.123" in out

    def test_column_selection(self):
        out = format_table([{"a": 1, "b": 2}], columns=["b"])
        assert "a" not in out.splitlines()[0]


class TestAsciiBoxplot:
    def test_renders_groups(self):
        out = ascii_boxplot({"g1": [1, 2, 3], "g2": [2, 3, 4]})
        assert "g1" in out and "g2" in out
        assert "#" in out  # median marker

    def test_no_data(self):
        assert ascii_boxplot({"g": []}) == "(no data)"

    def test_title_included(self):
        out = ascii_boxplot({"g": [1.0, 2.0]}, title="Plot")
        assert "Plot" in out

    def test_fixed_range(self):
        out = ascii_boxplot({"g": [0.5]}, lo=0.0, hi=1.0)
        assert "0.000" in out and "1.000" in out

    def test_degenerate_single_value(self):
        out = ascii_boxplot({"g": [2.0, 2.0, 2.0]})
        assert "2.000" in out
