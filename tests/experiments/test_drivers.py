"""Smoke tests for the figure/table experiment drivers (tiny scales)."""

import pytest

from repro.experiments import (
    default_config,
    format_ablation,
    format_fig2,
    format_fig3,
    format_fig9,
    format_table2,
    format_table3,
    format_table6,
    run_ablation,
    run_fig2,
    run_fig3,
    run_fig9,
    run_table2,
    run_table3,
    run_table6,
)

TINY = dict(n_runs=1, tau=4, random_state=42)


class TestDefaultConfig:
    def test_paper_eta_applied(self):
        assert default_config("car").eta == 20
        assert default_config("adult").eta == 200

    def test_eta_scale(self):
        assert default_config("adult", eta_scale=0.1).eta == 20

    def test_unknown_dataset_uses_uniform_quota(self):
        cfg = default_config("unknown")
        assert cfg.eta is None

    def test_paper_eta_is_live_registry_view(self):
        from repro.datasets import DATASETS, load_car, register_dataset
        from repro.experiments import PAPER_ETA

        assert PAPER_ETA["car"] == 20
        assert dict(PAPER_ETA)["adult"] == 200
        register_dataset(
            "eta-view-test", load_car, paper_instances=1, n_numeric=0,
            n_nominal=6, n_labels=4, default_instances=100, eta=77,
        )
        try:
            assert PAPER_ETA["eta-view-test"] == 77  # live, not a snapshot
            assert default_config("eta-view-test").eta == 77
        finally:
            DATASETS.unregister("eta-view-test")
        assert "eta-view-test" not in PAPER_ETA


class TestFig2:
    def test_records_and_format(self):
        recs = run_fig2(
            "car", "LR", tcf_values=(0.0, 0.2), frs_sizes=(2,), **TINY
        )
        assert recs
        for r in recs:
            assert 0.0 <= r["j_final"] <= 1.0
            assert {"j_initial", "j_mod", "j_final"} <= set(r)
        out = format_fig2(recs)
        assert "tcf=0.0" in out and "final" in out


class TestFig3:
    def test_records_and_format(self):
        recs = run_fig3("car", "LR", frs_sizes=(2, 3), **TINY)
        assert recs
        sizes = {r["frs_size"] for r in recs}
        assert sizes <= {2, 3}
        assert "|F|=" in format_fig3(recs)


class TestFig9:
    def test_progress_traces_monotone_n(self):
        recs = run_fig9(
            "car", "LR", tcf_values=(0.2,), frs_size=2, n_runs=1, tau=5,
            random_state=42,
        )
        assert recs
        for r in recs:
            assert len(r["n_added"]) == len(r["j_test"])
            assert all(b >= a for a, b in zip(r["n_added"], r["n_added"][1:]))
        assert "tcf=" in format_fig9(recs)


class TestTable2:
    def test_records_and_format(self):
        recs = run_table2("car", "LR", **TINY)
        assert recs
        r = recs[0]
        for key in ("overlay_soft", "overlay_hard", "frote"):
            assert {"delta_j", "delta_mra", "delta_f1"} <= set(r[key])
        out = format_table2(recs)
        assert "Overlay-Soft" in out and "FROTE" in out


class TestTable3:
    def test_records_and_format(self):
        recs = run_table3("car", "LR", frs_sizes=(2,), **TINY)
        assert recs
        r = recs[0]
        assert "random_delta_j" in r and "ip_delta_j" in r
        assert "dJ random" in format_table3(recs)


class TestTable6:
    def test_records_and_format(self):
        recs = run_table6(
            "car", probabilities=(0.5, 1.0), n_runs=1, tau=4, random_state=42
        )
        assert recs
        ps = {r["p"] for r in recs}
        assert ps <= {0.5, 1.0}
        assert "delta_mra" in format_table6(recs)


class TestAblation:
    def test_k_sweep(self):
        recs = run_ablation(
            "car", "LR", parameter="k", values=(3, 5), n_runs=1, tau=3,
            random_state=42,
        )
        assert recs
        assert {r["value"] for r in recs} <= {3, 5}
        assert "Ablation" in format_ablation(recs)

    def test_unknown_parameter_raises(self):
        with pytest.raises(ValueError, match="parameter"):
            run_ablation("car", "LR", parameter="zeta", values=(1,))
