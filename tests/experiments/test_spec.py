"""Tests for declarative experiment specs: expansion, seeds, hashing, JSON."""

import json
import os
import subprocess
import sys

import pytest

from repro.experiments import ExperimentSpec, RunSpec, derive_seed

BASE = dict(
    name="grid",
    datasets=("car", "wine"),
    models=("LR",),
    frs_sizes=(2, 3),
    tcfs=(0.0, 0.2),
    n_runs=2,
    seed=42,
    n=500,
    config={"tau": 3},
)


class TestExpansion:
    def test_flat_count_is_product(self):
        spec = ExperimentSpec(**BASE)
        runs = spec.expand()
        assert len(runs) == spec.total_runs == 2 * 1 * 2 * 2 * 2

    def test_coordinates_cover_grid(self):
        runs = ExperimentSpec(**BASE).expand()
        assert {r.dataset for r in runs} == {"car", "wine"}
        assert {r.frs_size for r in runs} == {2, 3}
        assert {r.tcf for r in runs} == {0.0, 0.2}
        assert {r.run for r in runs} == {0, 1}

    def test_expansion_is_deterministic(self):
        a = ExperimentSpec(**BASE).expand()
        b = ExperimentSpec(**BASE).expand()
        assert a == b

    def test_iter_matches_expand(self):
        spec = ExperimentSpec(**BASE)
        assert list(spec) == spec.expand()

    def test_seeds_unique_per_coordinate(self):
        runs = ExperimentSpec(**BASE).expand()
        assert len({r.seed for r in runs}) == len(runs)

    def test_sweep_axes_apply_to_config_and_params(self):
        spec = ExperimentSpec(
            **{**BASE, "sweep": {"config.k": (2, 5), "params.p": (0.5, 1.0)}}
        )
        runs = spec.expand()
        assert len(runs) == 2 * 1 * 2 * 2 * 2 * 2 * 2
        assert {r.config_mapping["k"] for r in runs} == {2, 5}
        assert {r.params_mapping["p"] for r in runs} == {0.5, 1.0}

    def test_sweep_is_seed_blind(self):
        """Swept variants of a run share their seed (matched comparison)."""
        spec = ExperimentSpec(**{**BASE, "sweep": {"config.k": (2, 5)}})
        by_coord = {}
        for r in spec.expand():
            by_coord.setdefault(
                (r.dataset, r.model, r.frs_size, r.tcf, r.run), set()
            ).add(r.seed)
        assert all(len(seeds) == 1 for seeds in by_coord.values())

    def test_bad_sweep_axis_rejected(self):
        with pytest.raises(ValueError, match="sweep axis"):
            ExperimentSpec(**{**BASE, "sweep": {"tau": (1, 2)}})

    def test_empty_grid_rejected(self):
        with pytest.raises(ValueError, match="dataset"):
            ExperimentSpec(**{**BASE, "datasets": ()})
        with pytest.raises(ValueError, match="n_runs"):
            ExperimentSpec(**{**BASE, "n_runs": 0})

    def test_non_scalar_config_rejected(self):
        with pytest.raises(TypeError, match="config"):
            ExperimentSpec(**{**BASE, "config": {"tau": [1, 2]}})


class TestValidation:
    def test_unknown_dataset_did_you_mean(self):
        spec = ExperimentSpec(**{**BASE, "datasets": ("carr",)})
        with pytest.raises(ValueError, match="unknown dataset .*did you mean 'car'"):
            spec.validate()

    def test_unknown_model_rejected(self):
        spec = ExperimentSpec(**{**BASE, "models": ("LRR",)})
        with pytest.raises(ValueError, match="unknown model"):
            spec.validate()

    def test_unknown_kind_rejected(self):
        spec = ExperimentSpec(**{**BASE, "experiment": "nope"})
        with pytest.raises(ValueError, match="unknown run kind"):
            spec.validate()

    def test_registered_plugin_dataset_validates(self):
        from repro.datasets import DATASETS, load_car, register_dataset

        register_dataset(
            "spec-test-plugin", load_car, paper_instances=1, n_numeric=0,
            n_nominal=6, n_labels=4, default_instances=100,
        )
        try:
            spec = ExperimentSpec(**{**BASE, "datasets": ("spec-test-plugin",)})
            assert spec.validate() is spec
        finally:
            DATASETS.unregister("spec-test-plugin")


class TestJsonRoundTrip:
    def test_experiment_spec_round_trips(self):
        spec = ExperimentSpec(
            **{**BASE, "sweep": {"config.k": (2, 5)}, "params": {"p": 0.5}}
        )
        assert ExperimentSpec.from_json(spec.to_json()) == spec

    def test_save_load(self, tmp_path):
        spec = ExperimentSpec(**BASE)
        path = spec.save(tmp_path / "spec.json")
        assert ExperimentSpec.load(path) == spec

    def test_unknown_keys_rejected(self):
        with pytest.raises(ValueError, match="unknown ExperimentSpec keys"):
            ExperimentSpec.from_dict({**BASE, "typo_key": 1})

    def test_run_spec_round_trips(self):
        run = ExperimentSpec(**BASE).expand()[3]
        assert RunSpec.from_dict(run.to_dict()) == run
        assert RunSpec.from_dict(json.loads(json.dumps(run.to_dict()))) == run


class TestSpecHash:
    def test_hash_is_content_addressed(self):
        a, b = ExperimentSpec(**BASE).expand()[:2]
        assert a.spec_hash != b.spec_hash
        assert a.spec_hash == RunSpec.from_dict(a.to_dict()).spec_hash

    def test_hash_changes_with_config(self):
        run = ExperimentSpec(**BASE).expand()[0]
        tweaked = RunSpec.from_dict({**run.to_dict(), "config": {"tau": 4}})
        assert tweaked.spec_hash != run.spec_hash

    def test_nonfinite_config_round_trips_and_hashes(self):
        """q=math.inf is a documented FroteConfig knob; specs must carry it."""
        import math

        from repro.experiments import to_jsonable

        spec = ExperimentSpec(**{**BASE, "config": {"tau": 3, "q": math.inf}})
        assert ExperimentSpec.from_json(spec.to_json()) == spec
        run = spec.expand()[0]
        assert run.spec_hash  # hashable despite the non-finite value
        # Strict-JSON round trip via the persistence markers.
        payload = json.loads(json.dumps(to_jsonable(run.to_dict()), allow_nan=False))
        assert RunSpec.from_dict(payload) == run

    def test_hash_stable_across_processes(self):
        """The content address must not depend on interpreter hash salting."""
        run = ExperimentSpec(**BASE).expand()[0]
        code = (
            "import json, sys\n"
            "from repro.experiments import RunSpec\n"
            "print(RunSpec.from_dict(json.loads(sys.argv[1])).spec_hash)\n"
        )
        import repro

        src_dir = os.path.dirname(os.path.dirname(repro.__file__))
        pythonpath = os.pathsep.join(
            p for p in (src_dir, os.environ.get("PYTHONPATH")) if p
        )
        hashes = set()
        for seed in ("0", "1"):
            out = subprocess.run(
                [sys.executable, "-c", code, json.dumps(run.to_dict())],
                capture_output=True,
                text=True,
                check=True,
                env={**os.environ, "PYTHONPATH": pythonpath, "PYTHONHASHSEED": seed},
            )
            hashes.add(out.stdout.strip())
        assert hashes == {run.spec_hash}


class TestDeriveSeed:
    def test_deterministic_and_distinct(self):
        assert derive_seed(1, "a") == derive_seed(1, "a")
        assert derive_seed(1, "a") != derive_seed(2, "a")
        assert derive_seed(1, "a") != derive_seed(1, "b")

    def test_in_numpy_seed_range(self):
        for i in range(50):
            assert 0 <= derive_seed(i, "x") < 2**31
