"""Tests for experiment record persistence."""

import json

import numpy as np
import pytest

from repro.experiments import ExperimentArchive, load_records, save_records


class TestArchive:
    def test_roundtrip(self, tmp_path):
        records = [{"a": 1, "b": 0.5}, {"a": 2, "b": 0.7}]
        path = save_records("fig2", records, tmp_path / "fig2.json", metadata={"seed": 42})
        archive = load_records(path)
        assert archive.name == "fig2"
        assert archive.records == records
        assert archive.metadata == {"seed": 42}

    def test_numpy_values_serialized(self, tmp_path):
        records = [
            {
                "i": np.int64(3),
                "f": np.float64(0.25),
                "arr": np.array([1.0, 2.0]),
                "nested": {"x": np.int32(7)},
                "lst": [np.float32(0.5)],
            }
        ]
        path = save_records("t", records, tmp_path / "t.json")
        back = load_records(path)
        assert back.records[0]["i"] == 3
        assert back.records[0]["arr"] == [1.0, 2.0]
        assert back.records[0]["nested"]["x"] == 7

    def test_creates_parent_dirs(self, tmp_path):
        path = save_records("x", [], tmp_path / "deep" / "dir" / "x.json")
        assert path.exists()

    def test_malformed_json_raises(self):
        with pytest.raises(json.JSONDecodeError):
            ExperimentArchive.from_json("not json")

    def test_missing_keys_raise(self):
        with pytest.raises(ValueError, match="missing required key"):
            ExperimentArchive.from_json('{"name": "x"}')

    def test_to_json_is_valid(self):
        archive = ExperimentArchive("n", [{"v": 1}], {})
        json.loads(archive.to_json())


class TestNonFiniteFloats:
    def test_round_trip(self, tmp_path):
        import math

        records = [
            {
                "nan": float("nan"),
                "inf": float("inf"),
                "ninf": float("-inf"),
                "np_nan": np.float64("nan"),
                "nested": {"trace": [1.0, float("nan")]},
            }
        ]
        path = save_records("nf", records, tmp_path / "nf.json")
        # Strict JSON on disk: json.dumps would otherwise emit bare
        # NaN/Infinity tokens, which json.loads-with-strict parsers reject.
        text = path.read_text()
        assert "NaN" not in text and "Infinity" not in text
        back = load_records(path).records[0]
        assert math.isnan(back["nan"]) and math.isnan(back["np_nan"])
        assert back["inf"] == math.inf and back["ninf"] == -math.inf
        assert math.isnan(back["nested"]["trace"][1])

    def test_marker_shape_is_explicit(self):
        from repro.experiments import from_jsonable, to_jsonable

        assert to_jsonable(float("inf")) == {"__float__": "inf"}
        assert to_jsonable(float("-inf")) == {"__float__": "-inf"}
        assert to_jsonable(float("nan")) == {"__float__": "nan"}
        # A user dict that merely resembles the marker decodes to a float —
        # the marker key is reserved, by design.
        assert from_jsonable({"__float__": "inf"}) == float("inf")
        # Finite floats pass through untouched.
        assert to_jsonable(1.5) == 1.5
