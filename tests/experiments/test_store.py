"""Tests for the content-addressed run store."""

import json
import math

import numpy as np
import pytest

from repro.experiments import ExperimentSpec, RunStore
from repro.experiments.store import STATUS_OK, STATUS_SKIPPED


def _runs(n=4):
    return ExperimentSpec(
        name="store-test",
        datasets=("car",),
        models=("LR",),
        frs_sizes=(2, 3),
        tcfs=(0.0, 0.2),
        n_runs=1,
        seed=3,
        config={"tau": 2},
    ).expand()[:n]


class TestRoundTrip:
    def test_put_get(self, tmp_path):
        store = RunStore(tmp_path / "runs")
        spec = _runs(1)[0]
        record = {"j_final": 0.75, "n_added": 12}
        store.put(spec, record)
        stored = store.get(spec)
        assert stored.ok
        assert stored.status == STATUS_OK
        assert stored.record == record
        assert stored.spec == spec
        assert stored.spec_hash == spec.spec_hash

    def test_skipped_run_persisted(self, tmp_path):
        store = RunStore(tmp_path)
        spec = _runs(1)[0]
        store.put(spec, None)
        stored = store.get(spec)
        assert not stored.ok
        assert stored.status == STATUS_SKIPPED
        assert stored.record is None
        assert spec in store  # resume must not retry a failed draw

    def test_file_named_by_spec_hash(self, tmp_path):
        store = RunStore(tmp_path)
        spec = _runs(1)[0]
        path = store.put(spec, {"x": 1})
        assert path.name == f"{spec.spec_hash}.json"

    def test_nonfinite_floats_round_trip(self, tmp_path):
        store = RunStore(tmp_path)
        spec = _runs(1)[0]
        record = {
            "nan": float("nan"),
            "inf": float("inf"),
            "ninf": float("-inf"),
            "nested": [np.float64("nan"), 1.5],
        }
        path = store.put(spec, record)
        # The file itself is strict JSON (no bare NaN/Infinity tokens).
        json.loads(path.read_text())
        back = store.get(spec).record
        assert math.isnan(back["nan"])
        assert back["inf"] == math.inf
        assert back["ninf"] == -math.inf
        assert math.isnan(back["nested"][0]) and back["nested"][1] == 1.5

    def test_nonfinite_config_spec_stored(self, tmp_path):
        """A spec with q=inf (documented knob) must store and read back."""
        import math

        from repro.experiments import ExperimentSpec

        store = RunStore(tmp_path)
        spec = ExperimentSpec(
            name="inf-q", datasets=("car",), models=("LR",),
            config={"tau": 2, "q": math.inf},
        ).expand()[0]
        path = store.put(spec, {"ok": 1})
        json.loads(path.read_text())  # strict JSON on disk
        stored = store.get(spec)
        assert stored.spec == spec
        assert stored.spec.config_mapping["q"] == math.inf

    def test_deterministic_bytes(self, tmp_path):
        a, b = RunStore(tmp_path / "a"), RunStore(tmp_path / "b")
        spec = _runs(1)[0]
        record = {"z": 1, "a": float("inf"), "m": [1.0, 2.0]}
        pa = a.put(spec, record)
        pb = b.put(spec, dict(reversed(record.items())))
        assert pa.read_text() == pb.read_text()

    def test_foreign_file_rejected(self, tmp_path):
        store = RunStore(tmp_path)
        spec = _runs(1)[0]
        store.path_for(spec).write_text('{"format": "something-else"}')
        with pytest.raises(ValueError, match="run-record"):
            store.get(spec)


class TestEnvelopeMigration:
    """The envelope format is versioned and migrated on read."""

    def _write_v1(self, store, spec, record):
        """Rewrite a stored record as the v1 envelope (no version fields)."""
        path = store.put(spec, record)
        payload = json.loads(path.read_text())
        payload["format"] = "repro.run-record/v1"
        del payload["schema_version"]
        del payload["schema"]
        path.write_text(json.dumps(payload))
        return path

    def test_current_envelope_carries_version_and_schema(self, tmp_path):
        from repro.experiments.store import RECORD_FORMAT, RECORD_VERSION

        store = RunStore(tmp_path)
        spec = _runs(1)[0]
        path = store.put(spec, {"v": 1}, schema="abc123")
        payload = json.loads(path.read_text())
        assert payload["format"] == RECORD_FORMAT
        assert payload["schema_version"] == RECORD_VERSION
        assert payload["schema"] == "abc123"
        assert store.get(spec).schema == "abc123"

    def test_schema_defaults_to_frozen(self, tmp_path):
        store = RunStore(tmp_path)
        spec = _runs(1)[0]
        store.put(spec, {"v": 1})
        assert store.get(spec).schema == ""

    def test_v1_record_migrates_on_read(self, tmp_path):
        store = RunStore(tmp_path)
        spec = _runs(1)[0]
        self._write_v1(store, spec, {"j_final": 0.5})
        stored = store.get(spec)
        assert stored.ok
        assert stored.record == {"j_final": 0.5}
        assert stored.schema == ""  # v1 predates live migrations
        assert stored.spec == spec

    def test_v1_skipped_record_migrates(self, tmp_path):
        store = RunStore(tmp_path)
        spec = _runs(1)[0]
        self._write_v1(store, spec, None)
        stored = store.get(spec)
        assert not stored.ok and stored.record is None

    def test_newer_version_refused(self, tmp_path):
        store = RunStore(tmp_path)
        spec = _runs(1)[0]
        path = store.put(spec, {"v": 1})
        payload = json.loads(path.read_text())
        payload["format"] = "repro.run-record/v99"
        payload["schema_version"] = 99
        path.write_text(json.dumps(payload))
        with pytest.raises(ValueError, match="upgrade"):
            store.get(spec)

    def test_version_without_migration_path_refused(self, tmp_path):
        store = RunStore(tmp_path)
        spec = _runs(1)[0]
        path = store.put(spec, {"v": 1})
        payload = json.loads(path.read_text())
        payload["format"] = "repro.run-record/v0"
        payload["schema_version"] = 0
        path.write_text(json.dumps(payload))
        with pytest.raises(ValueError, match="no migration path"):
            store.get(spec)


class TestGridQueries:
    def test_missing_and_completed(self, tmp_path):
        store = RunStore(tmp_path)
        runs = _runs(4)
        store.put(runs[0], {"v": 1})
        store.put(runs[1], None)
        assert store.missing(runs) == runs[2:]
        assert [s.spec for s in store.completed(runs)] == runs[:2]

    def test_status_counts(self, tmp_path):
        store = RunStore(tmp_path)
        runs = _runs(4)
        store.put(runs[0], {"v": 1})
        store.put(runs[1], None)
        assert store.status_counts(runs) == {
            "total": 4, "ok": 1, "skipped": 1, "missing": 2,
        }

    def test_iteration_and_len(self, tmp_path):
        store = RunStore(tmp_path)
        runs = _runs(3)
        for run in runs:
            store.put(run, {"seed": run.seed})
        assert len(store) == 3
        assert {s.spec for s in store} == set(runs)
