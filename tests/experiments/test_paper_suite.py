"""Tests for the one-call paper suite runner."""

import pytest

from repro.experiments.paper_suite import SCALES, build_suite, run_paper_suite


class TestBuildSuite:
    def test_items_lazy(self):
        items = build_suite(scale="smoke")
        assert items  # nothing has executed yet
        ids = {i.experiment for i in items}
        assert {"fig2", "fig3", "fig9", "table2", "table3", "table6", "ablation"} <= ids

    def test_unknown_scale_raises(self):
        with pytest.raises(ValueError, match="scale"):
            build_suite(scale="huge")

    def test_scales_declared(self):
        assert set(SCALES) == {"smoke", "bench", "paper"}
        assert SCALES["paper"]["tau"] == 200  # the paper's iteration limit


class TestRunSuite:
    @pytest.mark.slow
    def test_smoke_scale_end_to_end(self):
        lines = []
        reports = run_paper_suite(scale="smoke", progress=lines.append)
        assert "table1" in reports
        assert any(k.startswith("fig2/") for k in reports)
        assert any(k.startswith("table2/") for k in reports)
        assert all(isinstance(v, str) and v for v in reports.values())
        assert lines  # progress callback invoked
