"""Tests for experiment scaffolding (contexts, runs, probabilistic variants)."""

import numpy as np
import pytest

from repro.experiments import build_context, prepare_run, probabilistic_variant
from repro.rules import FeedbackRule, Predicate, clause


@pytest.fixture(scope="module")
def ctx():
    return build_context("car", "LR", random_state=42)


class TestBuildContext:
    def test_context_fields(self, ctx):
        assert ctx.dataset_name == "car"
        assert ctx.model_name == "LR"
        assert len(ctx.rule_pool) >= 3

    def test_pool_rules_in_coverage_band(self, ctx):
        n = ctx.dataset.n
        for r in ctx.rule_pool:
            cov = r.coverage_count(ctx.dataset.X)
            assert 0.05 * n <= cov < 0.25 * n

    def test_algorithm_trains(self, ctx):
        model = ctx.algorithm(ctx.dataset)
        assert model.predict(ctx.dataset.X).shape == (ctx.dataset.n,)


class TestPrepareRun:
    def test_prepares_valid_run(self, ctx):
        rng = np.random.default_rng(0)
        run = prepare_run(ctx, frs_size=3, tcf=0.1, rng=rng)
        assert run is not None
        assert len(run.frs) == 3
        assert run.train.n + run.test.n == ctx.dataset.n

    def test_tcf_zero_no_coverage_in_train(self, ctx):
        rng = np.random.default_rng(1)
        run = prepare_run(ctx, frs_size=2, tcf=0.0, rng=rng)
        assert run is not None
        cov_train = run.frs.coverage_mask(run.train.X)
        assert cov_train.sum() == 0

    def test_oversized_frs_returns_none(self, ctx):
        rng = np.random.default_rng(2)
        run = prepare_run(ctx, frs_size=len(ctx.rule_pool) + 5, tcf=0.1, rng=rng)
        assert run is None

    def test_frs_conflict_free(self, ctx):
        rng = np.random.default_rng(3)
        run = prepare_run(ctx, frs_size=4, tcf=0.2, rng=rng)
        if run is not None:
            assert run.frs.is_conflict_free(ctx.dataset.X.schema)


class TestProbabilisticVariant:
    def _rule(self):
        return FeedbackRule.deterministic(
            clause(Predicate("x", "<", 1.0)), 0, 3
        )

    def test_p_one_recovers_deterministic(self):
        v = probabilistic_variant(self._rule(), 1.0, np.array([0.5, 0.3, 0.2]))
        np.testing.assert_allclose(v.pi_array(), [1.0, 0.0, 0.0])

    def test_remaining_mass_follows_marginal(self):
        v = probabilistic_variant(self._rule(), 0.6, np.array([0.5, 0.3, 0.2]))
        pi = v.pi_array()
        assert pi[0] == pytest.approx(0.6)
        # Other classes proportional to marginal 0.3 : 0.2.
        assert pi[1] / pi[2] == pytest.approx(1.5)

    def test_pi_sums_to_one(self):
        v = probabilistic_variant(self._rule(), 0.4, np.array([0.2, 0.5, 0.3]))
        assert v.pi_array().sum() == pytest.approx(1.0)

    def test_degenerate_marginal_uniform_fallback(self):
        v = probabilistic_variant(self._rule(), 0.5, np.array([1.0, 0.0, 0.0]))
        pi = v.pi_array()
        assert pi[1] == pytest.approx(pi[2])

    def test_invalid_p_raises(self):
        with pytest.raises(ValueError, match="p must be"):
            probabilistic_variant(self._rule(), 0.0, np.array([0.5, 0.3, 0.2]))
