"""Backward compatibility: the legacy FROTE API must run through the new
engine and produce seed-identical results to the EditSession path."""

import numpy as np
import pytest

import repro
from repro import FROTE, FeedbackRuleSet, FroteConfig, run_frote
from repro.models import LogisticRegression, make_algorithm
from repro.rules import FeedbackRule, Predicate, clause


@pytest.fixture
def algorithm():
    return make_algorithm(lambda: LogisticRegression(max_iter=200))


@pytest.fixture
def frs():
    return FeedbackRuleSet(
        (
            FeedbackRule.deterministic(
                clause(Predicate("age", "<", 35.0)), 1, 2, name="young-approve"
            ),
        )
    )


CFG = dict(tau=6, q=0.5, eta=10, random_state=11)


def assert_identical(a, b, dataset):
    """Two FroteResults from the same seed must match exactly."""
    assert a.n_added == b.n_added
    assert a.iterations == b.iterations
    assert a.n_relabelled == b.n_relabelled
    assert a.n_dropped == b.n_dropped
    assert len(a.history) == len(b.history)
    for ra, rb in zip(a.history, b.history):
        assert ra.iteration == rb.iteration
        assert ra.accepted == rb.accepted
        assert ra.n_generated == rb.n_generated
        assert ra.candidate_loss == pytest.approx(rb.candidate_loss, abs=0)
    assert a.final_evaluation.mra == pytest.approx(b.final_evaluation.mra, abs=0)
    np.testing.assert_array_equal(
        a.model.predict(dataset.X), b.model.predict(dataset.X)
    )
    np.testing.assert_array_equal(a.dataset.y, b.dataset.y)


class TestLegacyRunsEndToEnd:
    def test_frote_class_path(self, mixed_dataset, frs, algorithm):
        result = FROTE(algorithm, frs, FroteConfig(**CFG)).run(mixed_dataset)
        assert result.iterations == CFG["tau"] or result.n_added > 0
        assert result.provenance is not None
        assert result.initial_evaluation is not None

    def test_run_frote_wrapper(self, mixed_dataset, frs, algorithm):
        result = run_frote(mixed_dataset, algorithm, frs, **CFG)
        assert len(result.history) == result.iterations

    def test_empty_frs_still_rejected(self, algorithm):
        with pytest.raises(ValueError, match="empty"):
            FROTE(algorithm, FeedbackRuleSet(()))

    def test_eval_callback_still_recorded(self, mixed_dataset, frs, algorithm):
        scores = []

        def cb(model):
            scores.append(1.0)
            return 0.5

        result = FROTE(algorithm, frs, FroteConfig(**CFG)).run(
            mixed_dataset, eval_callback=cb
        )
        assert len(scores) == result.accepted_iterations
        for rec in result.history:
            if rec.accepted:
                assert rec.external_score == 0.5


class TestLegacyMatchesSession:
    def _session_result(self, dataset, frs, algorithm, **extra):
        return (
            repro.edit(dataset)
            .with_rules(frs)
            .with_algorithm(algorithm)
            .configure(**{**CFG, **extra})
            .run()
        )

    def test_identical_default_config(self, mixed_dataset, frs, algorithm):
        legacy = FROTE(algorithm, frs, FroteConfig(**CFG)).run(mixed_dataset)
        session = self._session_result(mixed_dataset, frs, algorithm)
        assert_identical(legacy, session, mixed_dataset)

    def test_identical_drop_strategy(self, mixed_dataset, frs, algorithm):
        legacy = FROTE(
            algorithm, frs, FroteConfig(mod_strategy="drop", **CFG)
        ).run(mixed_dataset)
        session = self._session_result(
            mixed_dataset, frs, algorithm, mod_strategy="drop"
        )
        assert_identical(legacy, session, mixed_dataset)

    def test_identical_no_modification(self, mixed_dataset, frs, algorithm):
        legacy = FROTE(
            algorithm, frs, FroteConfig(mod_strategy="none", **CFG)
        ).run(mixed_dataset)
        session = self._session_result(
            mixed_dataset, frs, algorithm, mod_strategy="none"
        )
        assert_identical(legacy, session, mixed_dataset)

    def test_identical_ip_selection(self, mixed_dataset, frs, algorithm):
        cfg = {**CFG, "tau": 3}
        legacy = FROTE(algorithm, frs, FroteConfig(selection="ip", **cfg)).run(
            mixed_dataset
        )
        session = self._session_result(
            mixed_dataset, frs, algorithm, selection="ip", tau=3
        )
        assert_identical(legacy, session, mixed_dataset)

    def test_legacy_rerun_deterministic(self, mixed_dataset, frs, algorithm):
        a = FROTE(algorithm, frs, FroteConfig(**CFG)).run(mixed_dataset)
        b = FROTE(algorithm, frs, FroteConfig(**CFG)).run(mixed_dataset)
        assert_identical(a, b, mixed_dataset)


class TestLegacyResultShape:
    """FroteResult moved to repro.engine.state but must remain importable
    and behaviourally unchanged from its historical home."""

    def test_reexports(self):
        from repro.core.frote import FroteResult as A
        from repro.engine.state import FroteResult as B

        assert A is B

        from repro.core import IterationRecord as C
        from repro.engine import IterationRecord as D

        assert C is D

    def test_audit_still_works(self, mixed_dataset, frs, algorithm):
        result = FROTE(algorithm, frs, FroteConfig(**CFG)).run(mixed_dataset)
        audit = result.audit(frs, mod_strategy="relabel")
        assert audit.n_synthetic == result.n_added
        assert "FROTE edit audit" in audit.summary()
