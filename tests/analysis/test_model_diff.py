"""Tests for the interpretable model comparison."""

import numpy as np
import pytest

from repro.analysis import ModelDiff, diff_models, explain_changes, format_diff
from repro.core import FROTE, FroteConfig
from repro.models import LogisticRegression, make_algorithm
from repro.rules import FeedbackRule, FeedbackRuleSet, Predicate, clause


class _FixedModel:
    """Stub model returning canned predictions."""

    def __init__(self, preds):
        self._preds = np.asarray(preds, dtype=np.int64)

    def predict(self, table):
        return self._preds[: table.n_rows].copy()


class TestDiffModels:
    def test_identical_models_no_changes(self, mixed_dataset):
        m = _FixedModel(np.zeros(mixed_dataset.n))
        diff = diff_models(m, m, mixed_dataset)
        assert diff.n_changed == 0
        assert diff.changed_fraction == 0.0

    def test_transitions_counted(self, mixed_dataset):
        a = _FixedModel(np.zeros(mixed_dataset.n))
        b_pred = np.zeros(mixed_dataset.n)
        b_pred[:10] = 1
        b = _FixedModel(b_pred)
        diff = diff_models(a, b, mixed_dataset)
        assert diff.n_changed == 10
        assert diff.transitions[0, 1] == 10
        assert diff.transitions[1, 0] == 0

    def test_rule_attribution(self, mixed_dataset):
        rule = FeedbackRule.deterministic(clause(Predicate("age", "<", 40.0)), 1, 2)
        frs = FeedbackRuleSet((rule,))
        cov = rule.coverage_mask(mixed_dataset.X)
        a = _FixedModel(np.zeros(mixed_dataset.n))
        b_pred = np.zeros(mixed_dataset.n)
        b_pred[cov] = 1  # the edit flips exactly the rule's region
        diff = diff_models(a, _FixedModel(b_pred), mixed_dataset, frs)
        covered, changed, agreeing = diff.rule_attribution[0]
        assert covered == int(cov.sum())
        assert changed == int(cov.sum())
        assert agreeing == int(cov.sum())
        assert diff.outside_changed == 0

    def test_collateral_changes_flagged(self, mixed_dataset):
        rule = FeedbackRule.deterministic(clause(Predicate("age", "<", 40.0)), 1, 2)
        frs = FeedbackRuleSet((rule,))
        a = _FixedModel(np.zeros(mixed_dataset.n))
        b_pred = np.ones(mixed_dataset.n)  # everything flipped
        diff = diff_models(a, _FixedModel(b_pred), mixed_dataset, frs)
        assert diff.outside_changed > 0

    def test_length_mismatch_raises(self, mixed_dataset):
        a = _FixedModel(np.zeros(3))
        with pytest.raises((ValueError, IndexError)):
            diff_models(a, a, mixed_dataset)


class TestExplainChanges:
    def test_recovers_changed_region(self, mixed_dataset):
        a = _FixedModel(np.zeros(mixed_dataset.n))
        b_pred = np.zeros(mixed_dataset.n)
        region = mixed_dataset.X.column("age") < 35.0
        b_pred[region] = 1
        diff = diff_models(a, _FixedModel(b_pred), mixed_dataset)
        rules = explain_changes(mixed_dataset, diff)
        assert rules
        # The learned description should be precise for the changed region.
        mask = rules[0].coverage_mask(mixed_dataset.X)
        precision = diff.changed_mask[mask].mean()
        assert precision > 0.8

    def test_no_changes_no_rules(self, mixed_dataset):
        a = _FixedModel(np.zeros(mixed_dataset.n))
        diff = diff_models(a, a, mixed_dataset)
        assert explain_changes(mixed_dataset, diff) == []


class TestFormatDiff:
    def test_report_contents(self, mixed_dataset):
        rule = FeedbackRule.deterministic(
            clause(Predicate("age", "<", 40.0)), 1, 2, name="policy"
        )
        frs = FeedbackRuleSet((rule,))
        a = _FixedModel(np.zeros(mixed_dataset.n))
        b_pred = np.zeros(mixed_dataset.n)
        b_pred[rule.coverage_mask(mixed_dataset.X)] = 1
        diff = diff_models(a, _FixedModel(b_pred), mixed_dataset, frs)
        rules = explain_changes(mixed_dataset, diff)
        out = format_diff(
            diff, mixed_dataset.label_names, frs=frs, change_rules=rules
        )
        assert "Model comparison" in out
        assert "deny -> approve" in out
        assert "policy" in out


class TestEndToEnd:
    def test_frote_edit_diff(self, mixed_dataset):
        """Diff the actual before/after models of a FROTE edit."""
        frs = FeedbackRuleSet(
            (
                FeedbackRule.deterministic(
                    clause(
                        Predicate("age", "<", 35.0),
                        Predicate("income", ">", 120.0),
                    ),
                    0,
                    2,
                    name="edit",
                ),
            )
        )
        alg = make_algorithm(lambda: LogisticRegression())
        before = alg(mixed_dataset)
        result = FROTE(
            alg, frs, FroteConfig(tau=8, q=0.5, eta=15, random_state=0)
        ).run(mixed_dataset)
        diff = diff_models(before, result.model, mixed_dataset, frs)
        covered, changed, agreeing = diff.rule_attribution[0]
        # The edit must have moved predictions inside the rule's region
        # toward the rule's class.
        assert agreeing > 0
        assert agreeing <= changed <= covered + diff.outside_changed + diff.n
