"""Parity pins: vectorized hot paths reproduce the seed row-loop outputs.

Every vectorized implementation was designed to consume the RNG stream in
exactly the order its seed row-loop predecessor did, so under a fixed seed
the outputs must match **bit-for-bit** — not approximately.  The seed
implementations live in :mod:`repro.perf.seed_reference`.
"""

import numpy as np
import pytest

from repro.data import Table, make_schema
from repro.neighbors.brute import _topk_from_dists
from repro.perf import seed_reference as seed_ref
from repro.rules import Predicate
from repro.sampling import (
    SMOTE,
    RuleConstrainedGenerator,
    classify_borderline,
    majority_categorical_batch,
    pick_categorical_batch,
    sample_in_window_batch,
)
from repro.sampling.borderline import DEFAULT_WEIGHTS
from repro.sampling.rule_generation import NumericWindow
from repro.rules import FeedbackRule, clause


class TestTopKParity:
    def _dist_matrix(self, seed, n_q=60, n_x=80, with_self=True):
        rng = np.random.default_rng(seed)
        X = rng.uniform(0, 1, size=(n_x, 3))
        Q = X[:n_q] if with_self else rng.uniform(0, 1, size=(n_q, 3))
        # Duplicate some rows to exercise zero-distance ties.
        X[1] = X[0]
        diff = Q[:, None, :] - X[None, :, :]
        return np.sqrt((diff**2).sum(-1))

    @pytest.mark.parametrize("exclude_self", [False, True])
    @pytest.mark.parametrize("k", [1, 5, 79, 200])
    def test_bit_for_bit(self, k, exclude_self):
        D = self._dist_matrix(0)
        sd, si = seed_ref.seed_topk_from_dists(D, k, exclude_self=exclude_self)
        cd, ci = _topk_from_dists(D, k, exclude_self=exclude_self)
        np.testing.assert_array_equal(sd, cd)
        np.testing.assert_array_equal(si, ci)

    def test_queries_not_in_fitted_set(self):
        D = self._dist_matrix(1, with_self=False)
        sd, si = seed_ref.seed_topk_from_dists(D, 5, exclude_self=True)
        cd, ci = _topk_from_dists(D, 5, exclude_self=True)
        np.testing.assert_array_equal(sd, cd)
        np.testing.assert_array_equal(si, ci)


class TestMajorityParity:
    @pytest.mark.parametrize("n_cats,k", [(2, 2), (3, 5), (6, 4)])
    def test_bit_for_bit_including_ties(self, n_cats, k):
        rng = np.random.default_rng(3)
        codes = rng.integers(0, n_cats, size=(500, k))
        a = seed_ref.seed_majority_batch(codes, np.random.default_rng(7))
        b = majority_categorical_batch(codes, n_cats, np.random.default_rng(7))
        np.testing.assert_array_equal(a, b)


WINDOWS = [
    NumericWindow(lo=0.3, hi=0.7),
    NumericWindow(lo=0.3, hi=0.7, lo_strict=True, hi_strict=True),
    NumericWindow(eq=0.5),
    NumericWindow(lo=5.0, hi=9.0),      # entirely outside the sampled data
    NumericWindow(lo=5.0),              # half-open, outside observed range
    NumericWindow(hi=-5.0),             # half-open below
    NumericWindow(lo=0.5, hi=0.5),      # degenerate point window
]


class TestWindowParity:
    @pytest.mark.parametrize("window", WINDOWS)
    def test_bit_for_bit(self, window):
        rng = np.random.default_rng(11)
        base = rng.uniform(0, 1, size=400)
        nbr = rng.uniform(0, 1, size=400)
        a = seed_ref.seed_sample_in_window_batch(
            window, base, nbr, (0.0, 1.0), np.random.default_rng(5)
        )
        b = sample_in_window_batch(
            window, base, nbr, (0.0, 1.0), np.random.default_rng(5)
        )
        np.testing.assert_array_equal(a, b)


class TestPickCategoricalParity:
    CATS = ("a", "b", "c")

    @pytest.mark.parametrize(
        "conds",
        [
            (),
            (Predicate("c", "!=", "a"),),
            (Predicate("c", "==", "b"),),
            (Predicate("c", "!=", "a"), Predicate("c", "!=", "b")),
        ],
    )
    def test_bit_for_bit(self, conds):
        rng = np.random.default_rng(13)
        codes = rng.integers(0, 2, size=(400, 5))  # never observes 'c':
        a = seed_ref.seed_pick_categorical_batch(
            codes, conds, self.CATS, np.random.default_rng(9)
        )
        b = pick_categorical_batch(codes, conds, self.CATS, np.random.default_rng(9))
        np.testing.assert_array_equal(a, b)


class TestSmoteGenerateParity:
    def test_bit_for_bit(self, mixed_table):
        a = seed_ref.seed_smote_generate(
            mixed_table, 120, k=5, rng=np.random.default_rng(21)
        )
        b = SMOTE(5).generate(mixed_table, 120, rng=np.random.default_rng(21))
        for name in mixed_table.schema.names:
            np.testing.assert_array_equal(a.column(name), b.column(name))


class TestBorderlineWeightsParity:
    def test_weight_vector_matches_seed_mapping(self, mixed_table):
        labels = (mixed_table.column("age") < 45).astype(np.int64)
        analysis = classify_borderline(mixed_table, labels, k=7)
        np.testing.assert_array_equal(
            analysis.weights,
            seed_ref.seed_borderline_weights(analysis.categories, DEFAULT_WEIGHTS),
        )


class TestGeneratorIndexCache:
    def _gen_and_pool(self, mixed_table):
        rule = FeedbackRule.deterministic(
            clause(
                Predicate("age", "<", 50.0), Predicate("marital", "==", "single")
            ),
            1,
            2,
        )
        gen = RuleConstrainedGenerator(rule, mixed_table, k=5)
        pool = mixed_table.loc_mask(rule.coverage_mask(mixed_table))
        return gen, pool

    def test_cached_index_reproduces_uncached_output(self, mixed_table):
        gen_a, pool = self._gen_and_pool(mixed_table)
        gen_b, _ = self._gen_and_pool(mixed_table)
        positions = np.arange(min(15, pool.n_rows))
        # Uncached: every call refits.  Cached: second call reuses the fit.
        _ = gen_a.generate(pool, positions, np.random.default_rng(1), cache_token=7)
        a = gen_a.generate(pool, positions, np.random.default_rng(2), cache_token=7)
        assert gen_a._index_cache is not None
        b = gen_b.generate(pool, positions, np.random.default_rng(2))
        for name in mixed_table.schema.names:
            np.testing.assert_array_equal(a.table.column(name), b.table.column(name))
        np.testing.assert_array_equal(a.labels, b.labels)

    def test_token_change_invalidates(self, mixed_table):
        gen, pool = self._gen_and_pool(mixed_table)
        positions = np.arange(min(10, pool.n_rows))
        gen.generate(pool, positions, np.random.default_rng(0), cache_token=1)
        first = gen._index_cache
        smaller = pool.take(np.arange(pool.n_rows // 2))
        out = gen.generate(smaller, positions[:3], np.random.default_rng(0), cache_token=2)
        assert gen._index_cache is not first
        assert out.n == 3
