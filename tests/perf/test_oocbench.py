"""Tests for the out-of-core workload worker and the bench-mem guard."""

import json

import pytest

from repro.perf.harness import SCHEMA_VERSION
from repro.perf.oocbench import run_streaming_workload
from repro.perf.regression import memory_report


class TestStreamingWorkload:
    @pytest.fixture(scope="class")
    def record(self):
        # Tiny configuration: a few KB of budget, sub-second runtime.
        return run_streaming_workload(
            budget_mb=0.05, batch_rows=256, shard_rows=64, seed=0
        )

    def test_record_shape(self, record):
        for key in (
            "rows", "steps", "dense_mb", "budget_mb", "baseline_rss_mb",
            "peak_rss_mb", "workload_rss_mb", "rss_limit_mb", "within_budget",
            "n_shards", "n_spilled_shards", "spilled_mb", "seconds",
        ):
            assert key in record, key
        assert record["scenario"] == "out_of_core"
        json.dumps(record)  # JSON-serializable as printed by the worker

    def test_dataset_grew_past_budget_with_spills(self, record):
        assert record["dense_mb"] > record["budget_mb"]
        assert record["n_spilled_shards"] > 0
        assert record["spilled_mb"] > 0
        assert record["rows"] == (record["steps"] + 1) * 256

    def test_rss_limit_formula(self, record):
        assert record["rss_limit_mb"] == pytest.approx(
            record["budget_mb"] * 1.5 + record["tolerance_mb"], abs=0.02
        )
        assert record["within_budget"] == (
            record["workload_rss_mb"] <= record["rss_limit_mb"]
        )


def end2end_payload(*extras):
    return {
        "schema_version": SCHEMA_VERSION,
        "kind": "end2end",
        "quick": True,
        "seed": 42,
        "python": "3.11",
        "machine": "x86_64",
        "results": [
            {
                "name": "out_of_core",
                "dataset": "synthetic",
                "n_rows": 1000,
                "tau": 5,
                "seconds": 1.0,
                "iterations": 5,
                "accepted_iterations": 5,
                "n_added": 900,
                "seconds_per_iteration": 0.2,
                "extra": extra,
            }
            for extra in extras
        ],
        "summary": {},
    }


def ok_extra(**overrides):
    extra = {
        "dense_mb": 96.0,
        "budget_mb": 24.0,
        "tolerance_mb": 32.0,
        "baseline_rss_mb": 80.0,
        "peak_rss_mb": 140.0,
        "workload_rss_mb": 60.0,
        "rss_limit_mb": 68.0,
        "within_budget": True,
        "spilled_mb": 72.0,
        "resident_mb": 24.0,
    }
    extra.update(overrides)
    return extra


class TestMemoryReport:
    def test_within_budget_ok(self):
        report = memory_report(end2end_payload(ok_extra()))
        assert report.ok
        assert "OK: peak RSS within the memory budget" in report.format()

    def test_over_budget_fails_with_numbers(self):
        report = memory_report(
            end2end_payload(
                ok_extra(within_budget=False, workload_rss_mb=160.0)
            )
        )
        assert not report.ok
        assert any("160.0 MiB exceeds the 68.0 MiB bound" in f for f in report.failures)

    def test_missing_scenario_fails(self):
        report = memory_report(end2end_payload())
        assert not report.ok
        assert any("no out_of_core scenario" in f for f in report.failures)


class TestBenchMemCli:
    def _write(self, tmp_path, payload):
        (tmp_path / "BENCH_end2end.json").write_text(json.dumps(payload))

    def test_pass_exits_zero(self, tmp_path, capsys):
        from repro.experiments.cli import main

        self._write(tmp_path, end2end_payload(ok_extra()))
        assert main(["bench-mem", "--out-dir", str(tmp_path)]) == 0
        assert "OK" in capsys.readouterr().out

    def test_over_budget_exits_nonzero(self, tmp_path):
        from repro.experiments.cli import main

        self._write(tmp_path, end2end_payload(ok_extra(within_budget=False)))
        with pytest.raises(SystemExit) as exc:
            main(["bench-mem", "--out-dir", str(tmp_path)])
        assert exc.value.code == 1

    def test_missing_payload_errors(self, tmp_path):
        from repro.experiments.cli import main

        with pytest.raises(SystemExit, match="not found"):
            main(["bench-mem", "--out-dir", str(tmp_path / "nowhere")])
