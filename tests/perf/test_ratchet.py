"""Tests for the baseline-ratcheting proposal (bench-ratchet)."""

import json

import pytest

from repro.perf.harness import SCHEMA_VERSION
from repro.perf.ratchet import propose_ratchet, write_proposal


def payload(*records, quick=True):
    return {
        "schema_version": SCHEMA_VERSION,
        "kind": "end2end",
        "quick": quick,
        "seed": 42,
        "python": "3.11",
        "machine": "x86_64",
        "results": [
            {
                "name": name,
                "dataset": dataset,
                "n_rows": 100,
                "tau": 5,
                "seconds": seconds,
                "iterations": 5,
                "accepted_iterations": 2,
                "n_added": 10,
                "seconds_per_iteration": seconds / 5,
                "extra": {},
            }
            for name, dataset, seconds in records
        ],
        "summary": {},
    }


BASE = payload(
    ("session_edit", "synthetic", 1.0),
    ("paper_pipeline_edit", "car", 2.0),
    ("incremental_vs_rebuild", "synthetic", 0.5),
)


class TestProposeRatchet:
    def test_consistent_speedup_ratchets(self):
        current = payload(
            ("session_edit", "synthetic", 0.7),
            ("paper_pipeline_edit", "car", 1.5),
            ("incremental_vs_rebuild", "synthetic", 0.4),
        )
        report = propose_ratchet(current, BASE, improvement=0.15)
        assert report.should_ratchet
        assert report.geomean_ratio < 0.85
        assert "RATCHET" in report.format()
        assert "Ratchet proposed" in report.markdown()

    def test_identical_payloads_do_not_ratchet(self):
        report = propose_ratchet(BASE, BASE, improvement=0.15)
        assert not report.should_ratchet
        assert any("geomean" in b for b in report.blockers)

    def test_small_speedup_does_not_ratchet(self):
        current = payload(
            ("session_edit", "synthetic", 0.95),
            ("paper_pipeline_edit", "car", 1.9),
            ("incremental_vs_rebuild", "synthetic", 0.47),
        )
        assert not propose_ratchet(current, BASE, improvement=0.15).should_ratchet

    def test_one_slower_scenario_blocks_even_with_big_geomean_win(self):
        """'Consistently faster' means no scenario regressed — a large win
        elsewhere must not freeze a regression into the new baseline."""
        current = payload(
            ("session_edit", "synthetic", 0.1),
            ("paper_pipeline_edit", "car", 0.2),
            ("incremental_vs_rebuild", "synthetic", 0.6),  # 1.2x slower
        )
        report = propose_ratchet(current, BASE, improvement=0.15)
        assert report.geomean_ratio < 0.85
        assert not report.should_ratchet
        assert any("slower than the baseline" in b for b in report.blockers)
        assert "incremental_vs_rebuild/synthetic" in "".join(report.blockers)

    def test_scale_mismatch_blocks(self):
        current = dict(
            payload(
                ("session_edit", "synthetic", 0.1),
                ("paper_pipeline_edit", "car", 0.2),
                ("incremental_vs_rebuild", "synthetic", 0.05),
            ),
            quick=False,
        )
        report = propose_ratchet(current, BASE, improvement=0.15)
        assert not report.should_ratchet
        assert any("scale mismatch" in b for b in report.blockers)

    def test_missing_scenario_blocks(self):
        current = payload(("session_edit", "synthetic", 0.1))
        report = propose_ratchet(current, BASE, improvement=0.15)
        assert not report.should_ratchet
        assert any("missing" in b for b in report.blockers)

    def test_invalid_improvement_raises(self):
        with pytest.raises(ValueError, match="improvement"):
            propose_ratchet(BASE, BASE, improvement=0.0)
        with pytest.raises(ValueError, match="improvement"):
            propose_ratchet(BASE, BASE, improvement=1.0)

    def test_write_proposal_round_trips(self, tmp_path):
        path = write_proposal(BASE, tmp_path / "ratchet")
        assert path.name == "BENCH_end2end.baseline.proposed.json"
        assert json.loads(path.read_text()) == BASE


class TestBenchRatchetCli:
    def _write(self, path, data):
        path.write_text(json.dumps(data))
        return path

    def test_qualifying_run_writes_proposal_and_summary(
        self, tmp_path, capsys, monkeypatch
    ):
        from repro.experiments.cli import main

        current = payload(
            ("session_edit", "synthetic", 0.7),
            ("paper_pipeline_edit", "car", 1.5),
            ("incremental_vs_rebuild", "synthetic", 0.4),
        )
        self._write(tmp_path / "BENCH_end2end.json", current)
        baseline = self._write(tmp_path / "baseline.json", BASE)
        summary = tmp_path / "summary.md"
        monkeypatch.setenv("GITHUB_STEP_SUMMARY", str(summary))
        code = main(
            [
                "bench-ratchet",
                "--out-dir", str(tmp_path),
                "--baseline", str(baseline),
                "--propose-dir", str(tmp_path / "ratchet"),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "RATCHET" in out
        proposed = tmp_path / "ratchet" / "BENCH_end2end.baseline.proposed.json"
        assert json.loads(proposed.read_text()) == current
        assert "Ratchet proposed" in summary.read_text()

    def test_non_qualifying_run_exits_zero_without_proposal(
        self, tmp_path, capsys, monkeypatch
    ):
        from repro.experiments.cli import main

        monkeypatch.delenv("GITHUB_STEP_SUMMARY", raising=False)
        self._write(tmp_path / "BENCH_end2end.json", BASE)
        baseline = self._write(tmp_path / "baseline.json", BASE)
        code = main(
            [
                "bench-ratchet",
                "--out-dir", str(tmp_path),
                "--baseline", str(baseline),
                "--propose-dir", str(tmp_path / "ratchet"),
            ]
        )
        assert code == 0
        assert "no ratchet" in capsys.readouterr().out
        assert not (tmp_path / "ratchet").exists()

    def test_missing_baseline_errors(self, tmp_path):
        from repro.experiments.cli import main

        self._write(tmp_path / "BENCH_end2end.json", BASE)
        with pytest.raises(SystemExit, match="baseline not found"):
            main(
                [
                    "bench-ratchet",
                    "--out-dir", str(tmp_path),
                    "--baseline", str(tmp_path / "nope.json"),
                ]
            )
