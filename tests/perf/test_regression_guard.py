"""Tests for the BENCH_end2end baseline regression guard."""

import json

import pytest

from repro.perf.harness import SCHEMA_VERSION
from repro.perf.regression import (
    THRESHOLD_ENV_VAR,
    compare_end2end,
    load_payload,
    regression_threshold,
)


def payload(*records):
    return {
        "schema_version": SCHEMA_VERSION,
        "kind": "end2end",
        "quick": True,
        "seed": 42,
        "python": "3.11",
        "machine": "x86_64",
        "results": [
            {
                "name": name,
                "dataset": dataset,
                "n_rows": 100,
                "tau": 5,
                "seconds": seconds,
                "iterations": 5,
                "accepted_iterations": 2,
                "n_added": 10,
                "seconds_per_iteration": seconds / 5,
                "extra": {},
            }
            for name, dataset, seconds in records
        ],
        "summary": {},
    }


BASE = payload(
    ("session_edit", "synthetic", 1.0),
    ("paper_pipeline_edit", "car", 2.0),
    ("incremental_vs_rebuild", "synthetic", 0.5),
)


class TestCompareEnd2End:
    def test_identical_payloads_pass(self):
        report = compare_end2end(BASE, BASE, threshold=0.30)
        assert report.ok
        assert report.geomean_ratio == pytest.approx(1.0)
        assert "OK" in report.format()

    def test_within_threshold_passes(self):
        current = payload(
            ("session_edit", "synthetic", 1.2),
            ("paper_pipeline_edit", "car", 2.2),
            ("incremental_vs_rebuild", "synthetic", 0.55),
        )
        assert compare_end2end(current, BASE, threshold=0.30).ok

    def test_geomean_regression_fails(self):
        current = payload(
            ("session_edit", "synthetic", 1.5),
            ("paper_pipeline_edit", "car", 3.0),
            ("incremental_vs_rebuild", "synthetic", 0.75),
        )
        report = compare_end2end(current, BASE, threshold=0.30)
        assert not report.ok
        assert any("geomean" in f for f in report.failures)
        assert "FAIL" in report.format()

    def test_single_outlier_absorbed_by_geomean(self):
        """One noisy scenario does not fail the guard on its own."""
        current = payload(
            ("session_edit", "synthetic", 1.6),  # 1.6x on one scenario
            ("paper_pipeline_edit", "car", 2.0),
            ("incremental_vs_rebuild", "synthetic", 0.5),
        )
        assert compare_end2end(current, BASE, threshold=0.30).ok

    def test_missing_scenario_fails(self):
        current = payload(("session_edit", "synthetic", 1.0))
        report = compare_end2end(current, BASE, threshold=0.30)
        assert not report.ok
        assert any("missing" in f for f in report.failures)

    def test_new_scenario_is_noted_not_failed(self):
        current = payload(
            ("session_edit", "synthetic", 1.0),
            ("paper_pipeline_edit", "car", 2.0),
            ("incremental_vs_rebuild", "synthetic", 0.5),
            ("brand_new", "synthetic", 9.9),
        )
        report = compare_end2end(current, BASE, threshold=0.30)
        assert report.ok
        assert report.added == ("brand_new/synthetic",)

    def test_wrong_kind_fails(self):
        bad = dict(BASE, kind="hotpaths")
        report = compare_end2end(bad, BASE, threshold=0.30)
        assert not report.ok

    def test_quick_vs_full_scale_mismatch_fails_clearly(self):
        """A full-scale payload against the quick baseline must not
        produce a bogus regression verdict — it fails as incomparable."""
        full = dict(BASE, quick=False)
        report = compare_end2end(full, BASE, threshold=0.30)
        assert not report.ok
        assert any("scale mismatch" in f for f in report.failures)

    def test_scale_mismatch_names_both_scale_labels_and_scenarios(self):
        """The message must say which side is which scale — "quick" and
        "full" by name, not raw booleans — and list the affected
        scenarios, so the fix (re-run or refresh) is obvious."""
        full = dict(BASE, quick=False)
        report = compare_end2end(full, BASE, threshold=0.30)
        [failure] = [f for f in report.failures if "scale mismatch" in f]
        assert "current payload is full-scale" in failure
        assert "baseline is quick-scale" in failure
        assert "session_edit/synthetic" in failure
        assert "True" not in failure and "False" not in failure

    def test_retuned_workload_fails_as_mismatch_not_regression(self):
        current = dict(BASE, results=[dict(r) for r in BASE["results"]])
        current["results"][0] = dict(
            current["results"][0], n_rows=99999, seconds=50.0,
            seconds_per_iteration=10.0,
        )
        report = compare_end2end(current, BASE, threshold=0.30)
        assert not report.ok
        assert any("workload mismatch" in f for f in report.failures)
        # The mismatched scenario is excluded from the ratio set.
        assert len(report.entries) == 2
        assert not any("geomean" in f for f in report.failures)

    def test_workload_mismatch_names_scenario_and_values(self):
        current = dict(BASE, results=[dict(r) for r in BASE["results"]])
        current["results"][0] = dict(current["results"][0], n_rows=99999)
        report = compare_end2end(current, BASE, threshold=0.30)
        [failure] = [f for f in report.failures if "workload mismatch" in f]
        assert "scenario session_edit/synthetic" in failure
        assert "n_rows: baseline 100 vs current 99999" in failure
        # The matching field is not blamed.
        assert "tau" not in failure

    def test_every_workload_mismatch_reported_not_just_the_first(self):
        """Two retuned scenarios -> two named failures in one run, so a
        bench retune surfaces the full refresh list at once."""
        current = dict(BASE, results=[dict(r) for r in BASE["results"]])
        current["results"][0] = dict(current["results"][0], n_rows=99999)
        current["results"][2] = dict(current["results"][2], tau=50)
        report = compare_end2end(current, BASE, threshold=0.30)
        mismatches = [f for f in report.failures if "workload mismatch" in f]
        assert len(mismatches) == 2
        blob = "\n".join(mismatches)
        assert "scenario session_edit/synthetic" in blob
        assert "scenario incremental_vs_rebuild/synthetic" in blob
        assert "tau: baseline 5 vs current 50" in blob


class TestThreshold:
    def test_default(self, monkeypatch):
        monkeypatch.delenv(THRESHOLD_ENV_VAR, raising=False)
        assert regression_threshold() == pytest.approx(0.30)

    def test_env_override(self, monkeypatch):
        monkeypatch.setenv(THRESHOLD_ENV_VAR, "0.75")
        assert regression_threshold() == pytest.approx(0.75)
        current = payload(
            ("session_edit", "synthetic", 1.5),
            ("paper_pipeline_edit", "car", 3.0),
            ("incremental_vs_rebuild", "synthetic", 0.75),
        )
        assert compare_end2end(current, BASE).ok

    def test_invalid_env_raises(self, monkeypatch):
        monkeypatch.setenv(THRESHOLD_ENV_VAR, "fast")
        with pytest.raises(ValueError, match="not a float"):
            regression_threshold()


class TestBenchCheckCli:
    def _write(self, path, data):
        path.write_text(json.dumps(data))
        return path

    def test_passing_comparison_exits_zero(self, tmp_path, capsys):
        from repro.experiments.cli import main

        self._write(tmp_path / "BENCH_end2end.json", BASE)
        baseline = self._write(tmp_path / "baseline.json", BASE)
        code = main(
            [
                "bench-check",
                "--out-dir", str(tmp_path),
                "--baseline", str(baseline),
                "--threshold", "0.3",
            ]
        )
        assert code == 0
        assert "OK: no perf regression" in capsys.readouterr().out

    def test_regression_exits_nonzero(self, tmp_path):
        from repro.experiments.cli import main

        current = payload(
            ("session_edit", "synthetic", 5.0),
            ("paper_pipeline_edit", "car", 9.0),
            ("incremental_vs_rebuild", "synthetic", 2.0),
        )
        self._write(tmp_path / "BENCH_end2end.json", current)
        baseline = self._write(tmp_path / "baseline.json", BASE)
        with pytest.raises(SystemExit) as exc:
            main(
                [
                    "bench-check",
                    "--out-dir", str(tmp_path),
                    "--baseline", str(baseline),
                    "--threshold", "0.3",
                ]
            )
        assert exc.value.code == 1

    def test_missing_current_file_errors(self, tmp_path):
        from repro.experiments.cli import main

        baseline = self._write(tmp_path / "baseline.json", BASE)
        with pytest.raises(SystemExit, match="not found"):
            main(
                [
                    "bench-check",
                    "--out-dir", str(tmp_path / "nowhere"),
                    "--baseline", str(baseline),
                ]
            )


class TestLoadPayload:
    def test_round_trip(self, tmp_path):
        path = tmp_path / "BENCH_end2end.json"
        path.write_text(json.dumps(BASE))
        assert load_payload(path)["kind"] == "end2end"

    def test_schema_violation_raises(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"kind": "end2end"}))
        with pytest.raises(ValueError):
            load_payload(path)