"""Smoke tests: the perf harness emits schema-valid ``BENCH_*.json``."""

import json

import pytest

from repro.perf.harness import (
    END2END_FILENAME,
    HOTPATHS_FILENAME,
    SCHEMA_VERSION,
    CompareRecord,
    End2EndRecord,
    best_of,
    compare,
    format_records,
    geomean,
    validate_bench_payload,
    write_end2end_json,
    write_hotpaths_json,
)


def _compare_record(**overrides):
    base = dict(
        name="kernel", dataset="synthetic", n_rows=100, repeats=2,
        seed_seconds=0.2, current_seconds=0.05, speedup=4.0,
    )
    base.update(overrides)
    return CompareRecord(**base)


def _end2end_record(**overrides):
    base = dict(
        name="run", dataset="car", n_rows=300, tau=5, seconds=1.5,
        iterations=5, accepted_iterations=3, n_added=40,
        seconds_per_iteration=0.3,
    )
    base.update(overrides)
    return End2EndRecord(**base)


class TestWriters:
    def test_hotpaths_json_schema_valid(self, tmp_path):
        path = write_hotpaths_json(
            [_compare_record(), _compare_record(dataset="adult", speedup=2.0)],
            out_dir=tmp_path, quick=True, seed=0,
        )
        assert path.name == HOTPATHS_FILENAME
        payload = json.loads(path.read_text())
        validate_bench_payload(payload)  # must not raise
        assert payload["schema_version"] == SCHEMA_VERSION
        assert payload["kind"] == "hotpaths"
        assert payload["summary"]["synthetic_geomean_speedup"] == 4.0
        assert payload["summary"]["adult_geomean_speedup"] == 2.0

    def test_end2end_json_schema_valid(self, tmp_path):
        path = write_end2end_json(
            [_end2end_record()], out_dir=tmp_path, quick=False, seed=42
        )
        assert path.name == END2END_FILENAME
        payload = json.loads(path.read_text())
        validate_bench_payload(payload)
        assert payload["kind"] == "end2end"
        assert payload["quick"] is False
        assert payload["summary"]["n_runs"] == 1


class TestValidation:
    def _valid_payload(self, tmp_path):
        path = write_hotpaths_json(
            [_compare_record()], out_dir=tmp_path, quick=True, seed=0
        )
        return json.loads(path.read_text())

    def test_missing_envelope_key_rejected(self, tmp_path):
        payload = self._valid_payload(tmp_path)
        del payload["results"]
        with pytest.raises(ValueError, match="missing keys"):
            validate_bench_payload(payload)

    def test_unknown_kind_rejected(self, tmp_path):
        payload = self._valid_payload(tmp_path)
        payload["kind"] = "warp-speed"
        with pytest.raises(ValueError, match="unknown BENCH kind"):
            validate_bench_payload(payload)

    def test_wrong_record_keys_rejected(self, tmp_path):
        payload = self._valid_payload(tmp_path)
        del payload["results"][0]["speedup"]
        with pytest.raises(ValueError, match="results\\[0\\]"):
            validate_bench_payload(payload)

    def test_negative_timing_rejected(self, tmp_path):
        payload = self._valid_payload(tmp_path)
        payload["results"][0]["seed_seconds"] = -1.0
        with pytest.raises(ValueError, match="non-negative"):
            validate_bench_payload(payload)

    def test_wrong_schema_version_rejected(self, tmp_path):
        payload = self._valid_payload(tmp_path)
        payload["schema_version"] = 999
        with pytest.raises(ValueError, match="schema_version"):
            validate_bench_payload(payload)


class TestTiming:
    def test_best_of_runs_fn(self):
        calls = []
        t = best_of(lambda: calls.append(1), repeats=3)
        assert len(calls) == 3 and t >= 0.0

    def test_best_of_rejects_zero_repeats(self):
        with pytest.raises(ValueError, match="repeats"):
            best_of(lambda: None, repeats=0)

    def test_compare_warms_up_then_times(self):
        seed_calls, cur_calls = [], []
        rec = compare(
            "x", "synthetic", 10,
            lambda: seed_calls.append(1), lambda: cur_calls.append(1), repeats=2,
        )
        # 1 warm-up + 2 timed rounds per side.
        assert len(seed_calls) == 3 and len(cur_calls) == 3
        assert rec.speedup > 0

    def test_geomean(self):
        assert geomean([2.0, 8.0]) == pytest.approx(4.0)
        assert geomean([]) == 0.0


class TestFormatting:
    def test_format_both_record_kinds(self):
        out = format_records([_compare_record()], "t1")
        assert "speedup" in out and "4.0x" in out
        out = format_records([_end2end_record()], "t2")
        assert "s/iter" in out
        assert format_records([], "empty").endswith("(no records)")


class TestCliIntegration:
    def test_cli_bench_quick_writes_both_files(self, tmp_path, monkeypatch):
        """`python -m repro.experiments.cli bench --quick` contract, scaled down."""
        from repro.experiments import cli
        from repro.perf.hotpaths import synthetic_mixed_table

        # Patch the heavy benchmark runners with fast stand-ins; the CLI
        # path under test is dispatch + JSON writing, not the kernels.
        monkeypatch.setattr(
            "repro.perf.run_hotpath_benchmarks",
            lambda **kw: [_compare_record()],
        )
        monkeypatch.setattr(
            "repro.perf.run_end2end_benchmarks",
            lambda **kw: [_end2end_record()],
        )
        assert synthetic_mixed_table(50, 0).n_rows == 50  # harness dataset sanity
        rc = cli.main(["bench", "--quick", "--out-dir", str(tmp_path)])
        assert rc == 0
        for name in (HOTPATHS_FILENAME, END2END_FILENAME):
            validate_bench_payload(json.loads((tmp_path / name).read_text()))
