"""SessionScheduler: policies, fairness aging, slot accounting."""

from __future__ import annotations

import asyncio

import pytest

from repro.serve import (
    SCHEDULING_POLICIES,
    RoundRobinPolicy,
    SessionScheduler,
    SessionTicket,
    WeightedPriorityPolicy,
    register_policy,
)


def ticket(name, priority=1.0, **kw):
    t = SessionTicket(name=name, priority=priority)
    for key, value in kw.items():
        setattr(t, key, value)
    return t


class TestPolicies:
    def test_round_robin_picks_least_recently_granted(self):
        a = ticket("a", last_granted=5)
        b = ticket("b", last_granted=2)
        c = ticket("c", last_granted=9)
        assert RoundRobinPolicy().pick((a, b, c), now=10) is b

    def test_round_robin_breaks_ties_by_arrival(self):
        a = ticket("a", arrival=3)
        b = ticket("b", arrival=1)
        assert RoundRobinPolicy().pick((a, b), now=0) is b

    def test_weighted_priority_prefers_high_priority(self):
        lo = ticket("lo", priority=1.0)
        hi = ticket("hi", priority=5.0)
        assert WeightedPriorityPolicy().pick((lo, hi), now=0) is hi

    def test_fairness_aging_prevents_starvation(self):
        """A long-waiting low-priority ticket outranks fresh high-priority."""
        policy = WeightedPriorityPolicy(aging_rate=0.5)
        lo = ticket("lo", priority=1.0, waiting_since=0)
        fresh_hi = ticket("hi", priority=3.0, waiting_since=2)
        # At now=2, lo has aged 1.0 + 0.5*2 = 2.0 < 3.0: hi still wins.
        assert policy.pick((lo, fresh_hi), now=2) is fresh_hi
        # A fresh high-priority arrival at now=10 loses to the aged waiter:
        # lo is at 1.0 + 0.5*10 = 6.0 > 3.0.
        fresh_hi.waiting_since = 10
        assert policy.pick((lo, fresh_hi), now=10) is lo

    def test_zero_aging_is_strict_priority(self):
        policy = WeightedPriorityPolicy(aging_rate=0.0)
        lo = ticket("lo", priority=1.0, waiting_since=0)
        hi = ticket("hi", priority=2.0, waiting_since=1000)
        assert policy.pick((lo, hi), now=10**6) is hi

    def test_negative_aging_rejected(self):
        with pytest.raises(ValueError, match="aging_rate"):
            WeightedPriorityPolicy(aging_rate=-0.1)

    def test_registry_names_and_custom_registration(self):
        assert "round-robin" in SCHEDULING_POLICIES
        assert "weighted-priority" in SCHEDULING_POLICIES

        @register_policy("most-steps-first", overwrite=True)
        class MostStepsFirst:
            def pick(self, waiting, now):
                return max(waiting, key=lambda t: t.steps_done)

        scheduler = SessionScheduler(policy="most-steps-first")
        assert isinstance(scheduler.policy, MostStepsFirst)

    def test_unknown_policy_fails_with_suggestion(self):
        with pytest.raises(KeyError, match="round-robin"):
            SessionScheduler(policy="round-robbin")


class TestSchedulerTurnstile:
    def test_serializes_beyond_max_concurrent(self):
        async def main():
            scheduler = SessionScheduler(max_concurrent=2, policy="round-robin")
            tickets = [scheduler.register(ticket(f"t{i}")) for i in range(4)]
            running = 0
            peak = 0

            async def work(t):
                nonlocal running, peak
                await scheduler.acquire(t)
                running += 1
                peak = max(peak, running)
                await asyncio.sleep(0.005)
                running -= 1
                scheduler.release(t)

            await asyncio.gather(*(work(t) for t in tickets))
            return peak, scheduler.in_flight, scheduler.grant_log

        peak, in_flight, log = asyncio.run(main())
        assert peak == 2
        assert in_flight == 0
        assert sorted(log) == ["t0", "t1", "t2", "t3"]

    def test_round_robin_interleaves_quanta(self):
        async def main():
            scheduler = SessionScheduler(max_concurrent=1, policy="round-robin")
            a = scheduler.register(ticket("a"))
            b = scheduler.register(ticket("b"))

            async def work(t, quanta):
                for _ in range(quanta):
                    await scheduler.acquire(t)
                    await asyncio.sleep(0)
                    scheduler.release(t)

            await asyncio.gather(work(a, 3), work(b, 3))
            return scheduler.grant_log

        log = asyncio.run(main())
        # Strict alternation: a session never runs twice while the other waits.
        assert log == ["a", "b", "a", "b", "a", "b"]

    def test_weighted_priority_grants_contested_slot_to_high_priority(self):
        async def main():
            scheduler = SessionScheduler(
                max_concurrent=1,
                policy=WeightedPriorityPolicy(aging_rate=0.0),
            )
            blocker = scheduler.register(ticket("blocker"))
            hi = scheduler.register(ticket("hi", priority=5.0))
            lo = scheduler.register(ticket("lo", priority=1.0))
            await scheduler.acquire(blocker)
            # lo enters the waiting set *first*; priority must still win.
            lo_task = asyncio.ensure_future(scheduler.acquire(lo))
            hi_task = asyncio.ensure_future(scheduler.acquire(hi))
            await asyncio.sleep(0)
            scheduler.release(blocker)
            await hi_task
            assert not lo_task.done()
            scheduler.release(hi)
            await lo_task
            scheduler.release(lo)
            return scheduler.grant_log

        assert asyncio.run(main()) == ["blocker", "hi", "lo"]

    def test_cancelled_waiter_is_removed(self):
        async def main():
            scheduler = SessionScheduler(max_concurrent=1)
            a = scheduler.register(ticket("a"))
            b = scheduler.register(ticket("b"))
            await scheduler.acquire(a)  # occupy the only slot
            waiter = asyncio.ensure_future(scheduler.acquire(b))
            await asyncio.sleep(0)
            waiter.cancel()
            await asyncio.gather(waiter, return_exceptions=True)
            scheduler.release(a)
            return scheduler.in_flight, scheduler.grant_log

        in_flight, log = asyncio.run(main())
        assert in_flight == 0
        assert log == ["a"]

    def test_policy_returning_foreign_ticket_errors(self):
        class Broken:
            def pick(self, waiting, now):
                return ticket("impostor")

        async def main():
            scheduler = SessionScheduler(max_concurrent=1, policy=Broken())
            with pytest.raises(RuntimeError, match="not waiting"):
                await scheduler.acquire(scheduler.register(ticket("x")))

        asyncio.run(main())

    def test_max_concurrent_validation(self):
        with pytest.raises(ValueError, match="max_concurrent"):
            SessionScheduler(max_concurrent=0)
