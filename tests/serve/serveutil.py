"""Shared helpers for the serving-layer tests (imported as ``serveutil``).

All async tests in this package run through ``asyncio.run`` inside sync
test functions (the test environment has no pytest-asyncio plugin).
"""

from __future__ import annotations

import numpy as np

import repro
from repro.data import Dataset, Table, make_schema

SCHEMA = make_schema(
    numeric=["age", "income"],
    categorical={"marital": ("single", "married", "divorced")},
)


def make_dataset(n: int, seed: int) -> Dataset:
    """Small binary dataset with planted rule structure."""
    rng = np.random.default_rng(seed)
    table = Table(
        SCHEMA,
        {
            "age": rng.uniform(18, 80, n),
            "income": rng.uniform(10, 200, n),
            "marital": rng.integers(0, 3, n),
        },
    )
    y = ((table.column("age") < 40) & (table.column("income") > 100)).astype(
        np.int64
    )
    noise = rng.uniform(size=n) < 0.05
    y[noise] = 1 - y[noise]
    return Dataset(table, y, ("deny", "approve"))


def make_spec(n: int = 250, tau: int = 4, seed: int = 42, **configure):
    """A ready-to-run EditSession over its own dataset."""
    return (
        repro.edit(make_dataset(n, seed))
        .with_rules(
            "age < 35 => approve",
            "income < 40 AND marital = 'single' => deny",
        )
        .with_algorithm("LR")
        .configure(tau=tau, q=0.5, random_state=seed, **configure)
    )



def assert_results_identical(a, b):
    """Bit-for-bit equality of two FroteResults (the parity contract)."""
    assert a.iterations == b.iterations
    assert a.n_added == b.n_added
    assert a.n_relabelled == b.n_relabelled
    assert a.n_dropped == b.n_dropped
    for name in a.dataset.X.schema.names:
        np.testing.assert_array_equal(
            a.dataset.X.column(name), b.dataset.X.column(name)
        )
    np.testing.assert_array_equal(a.dataset.y, b.dataset.y)
    for eval_a, eval_b in (
        (a.initial_evaluation, b.initial_evaluation),
        (a.final_evaluation, b.final_evaluation),
    ):
        np.testing.assert_array_equal(eval_a.per_rule_mra, eval_b.per_rule_mra)
        np.testing.assert_array_equal(
            eval_a.per_rule_count, eval_b.per_rule_count
        )
        assert eval_a.mra == eval_b.mra
        assert eval_a.f1_outside == eval_b.f1_outside
        assert eval_a.n_covered == eval_b.n_covered
        assert eval_a.n_outside == eval_b.n_outside
    assert a.history == b.history  # IterationRecords: scalar dataclasses
