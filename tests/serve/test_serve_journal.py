"""Serving-layer journals: per-session isolation and telemetry parity.

With ``EditService(journal_dir=...)`` every served session writes its own
session journal (same format and replay tooling as
``EditSession.journaled``) and the service appends admission decisions,
per-quantum grants, and terminal outcomes to ``<journal_dir>/_service``.
Pinned here:

* 4 concurrent sessions → one valid journal per session, each replaying
  to exactly its own session's history (no cross-session leakage);
* ``stats()`` step-latency percentiles agree with latencies recomputed
  from the service journal's quantum records;
* journaling never perturbs serving (results stay bit-identical to the
  unjournaled run) and a session's own ``journaled(...)`` config is
  honored when the service has no journal directory.
"""

import asyncio

import numpy as np

from serveutil import assert_results_identical, make_spec

from repro.journal import JournalReader, SessionReplay
from repro.serve.service import EditService, _percentile_ms

SEEDS = (11, 22, 33, 44)


def serve_fleet(journal_dir, *, tau=3):
    """Run one 4-tenant fleet with per-session seeds; returns results."""

    async def main():
        async with EditService(journal_dir=str(journal_dir)) as service:
            for seed in SEEDS:
                service.submit(
                    make_spec(tau=tau, seed=seed), name=f"tenant-{seed}"
                )
            outcomes = await service.run_all()
            stats = service.stats()
            errors = service.journal_errors
        return outcomes, stats, errors

    return asyncio.run(main())


class TestSessionJournalIsolation:
    def test_four_concurrent_sessions_one_valid_journal_each(self, tmp_path):
        outcomes, _, errors = serve_fleet(tmp_path)
        assert errors == 0
        assert set(outcomes) == {f"tenant-{seed}" for seed in SEEDS}

        for seed in SEEDS:
            name = f"tenant-{seed}"
            scan = JournalReader(tmp_path / name).scan()
            assert scan.ok, f"{name}: {scan.truncation}"
            # The journal belongs to exactly this session...
            assert scan.header.data["meta"]["name"] == name
            assert scan.header.data["meta"]["journal_kind"] == "session"
            assert len(scan.of_kind("run-meta")) == 1
            # ...and replays to exactly this session's live history.
            replay = SessionReplay.load(tmp_path / name)
            assert replay.history() == outcomes[name].history
            assert replay.summary()["finished"]

        # Distinct seeds give distinct trajectories — shared records
        # would be visible as identical histories across journals.
        histories = {
            seed: tuple(SessionReplay.load(tmp_path / f"tenant-{seed}").history())
            for seed in SEEDS
        }
        assert len(set(histories.values())) > 1

    def test_journaling_does_not_perturb_results(self, tmp_path):
        journaled, _, _ = serve_fleet(tmp_path / "a")

        async def plain():
            async with EditService() as service:
                for seed in SEEDS:
                    service.submit(
                        make_spec(tau=3, seed=seed), name=f"tenant-{seed}"
                    )
                return await service.run_all()

        unjournaled = asyncio.run(plain())
        for name, result in unjournaled.items():
            assert_results_identical(result, journaled[name])

    def test_session_config_journal_dir_honored_without_service_dir(
        self, tmp_path
    ):
        async def main():
            async with EditService() as service:  # no service journal_dir
                handle = service.submit(
                    make_spec(tau=3, seed=5).journaled(tmp_path, name="own"),
                    name="t",
                )
                return await handle.run_to_completion()

        result = asyncio.run(main())
        replay = SessionReplay.load(tmp_path / "own")
        assert replay.history() == result.history
        # No service journal was created (only the session's own).
        assert not (tmp_path / "_service").exists()


class TestServiceJournal:
    def test_stats_percentiles_agree_with_journal(self, tmp_path):
        _, stats, _ = serve_fleet(tmp_path)

        scan = JournalReader(tmp_path / "_service").scan()
        assert scan.ok
        assert scan.header.data["meta"]["journal_kind"] == "service"

        steps = [
            r.data["seconds"]
            for r in scan.of_kind("quantum")
            if r.data["kind"] == "step"
        ]
        assert len(steps) == stats["steps_total"]
        # Same samples through the same estimator: exact agreement
        # (journal floats round-trip float64 bit-exactly).
        assert _percentile_ms(steps, 50.0) == stats["p50_step_ms"]
        assert _percentile_ms(steps, 99.0) == stats["p99_step_ms"]

    def test_lifecycle_records_cover_every_session(self, tmp_path):
        _, stats, _ = serve_fleet(tmp_path)
        scan = JournalReader(tmp_path / "_service").scan()

        submitted = scan.of_kind("session-submitted")
        granted = scan.of_kind("admission-granted")
        terminal = scan.of_kind("session-terminal")
        names = {f"tenant-{seed}" for seed in SEEDS}
        assert {r.data["name"] for r in submitted} == names
        assert {r.data["name"] for r in granted} == names
        assert {r.data["name"] for r in terminal} == names
        assert all(r.data["status"] == "done" for r in terminal)
        # Quantum records only ever name submitted sessions.
        assert {r.data["name"] for r in scan.of_kind("quantum")} <= names
        # Closing stamps the final stats snapshot.
        (closed,) = scan.of_kind("service-closed")
        assert closed.data["stats"]["n_completed"] == stats["n_completed"] == 4

    def test_cancelled_session_settles_its_journal(self, tmp_path):
        async def main():
            async with EditService(journal_dir=str(tmp_path)) as service:
                handle = service.submit(make_spec(tau=50, seed=9), name="victim")
                await handle.step()  # setup quantum: journal attached
                await handle.step()
                handle.cancel(reason="test-cancel")
                try:
                    await handle.result()
                except Exception:
                    pass
                return handle.status

        status = asyncio.run(main())
        assert status == "cancelled"
        scan = JournalReader(tmp_path / "victim").scan()
        assert scan.ok  # closed cleanly at cancellation, not torn
        (terminal,) = JournalReader(tmp_path / "_service").scan().of_kind(
            "session-terminal"
        )
        assert terminal.data["status"] == "cancelled"
        assert terminal.data["cancel_reason"] == "test-cancel"
