"""Served execution is bit-identical to ``EditSession.run()``.

The serving layer's core contract: a served session calls exactly the
same engine entry points (initialize / step / finalize) on the same
state as the sync path, and all randomness lives in per-session state —
so results match bit for bit whether a session runs alone, is stepped
manually, or interleaves with many concurrent tenants.
"""

from __future__ import annotations

import asyncio

from repro.serve import EditService

from serveutil import assert_results_identical, make_spec


def test_single_session_bit_identical():
    serial = make_spec(seed=42).run()

    async def serve():
        service = EditService()
        return await service.submit(make_spec(seed=42)).run_to_completion()

    assert_results_identical(serial, asyncio.run(serve()))


def test_single_session_with_memory_pool_bit_identical():
    """A carved max_resident_mb budget must not change the numbers."""
    serial = make_spec(seed=7).run()

    async def serve():
        service = EditService(memory_budget_mb=64.0)
        return await service.submit(make_spec(seed=7)).run_to_completion()

    assert_results_identical(serial, asyncio.run(serve()))


def test_manual_stepping_bit_identical():
    serial = make_spec(seed=3).run()

    async def serve():
        service = EditService()
        handle = service.submit(make_spec(seed=3))
        while not handle.done:
            view = await handle.step()
            assert view.quanta_done > 0
        return await handle.result()

    assert_results_identical(serial, asyncio.run(serve()))


def test_concurrent_sessions_each_bit_identical():
    """Interleaving N tenants must not perturb any one of them."""
    seeds = [11, 22, 33, 44]
    serial = {seed: make_spec(seed=seed).run() for seed in seeds}

    async def serve():
        service = EditService(
            policy="weighted-priority", memory_budget_mb=128.0
        )
        handles = {
            seed: service.submit(
                make_spec(seed=seed), name=f"s{seed}", priority=1.0 + i
            )
            for i, seed in enumerate(seeds)
        }
        results = await asyncio.gather(
            *(h.run_to_completion() for h in handles.values())
        )
        return dict(zip(handles, results))

    served = asyncio.run(serve())
    for seed in seeds:
        assert_results_identical(serial[seed], served[seed])


def test_rerun_of_same_spec_is_deterministic():
    """Two served runs of identical specs agree with each other too."""

    async def serve():
        service = EditService()
        return await service.submit(make_spec(seed=5)).run_to_completion()

    assert_results_identical(asyncio.run(serve()), asyncio.run(serve()))
