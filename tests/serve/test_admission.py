"""AdmissionController: pool accounting, FIFO grants, bounded queue."""

from __future__ import annotations

import asyncio

import pytest

from repro.serve import AdmissionController, AdmissionError, MemoryPool


class TestMemoryPool:
    def test_reserve_release_and_peak(self):
        pool = MemoryPool(100.0)
        pool.reserve(60.0)
        pool.reserve(40.0)
        assert pool.reserved_mb == 100.0
        assert not pool.fits(0.1)
        pool.release(40.0)
        assert pool.reserved_mb == 60.0
        assert pool.peak_reserved_mb == 100.0  # high-water mark sticks

    def test_over_reserve_raises(self):
        pool = MemoryPool(10.0)
        pool.reserve(8.0)
        with pytest.raises(AdmissionError, match="cannot reserve"):
            pool.reserve(4.0)

    def test_release_floors_at_zero(self):
        pool = MemoryPool(10.0)
        pool.reserve(5.0)
        pool.release(9.0)
        assert pool.reserved_mb == 0.0


class TestAdmissionController:
    def test_grants_immediately_when_free(self):
        async def main():
            ctrl = AdmissionController(pool=MemoryPool(32.0))
            grant = await ctrl.acquire(16.0)
            assert ctrl.n_active == 1
            assert ctrl.pool.reserved_mb == 16.0
            ctrl.release(grant)
            assert ctrl.n_active == 0
            assert ctrl.pool.reserved_mb == 0.0

        asyncio.run(main())

    def test_fifo_no_small_request_overtaking(self):
        """A later small request must not jump a queued large one."""

        async def main():
            ctrl = AdmissionController(pool=MemoryPool(32.0))
            first = await ctrl.acquire(24.0)
            big = asyncio.ensure_future(ctrl.acquire(24.0))  # doesn't fit yet
            small = asyncio.ensure_future(ctrl.acquire(4.0))  # would fit now
            await asyncio.sleep(0)
            assert not big.done() and not small.done()
            ctrl.release(first)
            grant_big = await big
            assert small.done()  # pumped right behind big (24 + 4 <= 32)
            ctrl.release(grant_big)
            ctrl.release(await small)
            assert ctrl.pool.reserved_mb == 0.0

        asyncio.run(main())

    def test_bounded_pending_queue_rejects(self):
        async def main():
            ctrl = AdmissionController(
                pool=MemoryPool(8.0), max_pending=1
            )
            grant = await ctrl.acquire(8.0)
            queued = ctrl.request(8.0)
            with pytest.raises(AdmissionError, match="queue full"):
                ctrl.request(8.0)
            assert ctrl.n_rejected == 1
            ctrl.release(grant)
            ctrl.release(await queued)

        asyncio.run(main())

    def test_impossible_request_rejected_outright(self):
        async def main():
            ctrl = AdmissionController(pool=MemoryPool(8.0))
            with pytest.raises(AdmissionError, match="never"):
                ctrl.request(9.0)
            assert ctrl.n_rejected == 1
            assert ctrl.n_pending == 0

        asyncio.run(main())

    def test_max_active_caps_without_pool(self):
        async def main():
            ctrl = AdmissionController(max_active=2)
            a = await ctrl.acquire()
            b = await ctrl.acquire()
            c = asyncio.ensure_future(ctrl.acquire())
            await asyncio.sleep(0)
            assert not c.done()
            assert ctrl.n_pending == 1
            ctrl.release(a)
            grant_c = await c
            ctrl.release(b)
            ctrl.release(grant_c)
            assert ctrl.n_active == 0

        asyncio.run(main())

    def test_cancelled_waiter_abandons_its_spot(self):
        async def main():
            ctrl = AdmissionController(pool=MemoryPool(8.0), max_pending=2)
            grant = await ctrl.acquire(8.0)
            doomed = asyncio.ensure_future(ctrl.acquire(8.0))
            queued = ctrl.request(8.0)
            await asyncio.sleep(0)
            doomed.cancel()
            await asyncio.gather(doomed, return_exceptions=True)
            ctrl.release(grant)
            # The cancelled head is skipped; the next waiter is granted.
            ctrl.release(await queued)
            assert ctrl.pool.reserved_mb == 0.0
            assert ctrl.n_pending == 0

        asyncio.run(main())

    def test_constructor_validation(self):
        with pytest.raises(ValueError, match="max_active"):
            AdmissionController(max_active=0)
        with pytest.raises(ValueError, match="max_pending"):
            AdmissionController(max_pending=-1)
