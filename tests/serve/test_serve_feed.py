"""Feeding rules into served sessions at quantum boundaries.

``SessionHandle.feed(...)`` stages events immediately but delivers them
only at the next quantum boundary, so served sessions keep the same
boundary-granular determinism as ``EditSession`` feedback and the
applied deltas land in the run journal.
"""

from __future__ import annotations

import asyncio

import pytest

from repro.feedback import RuleProposal
from repro.journal import SessionReplay
from repro.rules import FeedbackRule, Predicate, clause
from repro.serve import EditService, ServeError

from serveutil import make_spec


def run(coro):
    return asyncio.run(coro)


# Disjoint from make_spec's planted rules on age, opposite-label-safe.
EXTRA = FeedbackRule.deterministic(
    clause(Predicate("age", ">", 70.0)), 1, 2, name="elder"
)


class TestFeedDelivery:
    def test_feed_mid_run_lands_at_boundary(self):
        async def main():
            service = EditService()
            handle = service.submit(make_spec(seed=4, tau=6), name="mid")
            await handle.step()  # setup quantum
            await handle.step()  # iteration 1
            fed_at = handle.inspect().iteration
            handle.feed(RuleProposal(EXTRA, source="expert"))
            while not handle.done:
                await handle.step()
            return fed_at, await handle.result()

        fed_at, result = run(main())
        assert len(result.frs) == 3
        assert [d.iteration for d in result.ruleset_log] == [fed_at]
        assert "elder" in [r.name for r in result.frs]

    def test_feed_accepts_rule_strings(self):
        async def main():
            service = EditService()
            handle = service.submit(make_spec(seed=5, tau=4), name="str")
            n = handle.feed("age > 70 => approve", source="cli")
            result = await handle.run_to_completion()
            return n, result

        n, result = run(main())
        assert n == 1
        assert len(result.frs) == 3

    def test_feed_after_terminal_errors(self):
        async def main():
            service = EditService()
            handle = service.submit(make_spec(seed=6, tau=3), name="late")
            await handle.run_to_completion()
            with pytest.raises(ServeError, match="already"):
                handle.feed(RuleProposal(EXTRA))

        run(main())

    def test_unfed_session_results_unchanged(self):
        """Attaching the (empty) feed source to every served session must
        not perturb the serve-vs-batch parity contract."""
        from serveutil import assert_results_identical

        async def main():
            service = EditService()
            handle = service.submit(make_spec(seed=7, tau=4), name="plain")
            return await handle.run_to_completion()

        served = run(main())
        batch = make_spec(seed=7, tau=4).run()
        assert_results_identical(served, batch)


class TestFeedJournal:
    def test_mid_run_feed_replays_rule_timeline(self, tmp_path):
        async def main():
            async with EditService(journal_dir=str(tmp_path)) as service:
                handle = service.submit(make_spec(seed=8, tau=6), name="jfed")
                await handle.step()
                await handle.step()
                handle.feed(RuleProposal(EXTRA, source="expert"))
                while not handle.done:
                    await handle.step()
                return await handle.result()

        result = run(main())
        replay = SessionReplay.load(tmp_path / "jfed")
        timeline = replay.rule_timeline()
        assert [row["rules"] for row in timeline] == [["elder"]]
        assert timeline[0]["iteration"] == result.ruleset_log[0].iteration
        assert "expert" in timeline[0]["provenance"]
        assert replay.history() == result.history


class TestSpecIsolation:
    def test_carve_does_not_mutate_callers_session(self):
        spec = make_spec(seed=9, tau=3)

        async def main():
            service = EditService()
            handle = service.submit(spec, name="iso")
            handle.feed(RuleProposal(EXTRA, source="expert"))
            return await handle.run_to_completion()

        served = run(main())
        assert len(served.frs) == 3
        # The caller's spec acquired no feed source and no scheduled
        # rules; a fresh batch run still sees only its own two rules.
        assert spec._feedback_sources == []
        assert spec._scheduled_rules == {}
        assert len(spec.run().frs) == 2
