"""EditService behaviour: events, stepping, cancellation, timeouts, budgets."""

from __future__ import annotations

import asyncio

import pytest

from repro.serve import (
    AdmissionError,
    EditService,
    ServeError,
    SessionCancelled,
)

from serveutil import make_spec


def run(coro):
    return asyncio.run(coro)


class TestEvents:
    def test_streams_engine_events_in_order(self):
        async def main():
            service = EditService()
            handle = service.submit(make_spec(seed=1))
            kinds = []

            async def watch():
                async for event in handle.events():
                    kinds.append(event.kind)

            watcher = asyncio.ensure_future(watch())
            await handle.run_to_completion()
            await watcher
            return kinds

        kinds = run(main())
        assert kinds[0] == "started"
        assert kinds[-1] == "finished"
        assert all(
            k in {"started", "accepted", "rejected", "empty-batch", "finished"}
            for k in kinds
        )

    def test_bounded_queue_drops_oldest(self):
        async def main():
            service = EditService(event_queue_size=2)
            handle = service.submit(make_spec(seed=1, tau=4))
            await handle.run_to_completion()
            # Nothing consumed while running: only the 2 newest survive.
            remaining = [event.kind async for event in handle.events()]
            return remaining, handle.inspect().events_dropped

        remaining, dropped = run(main())
        assert len(remaining) == 2
        assert remaining[-1] == "finished"
        assert dropped > 0

    def test_events_iterator_ends_after_terminal_drain(self):
        async def main():
            service = EditService()
            handle = service.submit(make_spec(seed=2))
            await handle.run_to_completion()
            first = [e.kind async for e in handle.events()]
            second = [e.kind async for e in handle.events()]
            return first, second

        first, second = run(main())
        assert first and first[-1] == "finished"
        assert second == []  # queue already drained, session terminal


class TestStepping:
    def test_view_advances_per_quantum(self):
        async def main():
            service = EditService()
            handle = service.submit(make_spec(seed=3, tau=3))
            views = []
            while not handle.done:
                views.append(await handle.step())
            return views, handle.status

        views, status = run(main())
        assert status == "done"
        # First quantum is setup, later ones are loop steps + finalize.
        assert views[0].quanta_done == 1 and views[0].steps_done == 0
        assert views[-1].steps_done == views[-1].quanta_done - 2

    def test_step_after_done_raises(self):
        async def main():
            service = EditService()
            handle = service.submit(make_spec(seed=3, tau=2))
            while not handle.done:
                await handle.step()
            with pytest.raises(ServeError, match="already finished"):
                await handle.step()

        run(main())

    def test_step_while_auto_driving_raises(self):
        async def main():
            service = EditService()
            handle = service.submit(make_spec(seed=3))
            task = asyncio.ensure_future(handle.run_to_completion())
            await asyncio.sleep(0)
            with pytest.raises(ServeError, match="auto-driven"):
                await handle.step()
            await task

        run(main())


class TestCancellation:
    def test_cancel_mid_run_rolls_back_staged_rows(self):
        async def main():
            service = EditService()
            handle = service.submit(make_spec(seed=4, tau=50))

            async def watch():
                async for event in handle.events():
                    if event.kind in ("accepted", "rejected", "empty-batch"):
                        handle.cancel(reason="mid-run test")
                        return

            watcher = asyncio.ensure_future(watch())
            with pytest.raises(SessionCancelled, match="mid-run test"):
                await handle.run_to_completion()
            await watcher
            state = handle._state
            # No staged-but-uncommitted tail survives cancellation.
            builder = state.active_builder
            assert builder.n_rows == builder.checkpoint()
            assert state.active.n == builder.n_rows
            return handle.inspect()

        view = run(main())
        assert view.status == "cancelled"
        assert view.cancel_reason == "mid-run test"

    def test_cancel_before_start_settles_immediately(self):
        async def main():
            service = EditService()
            handle = service.submit(make_spec(seed=4))
            assert handle.cancel(reason="early") is True
            assert handle.status == "cancelled"
            with pytest.raises(SessionCancelled, match="early"):
                await handle.result()

        run(main())

    def test_cancel_releases_memory_grant(self):
        async def main():
            service = EditService(memory_budget_mb=32.0, default_session_mb=32.0)
            first = service.submit(make_spec(seed=4, tau=50))
            second = service.submit(make_spec(seed=5))
            task = asyncio.ensure_future(first.run_to_completion())
            while first._grant is None:
                await asyncio.sleep(0.001)
            assert service.pool.reserved_mb == 32.0
            first.cancel(reason="free the pool")
            with pytest.raises(SessionCancelled):
                await task
            result = await second.run_to_completion()
            assert service.pool.reserved_mb == 0.0
            assert service.pool.peak_reserved_mb == 32.0
            return result

        assert run(main()).iterations > 0

    def test_cancel_twice_is_noop(self):
        async def main():
            service = EditService()
            handle = service.submit(make_spec(seed=4))
            assert handle.cancel() is True
            assert handle.cancel() is False

        run(main())


class TestTimeout:
    def test_timeout_cancels_with_reason(self):
        async def main():
            service = EditService()
            handle = service.submit(make_spec(seed=6, tau=200), timeout=0.01)
            with pytest.raises(SessionCancelled, match="timeout"):
                await handle.run_to_completion()
            return handle.inspect()

        view = run(main())
        assert view.status == "cancelled"
        assert view.cancel_reason == "timeout"

    def test_generous_timeout_completes(self):
        async def main():
            service = EditService()
            handle = service.submit(make_spec(seed=6, tau=2), timeout=60.0)
            return await handle.run_to_completion()

        assert run(main()).iterations == 2


class TestAdmissionIntegration:
    def test_submission_queue_backpressure(self):
        async def main():
            service = EditService(
                memory_budget_mb=16.0,
                default_session_mb=16.0,
                max_pending=1,
            )
            service.submit(make_spec(seed=7))  # granted
            service.submit(make_spec(seed=8))  # queued
            with pytest.raises(AdmissionError, match="queue full"):
                service.submit(make_spec(seed=9))
            assert service.admission.n_rejected == 1

        run(main())

    def test_oversized_session_rejected_outright(self):
        async def main():
            service = EditService(memory_budget_mb=16.0)
            spec = make_spec(seed=7, max_resident_mb=64.0)
            with pytest.raises(AdmissionError, match="never"):
                service.submit(spec)

        run(main())

    def test_own_budget_respected_and_caller_not_mutated(self):
        async def main():
            service = EditService(memory_budget_mb=64.0, default_session_mb=8.0)
            spec = make_spec(seed=7, max_resident_mb=24.0)
            handle = service.submit(spec)
            assert handle.inspect().budget_mb == 24.0
            plain = make_spec(seed=8)
            before = dict(plain._config_kwargs)
            handle2 = service.submit(plain)
            assert handle2.inspect().budget_mb == 8.0
            assert plain._config_kwargs == before  # caller's spec untouched
            await service.close()

        run(main())

    def test_duplicate_name_rejected(self):
        async def main():
            service = EditService()
            service.submit(make_spec(seed=7), name="dup")
            with pytest.raises(ValueError, match="already in use"):
                service.submit(make_spec(seed=8), name="dup")

        run(main())


class TestServiceLifecycle:
    def test_stats_and_counters(self):
        async def main():
            service = EditService(memory_budget_mb=64.0)
            handles = [service.submit(make_spec(seed=10 + i)) for i in range(3)]
            handles[2].cancel(reason="stats test")
            await asyncio.gather(
                *(h.run_to_completion() for h in handles),
                return_exceptions=True,
            )
            return service.stats()

        stats = run(main())
        assert stats["n_submitted"] == 3
        assert stats["n_completed"] == 2
        assert stats["n_cancelled"] == 1
        assert stats["steps_total"] > 0
        assert stats["p99_step_ms"] >= stats["p50_step_ms"] > 0
        assert stats["peak_reserved_mb"] <= stats["pool_mb"]

    def test_close_cancels_live_sessions(self):
        async def main():
            async with EditService() as service:
                handle = service.submit(make_spec(seed=20, tau=500))
                task = asyncio.ensure_future(handle.run_to_completion())
                await asyncio.sleep(0.02)
            assert handle.done
            with pytest.raises(SessionCancelled, match="service-shutdown"):
                await task
            return service.stats()

        stats = run(main())
        assert stats["n_cancelled"] == 1

    def test_engine_failure_surfaces_as_failed(self):
        async def main():
            service = EditService()
            spec = make_spec(seed=21)
            handle = service.submit(spec)
            handle._spec._algorithm = None  # force build_state to blow up
            with pytest.raises(ValueError, match="algorithm"):
                await handle.run_to_completion()
            return handle.status, service.stats()["n_failed"]

        status, n_failed = run(main())
        assert status == "failed"
        assert n_failed == 1
