"""Tests for GaussianNB, KNeighborsClassifier, and the extended registry."""

import numpy as np
import pytest

from repro.models import (
    EXTENDED_MODELS,
    GaussianNB,
    KNeighborsClassifier,
    extended_algorithm,
)

from tests.conftest import make_tiny_dataset


def _blobs(n=300, seed=0):
    rng = np.random.default_rng(seed)
    X = np.vstack(
        [rng.normal([0, 0], 0.8, (n // 2, 2)), rng.normal([3, 3], 0.8, (n // 2, 2))]
    )
    y = np.repeat([0, 1], n // 2)
    return X, y


class TestGaussianNB:
    def test_separable_blobs(self):
        X, y = _blobs()
        m = GaussianNB().fit(X, y)
        assert (m.predict(X) == y).mean() > 0.95

    def test_proba_sums_to_one(self):
        X, y = _blobs()
        P = GaussianNB().fit(X, y).predict_proba(X)
        np.testing.assert_allclose(P.sum(axis=1), 1.0)

    def test_absent_class_handled(self):
        X, y = _blobs()
        m = GaussianNB().fit(X, y, n_classes=3)
        assert m.predict_proba(X).shape == (X.shape[0], 3)
        # Absent class never wins on data from the observed blobs.
        assert not np.any(m.predict(X) == 2)

    def test_priors_reflect_imbalance(self):
        rng = np.random.default_rng(0)
        X = rng.normal(size=(100, 2))
        y = np.array([0] * 90 + [1] * 10)
        m = GaussianNB().fit(X, y)
        assert m.class_log_prior_[0] > m.class_log_prior_[1]

    def test_constant_feature_no_nan(self):
        X = np.column_stack([np.ones(40), np.linspace(0, 1, 40)])
        y = (X[:, 1] > 0.5).astype(np.int64)
        P = GaussianNB().fit(X, y).predict_proba(X)
        assert np.isfinite(P).all()

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            GaussianNB().predict(np.zeros((1, 2)))

    def test_empty_fit_raises(self):
        with pytest.raises(ValueError, match="empty"):
            GaussianNB().fit(np.zeros((0, 2)), np.zeros(0, dtype=int))

    def test_invalid_smoothing_raises(self):
        with pytest.raises(ValueError, match="var_smoothing"):
            GaussianNB(var_smoothing=-1.0)


class TestKNeighborsClassifier:
    def test_separable_blobs(self):
        X, y = _blobs()
        m = KNeighborsClassifier(k=5).fit(X, y)
        assert (m.predict(X) == y).mean() > 0.95

    def test_k1_memorizes_training_data(self):
        X, y = _blobs(100)
        m = KNeighborsClassifier(k=1).fit(X, y)
        np.testing.assert_array_equal(m.predict(X), y)

    def test_brute_and_balltree_agree(self):
        X, y = _blobs(150, seed=2)
        p1 = KNeighborsClassifier(k=3, algorithm="brute").fit(X, y).predict(X)
        p2 = KNeighborsClassifier(k=3, algorithm="ball_tree").fit(X, y).predict(X)
        np.testing.assert_array_equal(p1, p2)

    def test_distance_weights(self):
        X, y = _blobs()
        m = KNeighborsClassifier(k=5, weights="distance").fit(X, y)
        assert (m.predict(X) == y).mean() > 0.95

    def test_k_clipped_to_n(self):
        X = np.array([[0.0], [1.0]])
        y = np.array([0, 1])
        m = KNeighborsClassifier(k=10).fit(X, y)
        assert m.predict(np.array([[0.1]]))[0] in (0, 1)

    def test_proba_shape(self):
        X, y = _blobs(60)
        P = KNeighborsClassifier(k=3).fit(X, y, n_classes=4).predict_proba(X)
        assert P.shape == (60, 4)

    @pytest.mark.parametrize(
        "kwargs", [{"k": 0}, {"weights": "gaussian"}, {"algorithm": "kd_tree"}]
    )
    def test_invalid_params_raise(self, kwargs):
        with pytest.raises(ValueError):
            KNeighborsClassifier(**kwargs)

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            KNeighborsClassifier().predict(np.zeros((1, 2)))


class TestExtendedRegistry:
    def test_registry_superset_of_paper(self):
        assert {"LR", "RF", "LGBM", "NB", "KNN"} <= set(EXTENDED_MODELS)

    @pytest.mark.parametrize("name", ["NB", "KNN"])
    def test_extended_algorithms_train_on_tables(self, name):
        ds = make_tiny_dataset(80)
        model = extended_algorithm(name)(ds)
        assert (model.predict(ds.X) == ds.y).mean() > 0.6

    def test_unknown_name_raises(self):
        with pytest.raises(KeyError, match="unknown model"):
            extended_algorithm("SVM")

    def test_frote_works_with_extension_models(self, mixed_dataset):
        """The model-agnostic claim: FROTE edits NB and KNN too."""
        from repro.core import FROTE, FroteConfig
        from repro.rules import FeedbackRule, FeedbackRuleSet, Predicate, clause

        frs = FeedbackRuleSet(
            (
                FeedbackRule.deterministic(
                    clause(Predicate("age", "<", 35.0)), 0, 2
                ),
            )
        )
        for name in ("NB", "KNN"):
            alg = extended_algorithm(name)
            result = FROTE(
                alg, frs, FroteConfig(tau=3, q=0.3, eta=10, random_state=0)
            ).run(mixed_dataset)
            assert result.iterations <= 3
