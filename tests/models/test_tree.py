"""Tests for the CART decision tree."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.models import DecisionTreeClassifier


def _xor(n=200, seed=0):
    rng = np.random.default_rng(seed)
    X = rng.uniform(-1, 1, (n, 2))
    y = ((X[:, 0] > 0) ^ (X[:, 1] > 0)).astype(np.int64)
    return X, y


class TestFit:
    def test_fits_axis_aligned_split(self):
        rng = np.random.default_rng(0)
        X = rng.uniform(0, 1, (100, 2))
        y = (X[:, 0] > 0.5).astype(np.int64)
        m = DecisionTreeClassifier(max_depth=1).fit(X, y)
        assert (m.predict(X) == y).all()

    def test_fits_xor_with_depth_3(self):
        # Greedy CART's first XOR split is noise-driven, so depth 2 is not
        # guaranteed to carve the quadrants exactly; depth 3 is.
        X, y = _xor()
        m = DecisionTreeClassifier(max_depth=3).fit(X, y)
        assert (m.predict(X) == y).mean() > 0.95

    def test_max_depth_respected(self):
        X, y = _xor(400)
        m = DecisionTreeClassifier(max_depth=3).fit(X, y)
        assert m.depth <= 3

    def test_pure_node_becomes_leaf(self):
        X = np.array([[0.0], [1.0]])
        y = np.array([0, 0])
        m = DecisionTreeClassifier().fit(X, y, n_classes=2)
        assert m.n_nodes == 1

    def test_min_samples_leaf(self):
        X, y = _xor(100)
        m = DecisionTreeClassifier(min_samples_leaf=30).fit(X, y)
        # Every leaf must hold >= 30 samples, so depth is very limited.
        assert m.n_nodes <= 7

    def test_min_samples_split(self):
        X, y = _xor(100)
        m = DecisionTreeClassifier(min_samples_split=200).fit(X, y)
        assert m.n_nodes == 1

    def test_entropy_criterion(self):
        X, y = _xor()
        m = DecisionTreeClassifier(max_depth=3, criterion="entropy").fit(X, y)
        assert (m.predict(X) == y).mean() > 0.95

    def test_invalid_criterion_raises(self):
        with pytest.raises(ValueError, match="criterion"):
            DecisionTreeClassifier(criterion="mse")

    def test_empty_data_raises(self):
        with pytest.raises(ValueError, match="empty"):
            DecisionTreeClassifier().fit(np.zeros((0, 2)), np.zeros(0, dtype=int))

    def test_max_features_sqrt(self):
        X, y = _xor()
        m = DecisionTreeClassifier(max_depth=3, max_features="sqrt", random_state=0)
        m.fit(X, y)
        assert (m.predict(X) == y).mean() > 0.5

    def test_invalid_max_features_raises(self):
        X, y = _xor(50)
        with pytest.raises(ValueError, match="max_features"):
            DecisionTreeClassifier(max_features=1.5).fit(X, y)

    def test_constant_features_single_leaf(self):
        X = np.ones((20, 3))
        y = np.array([0, 1] * 10)
        m = DecisionTreeClassifier().fit(X, y)
        assert m.n_nodes == 1


class TestPredict:
    def test_proba_rows_sum_to_one(self):
        X, y = _xor()
        m = DecisionTreeClassifier(max_depth=4).fit(X, y)
        P = m.predict_proba(X)
        np.testing.assert_allclose(P.sum(axis=1), 1.0)

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            DecisionTreeClassifier().predict(np.zeros((1, 2)))

    def test_n_classes_padding(self):
        X = np.array([[0.0], [1.0]])
        y = np.array([0, 1])
        m = DecisionTreeClassifier().fit(X, y, n_classes=5)
        assert m.predict_proba(X).shape == (2, 5)

    def test_deterministic_given_seed(self):
        X, y = _xor(300, seed=3)
        p1 = DecisionTreeClassifier(max_depth=4, max_features="sqrt", random_state=9).fit(X, y).predict(X)
        p2 = DecisionTreeClassifier(max_depth=4, max_features="sqrt", random_state=9).fit(X, y).predict(X)
        np.testing.assert_array_equal(p1, p2)


@settings(max_examples=25, deadline=None)
@given(
    n=st.integers(min_value=5, max_value=120),
    seed=st.integers(min_value=0, max_value=10**6),
)
def test_training_accuracy_beats_majority_property(n, seed):
    """An unrestricted tree must fit training data at least as well as the
    majority-class baseline."""
    rng = np.random.default_rng(seed)
    X = rng.normal(size=(n, 3))
    y = rng.integers(0, 2, n)
    m = DecisionTreeClassifier().fit(X, y, n_classes=2)
    acc = (m.predict(X) == y).mean()
    majority = max(y.mean(), 1 - y.mean())
    assert acc >= majority - 1e-12
