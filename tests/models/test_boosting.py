"""Tests for the histogram GBDT (LightGBM substitute)."""

import numpy as np
import pytest

from repro.models import GradientBoostingClassifier
from repro.models.boosting import _Binner


def _data(n=400, seed=0):
    rng = np.random.default_rng(seed)
    X = rng.normal(size=(n, 4))
    y = ((X[:, 0] > 0) ^ (X[:, 1] > 0)).astype(np.int64)
    return X, y


class TestBinner:
    def test_bins_within_bounds(self):
        rng = np.random.default_rng(0)
        X = rng.normal(size=(500, 2))
        b = _Binner(max_bins=16).fit(X)
        B = b.transform(X)
        for f in range(2):
            assert B[:, f].min() >= 0
            assert B[:, f].max() < b.n_bins(f)

    def test_monotone_binning(self):
        X = np.linspace(0, 1, 100).reshape(-1, 1)
        B = _Binner(max_bins=8).fit(X).transform(X)
        assert np.all(np.diff(B[:, 0]) >= 0)

    def test_constant_feature_single_bin(self):
        X = np.full((50, 1), 2.0)
        b = _Binner().fit(X)
        assert b.n_bins(0) <= 2

    def test_invalid_max_bins(self):
        with pytest.raises(ValueError, match="max_bins"):
            _Binner(max_bins=1)

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            _Binner().transform(np.zeros((1, 1)))


class TestGradientBoosting:
    def test_learns_xor(self):
        X, y = _data()
        m = GradientBoostingClassifier(n_estimators=40).fit(X, y)
        assert (m.predict(X) == y).mean() > 0.9

    def test_binary_proba(self):
        X, y = _data()
        m = GradientBoostingClassifier(n_estimators=10).fit(X, y)
        P = m.predict_proba(X)
        assert P.shape == (X.shape[0], 2)
        np.testing.assert_allclose(P.sum(axis=1), 1.0)

    def test_multiclass(self):
        rng = np.random.default_rng(1)
        X = rng.normal(size=(500, 3))
        y = np.digitize(X[:, 0] + 0.3 * X[:, 1], [-0.5, 0.5]).astype(np.int64)
        m = GradientBoostingClassifier(n_estimators=25).fit(X, y, n_classes=3)
        assert (m.predict(X) == y).mean() > 0.85
        assert m.predict_proba(X).shape == (500, 3)

    def test_more_rounds_reduce_training_error(self):
        X, y = _data(600, seed=2)
        few = GradientBoostingClassifier(n_estimators=3).fit(X, y)
        many = GradientBoostingClassifier(n_estimators=50).fit(X, y)
        assert (many.predict(X) == y).mean() >= (few.predict(X) == y).mean()

    def test_deterministic(self):
        X, y = _data()
        a = GradientBoostingClassifier(n_estimators=5).fit(X, y).predict_proba(X)
        b = GradientBoostingClassifier(n_estimators=5).fit(X, y).predict_proba(X)
        np.testing.assert_allclose(a, b)

    def test_max_depth_limits_trees(self):
        X, y = _data()
        m = GradientBoostingClassifier(n_estimators=5, max_depth=1).fit(X, y)
        # Depth-1 trees cannot solve XOR.
        assert (m.predict(X) == y).mean() < 0.8

    def test_small_dataset(self):
        X = np.array([[0.0], [1.0], [2.0], [3.0]] * 3)
        y = np.array([0, 0, 1, 1] * 3)
        m = GradientBoostingClassifier(n_estimators=5, min_child_samples=1).fit(X, y)
        assert (m.predict(X) == y).mean() >= 0.75

    def test_invalid_params(self):
        with pytest.raises(ValueError, match="n_estimators"):
            GradientBoostingClassifier(n_estimators=0)
        with pytest.raises(ValueError, match="learning_rate"):
            GradientBoostingClassifier(learning_rate=0)

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            GradientBoostingClassifier().predict(np.zeros((1, 2)))

    def test_single_class_label_with_n_classes(self):
        # All labels 0 but n_classes=2: base score saturates, still predicts 0.
        X = np.random.default_rng(0).normal(size=(30, 2))
        y = np.zeros(30, dtype=np.int64)
        m = GradientBoostingClassifier(n_estimators=3).fit(X, y, n_classes=2)
        assert (m.predict(X) == 0).all()
