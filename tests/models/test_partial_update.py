"""Partial model refits honour each estimator's exactness contract.

KNN's training state IS its data, so ``partial_update`` is exactly a
refit (bit-identical probabilities).  GaussianNB folds exactly-merged
moments, so parameters agree to floating-point rounding and predictions
agree wherever posteriors are not exactly tied (randomized workloads:
everywhere).  OnlineLogisticRegression's contract is different in kind:
``partial_update`` is bit-identical to *continuing online training*
(``partial_fit``) — deterministic, order-dependent — and explicitly NOT
a from-scratch refit.
"""

import numpy as np
import pytest

from repro.data import Dataset, Table, make_schema
from repro.models import GaussianNB, KNeighborsClassifier
from repro.models.base import TableModel
from repro.models.online import OnlineLogisticRegression


def random_xy(n, seed, d=6, n_classes=3):
    rng = np.random.default_rng(seed)
    return rng.normal(size=(n, d)), rng.integers(0, n_classes, size=n)


class TestKNNPartialUpdate:
    @pytest.mark.parametrize("algorithm", ["ball_tree", "brute"])
    @pytest.mark.parametrize("seed", [0, 1])
    def test_bit_identical_to_fresh_fit(self, algorithm, seed):
        X, y = random_xy(300, seed)
        Xq, _ = random_xy(120, seed + 10)
        inc = KNeighborsClassifier(k=5, algorithm=algorithm).fit(X, y, n_classes=3)
        parts_X, parts_y = [X], [y]
        for step in range(4):
            Xb, yb = random_xy(20 + 7 * step, seed + 20 + step)
            inc.partial_update(Xb, yb)
            parts_X.append(Xb)
            parts_y.append(yb)
            full = KNeighborsClassifier(k=5, algorithm=algorithm).fit(
                np.concatenate(parts_X), np.concatenate(parts_y), n_classes=3
            )
            np.testing.assert_array_equal(
                inc.predict_proba(Xq), full.predict_proba(Xq)
            )

    def test_rollback_restores_fit(self):
        X, y = random_xy(200, 3)
        Xq, _ = random_xy(50, 4)
        inc = KNeighborsClassifier(k=3).fit(X, y, n_classes=3)
        token = inc.checkpoint()
        for _ in range(2):  # two rejected candidates in a row
            Xb, yb = random_xy(31, 5)
            inc.partial_update(Xb, yb)
            inc.rollback(token)
        base = KNeighborsClassifier(k=3).fit(X, y, n_classes=3)
        np.testing.assert_array_equal(inc.predict_proba(Xq), base.predict_proba(Xq))

    def test_rejects_out_of_range_labels(self):
        X, y = random_xy(50, 6)
        model = KNeighborsClassifier().fit(X, y, n_classes=3)
        with pytest.raises(ValueError, match="codes"):
            model.partial_update(X[:2], np.array([3, 0]))


class TestGaussianNBPartialUpdate:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_matches_fresh_fit(self, seed):
        X, y = random_xy(400, seed)
        Xq, _ = random_xy(150, seed + 10)
        inc = GaussianNB().fit(X, y, n_classes=3)
        parts_X, parts_y = [X], [y]
        for step in range(3):
            Xb, yb = random_xy(25, seed + 30 + step)
            inc.partial_update(Xb, yb)
            parts_X.append(Xb)
            parts_y.append(yb)
        full = GaussianNB().fit(
            np.concatenate(parts_X), np.concatenate(parts_y), n_classes=3
        )
        np.testing.assert_allclose(inc.theta_, full.theta_, rtol=1e-9, atol=1e-12)
        np.testing.assert_allclose(inc.var_, full.var_, rtol=1e-9, atol=1e-12)
        np.testing.assert_allclose(inc.class_log_prior_, full.class_log_prior_)
        np.testing.assert_array_equal(inc.predict(Xq), full.predict(Xq))

    def test_class_absent_then_appearing(self):
        rng = np.random.default_rng(5)
        X = rng.normal(size=(100, 4))
        y = rng.integers(0, 2, size=100)  # class 2 absent at fit time
        inc = GaussianNB().fit(X, y, n_classes=3)
        Xb = rng.normal(loc=3.0, size=(30, 4))
        yb = np.full(30, 2, dtype=np.int64)
        inc.partial_update(Xb, yb)
        full = GaussianNB().fit(
            np.concatenate([X, Xb]), np.concatenate([y, yb]), n_classes=3
        )
        np.testing.assert_allclose(inc.theta_, full.theta_, rtol=1e-9, atol=1e-12)
        np.testing.assert_allclose(inc.var_, full.var_, rtol=1e-9, atol=1e-12)
        Xq = rng.normal(size=(80, 4))
        np.testing.assert_array_equal(inc.predict(Xq), full.predict(Xq))

    def test_rollback_restores_exactly(self):
        X, y = random_xy(120, 7)
        inc = GaussianNB().fit(X, y, n_classes=3)
        token = inc.checkpoint()
        Xb, yb = random_xy(15, 8)
        inc.partial_update(Xb, yb)
        inc.rollback(token)
        base = GaussianNB().fit(X, y, n_classes=3)
        np.testing.assert_array_equal(inc.theta_, base.theta_)
        np.testing.assert_array_equal(inc.var_, base.var_)
        np.testing.assert_array_equal(inc.class_log_prior_, base.class_log_prior_)


class TestOnlineLRPartialUpdate:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_bit_identical_to_partial_fit_continuation(self, seed):
        """The contract: partial_update == continuing online training."""
        X, y = random_xy(300, seed)
        Xq, _ = random_xy(100, seed + 10)
        served = OnlineLogisticRegression(random_state=seed).fit(X, y, n_classes=3)
        reference = served.clone_state()
        for step in range(4):
            Xb, yb = random_xy(20 + 5 * step, seed + 20 + step)
            served.partial_update(Xb, yb)
            reference.partial_fit(Xb, yb, n_classes=3)
            np.testing.assert_array_equal(served.W_, reference.W_)
            np.testing.assert_array_equal(served._grad_sq, reference._grad_sq)
        np.testing.assert_array_equal(
            served.predict_proba(Xq), reference.predict_proba(Xq)
        )

    def test_deterministic_and_rng_free(self):
        """No RNG is consumed: two updates from the same state agree."""
        X, y = random_xy(200, 3)
        Xb, yb = random_xy(40, 4)
        a = OnlineLogisticRegression(shuffle=True).fit(X, y, n_classes=3)
        b = a.clone_state()
        a.partial_update(Xb, yb)
        b.partial_update(Xb, yb)
        np.testing.assert_array_equal(a.W_, b.W_)

    def test_not_a_from_scratch_refit(self):
        """SGD is path-dependent: the contract is continuation, not refit."""
        X, y = random_xy(300, 5)
        Xb, yb = random_xy(60, 6)
        inc = OnlineLogisticRegression(random_state=0).fit(X, y, n_classes=3)
        inc.partial_update(Xb, yb)
        full = OnlineLogisticRegression(random_state=0).fit(
            np.concatenate([X, Xb]), np.concatenate([y, yb]), n_classes=3
        )
        assert not np.array_equal(inc.W_, full.W_)

    def test_rollback_restores_exactly_and_token_is_reusable(self):
        X, y = random_xy(150, 7)
        inc = OnlineLogisticRegression().fit(X, y, n_classes=3)
        W0, g0 = inc.W_.copy(), inc._grad_sq.copy()
        token = inc.checkpoint()
        for _ in range(2):  # two rejected candidates against one token
            Xb, yb = random_xy(25, 8)
            inc.partial_update(Xb, yb)
            inc.rollback(token)
        np.testing.assert_array_equal(inc.W_, W0)
        np.testing.assert_array_equal(inc._grad_sq, g0)

    def test_unfitted_raises(self):
        model = OnlineLogisticRegression()
        with pytest.raises(RuntimeError, match="not fitted"):
            model.partial_update(*random_xy(5, 9))
        with pytest.raises(RuntimeError, match="not fitted"):
            model.checkpoint()


SCHEMA = make_schema(numeric=["a", "b"], categorical={"c": ("x", "y", "z")})


def table_dataset(n, seed):
    rng = np.random.default_rng(seed)
    table = Table(
        SCHEMA,
        {
            "a": rng.normal(size=n),
            "b": rng.uniform(size=n),
            "c": rng.integers(0, 3, size=n),
        },
    )
    return Dataset(table, rng.integers(0, 2, size=n), ("neg", "pos"))


class TestTableModelPartialUpdate:
    def test_knn_exact_through_encoder(self):
        base, delta = table_dataset(250, 0), table_dataset(30, 1)
        inc = TableModel(KNeighborsClassifier(k=5), standardize=False).fit(base)
        assert inc.supports_partial_update
        inc.partial_update(delta)
        full_ds = Dataset.concat([base, delta])
        full = TableModel(KNeighborsClassifier(k=5), standardize=False).fit(full_ds)
        np.testing.assert_array_equal(
            inc.predict_proba(full_ds.X), full.predict_proba(full_ds.X)
        )

    def test_standardized_encoder_falls_back(self):
        """Scaler statistics are dataset-global, so deltas must refit."""
        model = TableModel(KNeighborsClassifier(k=5), standardize=True).fit(
            table_dataset(100, 2)
        )
        assert not model.supports_partial_update
        with pytest.raises(RuntimeError, match="partial-update"):
            model.partial_update(table_dataset(5, 3))

    def test_unsupported_estimator_falls_back(self):
        from repro.models import LogisticRegression

        model = TableModel(LogisticRegression(max_iter=50), standardize=False).fit(
            table_dataset(100, 4)
        )
        assert not model.supports_partial_update

    def test_constant_class_falls_back(self):
        ds = table_dataset(60, 5)
        ds = Dataset(ds.X, np.zeros(ds.n, dtype=np.int64), ds.label_names)
        model = TableModel(KNeighborsClassifier(k=3), standardize=False).fit(ds)
        assert not model.supports_partial_update

    def test_online_lr_continuation_through_encoder(self):
        base, delta = table_dataset(250, 10), table_dataset(30, 11)
        inc = TableModel(
            OnlineLogisticRegression(random_state=0), standardize=False
        ).fit(base)
        assert inc.supports_partial_update
        ref = TableModel(
            OnlineLogisticRegression(random_state=0), standardize=False
        ).fit(base)
        token = inc.checkpoint()
        inc.partial_update(delta)
        ref.estimator.partial_fit(
            ref.encoder_.transform(delta.X), delta.y, n_classes=base.n_classes
        )
        np.testing.assert_array_equal(inc.estimator.W_, ref.estimator.W_)
        inc.rollback(token)
        np.testing.assert_array_equal(
            inc.estimator.W_, TableModel(
                OnlineLogisticRegression(random_state=0), standardize=False
            ).fit(base).estimator.W_,
        )

    def test_checkpoint_rollback_through_table_model(self):
        base = table_dataset(200, 6)
        inc = TableModel(GaussianNB(), standardize=False).fit(base)
        token = inc.checkpoint()
        inc.partial_update(table_dataset(20, 7))
        inc.rollback(token)
        fresh = TableModel(GaussianNB(), standardize=False).fit(base)
        Xq = table_dataset(40, 8).X
        np.testing.assert_array_equal(inc.predict(Xq), fresh.predict(Xq))