"""Tests for logistic regression."""

import numpy as np
import pytest

from repro.models import LogisticRegression, softmax


def _separable(n=300, seed=0):
    rng = np.random.default_rng(seed)
    X = rng.normal(size=(n, 3))
    y = (X[:, 0] + 0.5 * X[:, 1] > 0).astype(np.int64)
    return X, y


class TestSoftmax:
    def test_rows_sum_to_one(self):
        Z = np.random.default_rng(0).normal(size=(10, 4))
        P = softmax(Z.copy())
        np.testing.assert_allclose(P.sum(axis=1), 1.0)

    def test_stable_with_large_logits(self):
        P = softmax(np.array([[1000.0, 0.0]]))
        assert np.isfinite(P).all()
        assert P[0, 0] == pytest.approx(1.0)

    def test_invariant_to_shift(self):
        Z = np.array([[1.0, 2.0, 3.0]])
        np.testing.assert_allclose(softmax(Z.copy()), softmax(Z + 100.0))


class TestLogisticRegression:
    def test_fits_separable_binary(self):
        X, y = _separable()
        m = LogisticRegression().fit(X, y)
        assert (m.predict(X) == y).mean() > 0.95

    def test_predict_proba_shape_and_sum(self):
        X, y = _separable()
        m = LogisticRegression().fit(X, y)
        P = m.predict_proba(X)
        assert P.shape == (X.shape[0], 2)
        np.testing.assert_allclose(P.sum(axis=1), 1.0)

    def test_multiclass(self):
        rng = np.random.default_rng(1)
        X = rng.normal(size=(400, 2))
        y = np.digitize(X[:, 0], [-0.5, 0.5]).astype(np.int64)
        m = LogisticRegression().fit(X, y, n_classes=3)
        assert (m.predict(X) == y).mean() > 0.85

    def test_n_classes_respected_when_class_absent(self):
        X, y = _separable()
        m = LogisticRegression().fit(X, y, n_classes=4)
        assert m.predict_proba(X).shape[1] == 4

    def test_deterministic(self):
        X, y = _separable()
        a = LogisticRegression().fit(X, y).coef_
        b = LogisticRegression().fit(X, y).coef_
        np.testing.assert_allclose(a, b)

    def test_regularization_shrinks_weights(self):
        X, y = _separable()
        big = LogisticRegression(C=100.0).fit(X, y)
        small = LogisticRegression(C=0.01).fit(X, y)
        assert np.abs(small.coef_).sum() < np.abs(big.coef_).sum()

    def test_invalid_c_raises(self):
        with pytest.raises(ValueError, match="C must be positive"):
            LogisticRegression(C=0.0)

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            LogisticRegression().predict(np.zeros((1, 2)))

    def test_mismatched_rows_raise(self):
        with pytest.raises(ValueError, match="different numbers of rows"):
            LogisticRegression().fit(np.zeros((3, 2)), np.zeros(2, dtype=int))

    def test_single_class_requires_two(self):
        with pytest.raises(ValueError, match="at least 2"):
            LogisticRegression().fit(np.zeros((3, 2)), np.zeros(3, dtype=int))
