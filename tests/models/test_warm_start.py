"""Warm-started batch-LR refits (opt-in, off on the parity-pinned path).

FROTE's successive training sets differ by one accepted batch, so
seeding each refit's optimizer with the previous coefficients shortens
the L-BFGS iterate path substantially.  The default path must keep
cold-starting — zero-init, bit-identical across calls — so the paper
parity pins are untouched.
"""

from __future__ import annotations

import numpy as np

from repro.models import LogisticRegression, make_algorithm
from repro.models import algorithm as named_algorithm

from conftest import make_tiny_dataset

DATASET = make_tiny_dataset(n=200, seed=21)


class TestEstimatorSeeding:
    def fit_xy(self, seed=0, n=300, d=4):
        rng = np.random.default_rng(seed)
        X = rng.normal(size=(n, d))
        y = (X @ rng.normal(size=d) + 0.1 * rng.normal(size=n) > 0).astype(int)
        return X, y

    def test_warm_start_from_shortens_iterate_path(self):
        X, y = self.fit_xy()
        cold = LogisticRegression().fit(X, y, n_classes=2)
        assert cold.n_iter_ > 1
        warm = LogisticRegression()
        warm.warm_start_from(cold.coef_, cold.intercept_)
        warm.fit(X, y, n_classes=2)
        # Seeded at the optimum of the same problem: near-immediate stop.
        assert warm.n_iter_ < cold.n_iter_
        np.testing.assert_allclose(warm.coef_, cold.coef_, atol=1e-4)

    def test_shape_mismatch_falls_back_to_zero_init(self):
        X, y = self.fit_xy()
        cold = LogisticRegression().fit(X, y, n_classes=2)
        seeded = LogisticRegression()
        seeded.warm_start_from(np.zeros((7, 2)), np.zeros(2))  # wrong d
        seeded.fit(X, y, n_classes=2)
        np.testing.assert_array_equal(seeded.coef_, cold.coef_)
        assert seeded.n_iter_ == cold.n_iter_

    def test_default_fit_is_deterministic_zero_init(self):
        X, y = self.fit_xy()
        a = LogisticRegression().fit(X, y, n_classes=2)
        b = LogisticRegression().fit(X, y, n_classes=2)
        np.testing.assert_array_equal(a.coef_, b.coef_)
        np.testing.assert_array_equal(a.intercept_, b.intercept_)
        assert a.n_iter_ == b.n_iter_


class TestAlgorithmWrapper:
    def test_warm_algorithm_reuses_previous_coefficients(self):
        calls = []

        def factory():
            est = LogisticRegression()
            calls.append(est)
            return est

        algo = make_algorithm(factory, warm_start=True)
        algo(DATASET)
        algo(DATASET)  # identical dataset -> warm refit converges at once
        assert calls[0].n_iter_ > 1
        assert calls[1].n_iter_ < calls[0].n_iter_

    def test_cold_algorithm_is_bit_identical_across_calls(self):
        calls = []

        def factory():
            est = LogisticRegression()
            calls.append(est)
            return est

        algo = make_algorithm(factory)  # default: no warm start
        algo(DATASET)
        algo(DATASET)
        np.testing.assert_array_equal(calls[0].coef_, calls[1].coef_)
        assert calls[0].n_iter_ == calls[1].n_iter_

    def test_fresh_estimator_per_fit(self):
        calls = []

        def factory():
            est = LogisticRegression()
            calls.append(est)
            return est

        algo = make_algorithm(factory, warm_start=True)
        algo(DATASET)
        algo(DATASET)
        assert calls[0] is not calls[1]

    def test_named_algorithm_accepts_warm_start(self):
        cold = named_algorithm("LR")
        warm = named_algorithm("LR", warm_start=True)
        a, b = cold(DATASET), warm(DATASET)
        # First warm fit has no previous coefficients: same zero init.
        np.testing.assert_array_equal(
            a.predict(DATASET.X), b.predict(DATASET.X)
        )

    def test_warm_refit_agrees_within_tolerance(self):
        """Convex objective: warm and cold land on the same optimum."""
        warm_algo = make_algorithm(LogisticRegression, warm_start=True)
        warm_algo(DATASET)
        warm_model = warm_algo(DATASET)
        cold_model = make_algorithm(LogisticRegression)(DATASET)
        np.testing.assert_allclose(
            warm_model.predict_proba(DATASET.X),
            cold_model.predict_proba(DATASET.X),
            atol=1e-4,
        )
