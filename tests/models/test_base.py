"""Tests for TableModel and the training-algorithm wrapper."""

import numpy as np
import pytest

from repro.data import Dataset
from repro.models import (
    LogisticRegression,
    TableModel,
    make_algorithm,
    paper_algorithm,
    predict_from_proba,
)
from repro.models import PAPER_MODELS

from tests.conftest import make_tiny_dataset


class TestPredictFromProba:
    def test_argmax(self):
        proba = np.array([[0.2, 0.8], [0.9, 0.1]])
        np.testing.assert_array_equal(predict_from_proba(proba), [1, 0])

    def test_dtype(self):
        assert predict_from_proba(np.array([[1.0, 0.0]])).dtype == np.int64


class TestTableModel:
    def test_fit_predict(self, mixed_dataset):
        m = TableModel(LogisticRegression()).fit(mixed_dataset)
        pred = m.predict(mixed_dataset.X)
        assert (pred == mixed_dataset.y).mean() > 0.8

    def test_proba_shape(self, mixed_dataset):
        m = TableModel(LogisticRegression()).fit(mixed_dataset)
        P = m.predict_proba(mixed_dataset.X)
        assert P.shape == (mixed_dataset.n, 2)

    def test_unfitted_raises(self, mixed_dataset):
        with pytest.raises(RuntimeError):
            TableModel(LogisticRegression()).predict(mixed_dataset.X)

    def test_single_class_training_set_constant(self):
        ds = make_tiny_dataset(40)
        only_pos = ds.loc_mask(ds.y == 1)
        m = TableModel(LogisticRegression()).fit(only_pos)
        pred = m.predict(ds.X)
        assert (pred == 1).all()

    def test_constant_model_proba(self):
        ds = make_tiny_dataset(40)
        only_neg = ds.loc_mask(ds.y == 0)
        m = TableModel(LogisticRegression()).fit(only_neg)
        P = m.predict_proba(ds.X)
        np.testing.assert_allclose(P[:, 0], 1.0)

    def test_n_classes_from_label_names(self):
        ds = make_tiny_dataset(60)
        # Class codes only {0, 1}, but declare a 3-class problem.
        ds3 = Dataset(ds.X, ds.y, ("a", "b", "c"))
        m = TableModel(LogisticRegression()).fit(ds3)
        assert m.predict_proba(ds.X).shape[1] == 3


class TestMakeAlgorithm:
    def test_returns_fresh_models(self):
        ds = make_tiny_dataset()
        alg = make_algorithm(lambda: LogisticRegression())
        m1, m2 = alg(ds), alg(ds)
        assert m1 is not m2
        assert m1.estimator is not m2.estimator

    def test_predictions_work(self):
        ds = make_tiny_dataset()
        alg = make_algorithm(lambda: LogisticRegression())
        assert (alg(ds).predict(ds.X) == ds.y).mean() > 0.8


class TestPaperAlgorithms:
    @pytest.mark.parametrize("name", sorted(PAPER_MODELS))
    def test_each_paper_model_trains(self, name):
        ds = make_tiny_dataset(80)
        model = paper_algorithm(name)(ds)
        pred = model.predict(ds.X)
        assert pred.shape == (ds.n,)
        assert (pred == ds.y).mean() > 0.6

    def test_unknown_name_raises(self):
        with pytest.raises(KeyError, match="unknown model"):
            paper_algorithm("XGB")
