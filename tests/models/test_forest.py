"""Tests for the random forest."""

import numpy as np
import pytest

from repro.models import RandomForestClassifier


def _data(n=300, seed=0):
    rng = np.random.default_rng(seed)
    X = rng.normal(size=(n, 4))
    y = (X[:, 0] + X[:, 1] > 0).astype(np.int64)
    return X, y


class TestRandomForest:
    def test_learns_signal(self):
        X, y = _data()
        m = RandomForestClassifier(n_estimators=20, max_depth=4, random_state=0).fit(X, y)
        assert (m.predict(X) == y).mean() > 0.85

    def test_proba_shape(self):
        X, y = _data()
        m = RandomForestClassifier(n_estimators=5, random_state=0).fit(X, y)
        P = m.predict_proba(X)
        assert P.shape == (X.shape[0], 2)
        np.testing.assert_allclose(P.sum(axis=1), 1.0)

    def test_reproducible_with_seed(self):
        X, y = _data()
        a = RandomForestClassifier(n_estimators=8, random_state=42).fit(X, y).predict(X)
        b = RandomForestClassifier(n_estimators=8, random_state=42).fit(X, y).predict(X)
        np.testing.assert_array_equal(a, b)

    def test_different_seeds_differ(self):
        X, y = _data()
        pa = RandomForestClassifier(n_estimators=3, random_state=0).fit(X, y).predict_proba(X)
        pb = RandomForestClassifier(n_estimators=3, random_state=1).fit(X, y).predict_proba(X)
        assert not np.allclose(pa, pb)

    def test_n_estimators_trees_built(self):
        X, y = _data(100)
        m = RandomForestClassifier(n_estimators=7, random_state=0).fit(X, y)
        assert len(m.trees_) == 7

    def test_no_bootstrap(self):
        X, y = _data(100)
        m = RandomForestClassifier(n_estimators=3, bootstrap=False, random_state=0).fit(X, y)
        assert (m.predict(X) == y).mean() > 0.8

    def test_multiclass(self):
        rng = np.random.default_rng(5)
        X = rng.normal(size=(400, 3))
        y = np.digitize(X[:, 0], [-0.6, 0.6]).astype(np.int64)
        m = RandomForestClassifier(n_estimators=25, max_depth=5, random_state=0)
        m.fit(X, y, n_classes=3)
        assert (m.predict(X) == y).mean() > 0.8

    def test_invalid_n_estimators(self):
        with pytest.raises(ValueError, match="n_estimators"):
            RandomForestClassifier(n_estimators=0)

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            RandomForestClassifier().predict(np.zeros((1, 2)))

    def test_paper_config_shallow_trees(self):
        X, y = _data()
        m = RandomForestClassifier(max_depth=3, random_state=0).fit(X, y)
        assert all(t.depth <= 3 for t in m.trees_)
