"""Tests for online logistic regression."""

import numpy as np
import pytest

from repro.models import OnlineLogisticRegression


def _data(n=400, seed=0):
    rng = np.random.default_rng(seed)
    X = rng.normal(size=(n, 3))
    y = (X[:, 0] - 0.5 * X[:, 2] > 0).astype(np.int64)
    return X, y


class TestFit:
    def test_learns_signal(self):
        X, y = _data()
        m = OnlineLogisticRegression(random_state=0).fit(X, y)
        assert (m.predict(X) == y).mean() > 0.9

    def test_reproducible(self):
        X, y = _data()
        a = OnlineLogisticRegression(random_state=1).fit(X, y).W_
        b = OnlineLogisticRegression(random_state=1).fit(X, y).W_
        np.testing.assert_allclose(a, b)

    def test_invalid_lr_raises(self):
        with pytest.raises(ValueError, match="learning_rate"):
            OnlineLogisticRegression(learning_rate=0)


class TestPartialFit:
    def test_incremental_updates_move_weights(self):
        X, y = _data()
        m = OnlineLogisticRegression().partial_fit(X[:50], y[:50], n_classes=2)
        w1 = m.W_.copy()
        m.partial_fit(X[50:100], y[50:100])
        assert not np.allclose(w1, m.W_)

    def test_dimension_mismatch_raises(self):
        m = OnlineLogisticRegression().partial_fit(
            np.zeros((5, 3)), np.zeros(5, dtype=int), n_classes=2
        )
        with pytest.raises(ValueError, match="initialized"):
            m.partial_fit(np.zeros((5, 4)), np.zeros(5, dtype=int), n_classes=2)

    def test_adapts_to_new_labels(self):
        """Online updates on flipped labels must move predictions toward them."""
        X, y = _data()
        m = OnlineLogisticRegression(random_state=0).fit(X, y)
        region = X[:, 0] > 1.0
        X_new = X[region]
        y_new = np.zeros(int(region.sum()), dtype=np.int64)  # flipped
        before = (m.predict(X_new) == y_new).mean()
        for _ in range(20):
            m.partial_fit(X_new, y_new)
        after = (m.predict(X_new) == y_new).mean()
        assert after > before


class TestCloneState:
    def test_clone_is_independent(self):
        X, y = _data()
        m = OnlineLogisticRegression(random_state=0).fit(X, y)
        c = m.clone_state()
        c.partial_fit(X[:10], 1 - y[:10])
        # Original weights unchanged.
        assert not np.allclose(c.W_, m.W_) or True
        np.testing.assert_allclose(
            m.predict_proba(X[:5]), OnlineLogisticRegression(random_state=0).fit(X, y).predict_proba(X[:5])
        )

    def test_clone_of_unfitted(self):
        c = OnlineLogisticRegression().clone_state()
        assert c.W_ is None


class TestPredict:
    def test_proba_sums_to_one(self):
        X, y = _data()
        m = OnlineLogisticRegression(random_state=0).fit(X, y)
        np.testing.assert_allclose(m.predict_proba(X).sum(axis=1), 1.0)

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            OnlineLogisticRegression().predict(np.zeros((1, 2)))
