"""Shared fixtures: small schemas, tables, datasets, and rule sets."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data import Dataset, Table, make_schema
from repro.rules import Clause, FeedbackRule, FeedbackRuleSet, Predicate, clause


@pytest.fixture
def mixed_schema():
    """Two numeric + two categorical columns."""
    return make_schema(
        numeric=["age", "income"],
        categorical={
            "marital": ("single", "married", "divorced"),
            "color": ("red", "green", "blue"),
        },
    )


@pytest.fixture
def mixed_table(mixed_schema):
    """Deterministic 200-row mixed-type table."""
    rng = np.random.default_rng(7)
    n = 200
    return Table(
        mixed_schema,
        {
            "age": rng.uniform(18, 80, n),
            "income": rng.uniform(10, 200, n),
            "marital": rng.integers(0, 3, n),
            "color": rng.integers(0, 3, n),
        },
    )


@pytest.fixture
def mixed_dataset(mixed_table):
    """Binary dataset over mixed_table with learnable structure."""
    age = mixed_table.column("age")
    income = mixed_table.column("income")
    rng = np.random.default_rng(13)
    y = ((age < 40) & (income > 100)).astype(np.int64)
    noise = rng.uniform(size=mixed_table.n_rows) < 0.05
    y[noise] = 1 - y[noise]
    return Dataset(mixed_table, y, ("deny", "approve"))


@pytest.fixture
def young_rule(mixed_dataset):
    """Deterministic rule: age < 35 -> approve."""
    return FeedbackRule.deterministic(
        clause(Predicate("age", "<", 35.0)), 1, 2, name="young-approve"
    )


@pytest.fixture
def single_rule_frs(young_rule):
    return FeedbackRuleSet((young_rule,))


@pytest.fixture
def two_rule_frs(mixed_dataset):
    r1 = FeedbackRule.deterministic(
        clause(Predicate("age", "<", 30.0)), 1, 2, name="r1"
    )
    r2 = FeedbackRule.deterministic(
        clause(Predicate("income", ">", 150.0), Predicate("age", ">=", 30.0)),
        0,
        2,
        name="r2",
    )
    return FeedbackRuleSet((r1, r2))


def make_tiny_dataset(n: int = 60, seed: int = 0) -> Dataset:
    """Standalone helper for tests that need their own dataset."""
    schema = make_schema(
        numeric=["x1", "x2"],
        categorical={"c1": ("a", "b")},
    )
    rng = np.random.default_rng(seed)
    t = Table(
        schema,
        {
            "x1": rng.normal(0, 1, n),
            "x2": rng.normal(0, 1, n),
            "c1": rng.integers(0, 2, n),
        },
    )
    y = (t.column("x1") + 0.5 * t.column("x2") > 0).astype(np.int64)
    return Dataset(t, y, ("neg", "pos"))
