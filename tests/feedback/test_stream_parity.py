"""The streamed-parity acceptance contract plus journaled rule timelines.

* **Streamed-append parity** — a run that receives an append-only rule
  through a ``FeedbackSource`` at iteration *k* is bit-identical (X, y,
  evaluations, history) to a run where the rule was present from the
  start but scheduled to activate at iteration *k*
  (``with_scheduled_rules``) — rules applied at iteration boundaries
  never perturb the RNG stream or the committed prefix.
* **Journal reconstruction** — feedback events are journaled as
  ``ruleset-delta`` records, so ``SessionReplay.rule_timeline()`` and
  crash-resume rebuild the run's rule timeline from the journal alone.
"""

from __future__ import annotations

import numpy as np
import pytest

import repro
from repro.feedback import (
    QueueFeedbackSource,
    RuleProposal,
    RuleVerdict,
    ScriptedFeedbackSource,
)
from repro.journal import SessionReplay
from repro.rules import FeedbackRule, Predicate, clause

from conftest import make_tiny_dataset

DATASET = make_tiny_dataset(n=150, seed=11)

BASE = FeedbackRule.deterministic(
    clause(Predicate("x1", "<", -0.5)), 1, 2, name="base"
)
# Disjoint from BASE on x1 -> classified append whenever it arrives.
LATE = FeedbackRule.deterministic(
    clause(Predicate("x1", ">", 0.8)), 0, 2, name="late"
)
# Overlaps BASE with the opposite label -> carve-out rebuild.
CONTRA = FeedbackRule.deterministic(
    clause(Predicate("x1", "<", -0.9)), 0, 2, name="contra"
)


def session(**configure):
    defaults = dict(tau=6, q=0.5, eta=8, random_state=7, mod_strategy="none")
    defaults.update(configure)
    return (
        repro.edit(DATASET)
        .with_rules(BASE)
        .with_algorithm("LR")
        .configure(**defaults)
    )


def assert_runs_identical(a, b):
    assert len(a.history) == len(b.history)
    for ra, rb in zip(a.history, b.history):
        assert ra == rb
    np.testing.assert_array_equal(a.dataset.y, b.dataset.y)
    for name in a.dataset.X.schema.names:
        np.testing.assert_array_equal(
            a.dataset.X.column(name), b.dataset.X.column(name)
        )
    assert a.final_evaluation.mra == b.final_evaluation.mra
    assert a.final_evaluation.f1_outside == b.final_evaluation.f1_outside


class TestStreamedAppendParity:
    def test_streamed_equals_scheduled(self):
        streamed = session().with_feedback(
            ScriptedFeedbackSource([(3, RuleProposal(LATE, source="expert"))])
        ).run()
        scheduled = session().with_scheduled_rules(3, LATE).run()
        assert_runs_identical(streamed, scheduled)

    def test_streamed_differs_from_batch_start(self):
        """The rule genuinely changes the run once it lands."""
        streamed = session().with_feedback(
            ScriptedFeedbackSource([(3, LATE)])
        ).run()
        batch = session().with_rules(LATE).run()
        assert len(streamed.frs) == len(batch.frs) == 2
        # With the rule active from iteration 0, the loop generates for
        # it immediately — the per-iteration records cannot all coincide.
        assert streamed.history != batch.history

    def test_prefix_before_delivery_is_untouched(self):
        plain = session().run()
        streamed = session().with_feedback(
            ScriptedFeedbackSource([(4, LATE)])
        ).run()
        assert streamed.history[:4] == plain.history[:4]

    def test_rerun_is_deterministic(self):
        spec = session().with_feedback(ScriptedFeedbackSource([(3, LATE)]))
        assert_runs_identical(spec.run(), spec.run())

    def test_rebuild_delivery_is_deterministic(self):
        spec = session().with_feedback(ScriptedFeedbackSource([(2, CONTRA)]))
        a, b = spec.run(), spec.run()
        assert_runs_identical(a, b)
        assert len(a.frs) == 2  # carved pair, no duplicate exceptions

    def test_empty_start_session(self):
        """A session may start ruleless and receive everything via stream."""
        result = (
            repro.edit(DATASET)
            .with_algorithm("LR")
            .configure(tau=5, q=0.5, eta=8, random_state=7, mod_strategy="none")
            .with_feedback(ScriptedFeedbackSource([(1, BASE)]))
            .run()
        )
        assert len(result.frs) == 1
        assert result.iterations == 5

    def test_ruleless_session_without_feedback_still_errors(self):
        with pytest.raises(ValueError, match="feedback"):
            repro.edit(DATASET).with_algorithm("LR").run()


class TestAggregationGating:
    def test_unapproved_rule_never_lands(self):
        src = ScriptedFeedbackSource(
            [(2, RuleProposal(LATE, source="expert")),
             (2, RuleVerdict(RuleProposal(LATE).proposal_id, approve=False,
                             source="reviewer"))]
        )
        result = session().with_feedback(
            src, policy="unanimous", min_votes=2
        ).run()
        assert len(result.frs) == 1  # rejected before quota

    def test_quorum_delivery_across_iterations(self):
        pid = RuleProposal(LATE).proposal_id
        src = ScriptedFeedbackSource(
            [(1, RuleProposal(LATE, source="alice")),
             (3, RuleVerdict(pid, approve=True, source="bob"))]
        )
        result = session().with_feedback(src, policy="quorum", quorum=2).run()
        assert len(result.frs) == 2
        # Quorum reached at iteration 3 -> identical to scheduling there.
        scheduled = session().with_scheduled_rules(3, LATE).run()
        assert_runs_identical(result, scheduled)


class TestJournaledFeedback:
    def make_journaled(self, tmp_path, **kwargs):
        src = ScriptedFeedbackSource([(3, RuleProposal(LATE, source="expert"))])
        return session(
            journal_dir=str(tmp_path), journal_name="fb", journal_resume=True,
            **kwargs,
        ).with_feedback(src)

    def test_rule_timeline_from_journal_alone(self, tmp_path):
        self.make_journaled(tmp_path).run()
        replay = SessionReplay.load(tmp_path / "fb")
        timeline = replay.rule_timeline()
        assert len(timeline) == 1
        row = timeline[0]
        assert row["iteration"] == 3
        assert row["kind"] == "append"
        assert row["rules"] == ["late"]
        assert row["n_rules"] == 2
        assert "expert" in row["provenance"]
        assert replay.summary()["ruleset_deltas"] == 1

    def test_fast_forward_resume_matches_uninterrupted(self, tmp_path):
        first = self.make_journaled(tmp_path).run()
        again = self.make_journaled(tmp_path).run()  # full fast-forward
        assert_runs_identical(first, again)
        assert len(again.frs) == 2
        replay = SessionReplay.load(tmp_path / "fb")
        assert replay.summary()["resumes"] == 1
        # The timeline is content-deduped across the resume boundary.
        assert len(replay.rule_timeline()) == 1

    def test_resumed_run_does_not_reapply_rules(self, tmp_path):
        self.make_journaled(tmp_path).run()
        again = self.make_journaled(tmp_path).run()
        # One append over the single base rule, exactly once.
        assert len(again.frs) == 2
        assert [r.name for r in again.frs] == ["base", "late"]


class TestCrashResumeWithFeedback:
    """Interrupted journaled runs rebuild the rule timeline on resume."""

    def crashing_session(self, tmp_path, *, fail_at_fit):
        from repro.models import paper_algorithm

        base_algorithm = paper_algorithm("LR")
        fits = {"n": 0}

        def algorithm(dataset):
            fits["n"] += 1
            if fits["n"] == fail_at_fit:
                raise RuntimeError("simulated crash")
            return base_algorithm(dataset)

        src = ScriptedFeedbackSource([(3, RuleProposal(LATE, source="expert"))])
        return (
            session(
                journal_dir=str(tmp_path), journal_name="crash",
                journal_resume=True,
            )
            .with_algorithm(algorithm)
            .with_feedback(src)
        )

    def uninterrupted(self, tmp_path):
        src = ScriptedFeedbackSource([(3, RuleProposal(LATE, source="expert"))])
        return session(
            journal_dir=str(tmp_path), journal_name="full", journal_resume=True,
        ).with_feedback(src).run()

    @pytest.mark.parametrize(
        "fail_at_fit, crash_phase",
        [
            # Fit k happens in iteration k-2 (setup fit + one candidate
            # fit per iteration).  Failing at fit 5 dies inside iteration
            # 3 — *after* the boundary applied the delta but before the
            # iteration committed: the delta is a tail record at resume.
            (5, "tail"),
            # Failing at fit 7 dies inside iteration 5, with the delta's
            # iteration 3 already committed: the committed-prefix path.
            (7, "committed"),
        ],
    )
    def test_resume_bit_identical_and_timeline_deduped(
        self, tmp_path, fail_at_fit, crash_phase
    ):
        want = self.uninterrupted(tmp_path)

        with pytest.raises(RuntimeError, match="simulated crash"):
            self.crashing_session(tmp_path, fail_at_fit=fail_at_fit).run()
        partial = SessionReplay.load(tmp_path / "crash")
        committed = partial.committed()
        assert 0 < len(committed) < 6
        assert len(partial.rule_timeline()) == 1

        got = self.crashing_session(tmp_path, fail_at_fit=0).run()
        assert_runs_identical(want, got)
        assert [r.name for r in got.frs] == ["base", "late"]

        replay = SessionReplay.load(tmp_path / "crash")
        assert replay.summary()["resumes"] == 1
        assert replay.summary()["finished"]
        # Re-applied at resume, still one delta after content dedup.
        timeline = replay.rule_timeline()
        assert len(timeline) == 1
        assert timeline[0]["iteration"] == 3


class TestServedFeedParity:
    """A served session fed at a boundary replays to the same timeline."""

    def test_feed_journal_replays_rule_timeline(self, tmp_path):
        import asyncio

        from repro.serve import EditService

        async def main():
            async with EditService(journal_dir=str(tmp_path)) as service:
                handle = service.submit(session(), name="fed")
                handle.feed(RuleProposal(LATE, source="client"))
                return await handle.run_to_completion()

        result = asyncio.run(main())
        assert len(result.frs) == 2
        replay = SessionReplay.load(tmp_path / "fed")
        timeline = replay.rule_timeline()
        assert [row["rules"] for row in timeline] == [["late"]]
        assert timeline[0]["iteration"] == 0  # staged before setup
        assert replay.history() == result.history
