"""Ruleset deltas: classification, carve/mixture resolution, live apply."""

from __future__ import annotations

import numpy as np
import pytest

import repro
from repro.feedback import RuleSetDelta, apply_rule, classify_rule, extend_ruleset
from repro.feedback.delta import APPEND, REBUILD, delta_from_jsonable, delta_to_jsonable
from repro.rules import FeedbackRule, FeedbackRuleSet, Predicate, clause

from conftest import make_tiny_dataset


def rule(pred, label, name):
    return FeedbackRule.deterministic(clause(pred), label, 2, name=name)


@pytest.fixture
def schema(mixed_schema):
    return mixed_schema


@pytest.fixture
def base_frs():
    return FeedbackRuleSet((rule(Predicate("age", "<", 30.0), 1, "young"),))


class TestClassify:
    def test_disjoint_rule_appends(self, base_frs, schema):
        new = rule(Predicate("age", ">", 60.0), 0, "old")
        assert classify_rule(base_frs, new, schema) == APPEND

    def test_same_label_overlap_appends(self, base_frs, schema):
        new = rule(Predicate("age", "<", 25.0), 1, "younger")
        assert classify_rule(base_frs, new, schema) == APPEND

    def test_conflicting_overlap_rebuilds(self, base_frs, schema):
        new = rule(Predicate("age", "<", 25.0), 0, "contrarian")
        assert classify_rule(base_frs, new, schema) == REBUILD

    def test_overlap_on_other_attribute_rebuilds(self, base_frs, schema):
        # Clauses over different attributes are jointly satisfiable, so a
        # conflicting label means the coverage provably overlaps.
        new = rule(Predicate("income", ">", 150.0), 0, "rich")
        assert classify_rule(base_frs, new, schema) == REBUILD

    def test_classification_ignores_arrival_time(self, base_frs, schema):
        """Symbolic classification: same verdict whatever the FRS history."""
        new = rule(Predicate("age", ">", 80.0), 0, "eldest")
        first = classify_rule(base_frs, new, schema)
        # Apply a compatible append first; the verdict must not change.
        _, grown = extend_ruleset(
            base_frs, rule(Predicate("age", ">", 70.0), 0, "senior"), schema
        )
        assert classify_rule(grown, new, schema) == first == APPEND


class TestExtend:
    def test_append_keeps_existing_rules_bitwise(self, base_frs, schema):
        new = rule(Predicate("age", ">", 60.0), 0, "old")
        kind, out = extend_ruleset(base_frs, new, schema)
        assert kind == APPEND
        assert out.rules[:-1] == base_frs.rules
        assert out.rules[-1] is new

    def test_carve_installs_mutual_exceptions(self, base_frs, schema):
        new = rule(Predicate("age", "<", 25.0), 0, "contrarian")
        kind, out = extend_ruleset(base_frs, new, schema, resolve="carve")
        assert kind == REBUILD
        assert len(out) == 2
        carved_old, carved_new = out.rules
        assert carved_old.exceptions and carved_new.exceptions
        # The carved pair no longer conflicts symbolically.
        assert classify_rule(FeedbackRuleSet((carved_old,)), carved_new, schema) == APPEND

    def test_mixture_adds_blended_rule(self, base_frs, schema):
        new = rule(Predicate("age", "<", 25.0), 0, "contrarian")
        kind, out = extend_ruleset(
            base_frs, new, schema, resolve="mixture", mixture_weight=0.5
        )
        assert kind == REBUILD
        assert len(out) == 3
        mix = out.rules[-1]
        np.testing.assert_allclose(np.asarray(mix.pi), [0.5, 0.5])

    def test_bad_resolve_errors(self, base_frs, schema):
        new = rule(Predicate("age", "<", 25.0), 0, "contrarian")
        with pytest.raises(ValueError, match="resolve"):
            extend_ruleset(base_frs, new, schema, resolve="nope")

    def test_recarve_is_stable(self, base_frs, schema):
        """Carving the same conflict twice must not stack exceptions."""
        new = rule(Predicate("age", "<", 25.0), 0, "contrarian")
        _, once = extend_ruleset(base_frs, new, schema)
        n_exceptions = sum(len(r.exceptions) for r in once)
        # Adding a further, non-conflicting rule re-runs classification
        # over the carved set and must leave the exceptions untouched.
        _, twice = extend_ruleset(
            once, rule(Predicate("age", ">", 90.0), 0, "other"), schema
        )
        assert sum(len(r.exceptions) for r in twice) == n_exceptions


class TestJsonRoundTrip:
    def test_delta_round_trip(self, base_frs, schema):
        new = rule(Predicate("age", "<", 25.0), 0, "contrarian")
        kind, out = extend_ruleset(base_frs, new, schema)
        delta = RuleSetDelta(
            kind=kind,
            iteration=3,
            rules_added=(new,),
            ruleset=out,
            n_rules_before=len(base_frs),
            provenance="test",
        )
        back = delta_from_jsonable(delta_to_jsonable(delta))
        assert back == delta


class TestApplyRule:
    def make_state(self, *, tau=3):
        dataset = make_tiny_dataset(n=120, seed=5)
        session = (
            repro.edit(dataset)
            .with_rules(FeedbackRule.deterministic(
                clause(Predicate("x1", "<", -0.5)), 1, 2, name="base"
            ))
            .with_algorithm("LR")
            .configure(tau=tau, q=0.5, eta=8, random_state=0, mod_strategy="none")
        )
        state = session.build_state()
        engine = session.build_engine()
        engine.initialize(state)
        return state

    def test_append_updates_evaluation_exactly(self):
        state = self.make_state()
        new = FeedbackRule.deterministic(
            clause(Predicate("x1", ">", 0.5)), 0, 2, name="appended"
        )
        delta = apply_rule(state, new)
        assert delta.kind == APPEND
        assert len(state.frs) == 2
        assert state.ruleset_log == [delta]
        # The O(new rule) evaluation equals a from-scratch one bitwise.
        from repro.core.objective import evaluate_predictions

        full = evaluate_predictions(
            state.active_predictions(), state.active, state.frs,
            assign=state.active_assignment(),
        )
        assert state.evaluation.mra == full.mra
        assert state.evaluation.f1_outside == full.f1_outside
        np.testing.assert_array_equal(
            state.evaluation.per_rule_mra, full.per_rule_mra
        )
        assert state.best_loss == state.loss_of(full)

    def test_append_extends_population_in_place(self):
        from repro.engine.stages import PreselectStage

        state = self.make_state()
        PreselectStage().run(state)  # build the per-rule working set
        assert not state.population_stale
        n_rules_before = len(state.bp.per_rule)
        new = FeedbackRule.deterministic(
            clause(Predicate("x1", ">", 0.5)), 0, 2, name="appended"
        )
        apply_rule(state, new)
        assert not state.population_stale
        assert len(state.bp.per_rule) == n_rules_before + 1
        assert len(state.generators) == len(state.pools) == n_rules_before + 1

    def test_rebuild_marks_everything_stale(self):
        state = self.make_state()
        new = FeedbackRule.deterministic(
            clause(Predicate("x1", "<", -0.8)), 0, 2, name="contrarian"
        )
        delta = apply_rule(state, new)
        assert delta.kind == REBUILD
        assert state.population_stale
        assert state.best_loss == state.loss_of(state.evaluation)

    def test_emits_ruleset_event(self):
        state = self.make_state()
        seen = []
        state.listeners.append(
            lambda ev: seen.append(ev) if ev.kind == "ruleset" else None
        )
        delta = apply_rule(state, FeedbackRule.deterministic(
            clause(Predicate("x1", ">", 0.5)), 0, 2, name="appended"
        ))
        assert len(seen) == 1 and seen[0].ruleset is delta
