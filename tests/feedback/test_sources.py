"""Feedback sources: event coercion, rule JSON round-trips, delivery order."""

from __future__ import annotations

import threading

import pytest

from repro.feedback import (
    QueueFeedbackSource,
    RuleProposal,
    RuleVerdict,
    ScriptedFeedbackSource,
    coerce_event,
)
from repro.feedback.sources import (
    FeedbackSource,
    rule_from_jsonable,
    rule_key,
    rule_to_jsonable,
)
from repro.rules import FeedbackRule, Predicate, clause


def make_rule(threshold=35.0, name="young"):
    return FeedbackRule.deterministic(
        clause(Predicate("age", "<", threshold)), 1, 2, name=name
    )


class TestRuleJson:
    def test_round_trip(self):
        rule = make_rule()
        back = rule_from_jsonable(rule_to_jsonable(rule))
        assert back == rule
        assert back.name == "young"

    def test_round_trip_with_exception(self):
        rule = make_rule().with_exception(clause(Predicate("income", ">", 90.0)))
        assert rule_from_jsonable(rule_to_jsonable(rule)) == rule

    def test_rule_key_is_content_identity(self):
        assert rule_key(make_rule()) == rule_key(make_rule())
        assert rule_key(make_rule()) != rule_key(make_rule(threshold=40.0))


class TestEvents:
    def test_proposal_id_defaults_to_rule_content(self):
        rule = make_rule()
        a = RuleProposal(rule, source="alice")
        b = RuleProposal(rule, source="bob")
        assert a.proposal_id == b.proposal_id == rule_key(rule)

    def test_coerce_bare_rule(self):
        event = coerce_event(make_rule(), source="s1")
        assert isinstance(event, RuleProposal)
        assert event.source == "s1"

    def test_coerce_passthrough_keeps_existing_source(self):
        proposal = RuleProposal(make_rule(), source="orig")
        assert coerce_event(proposal, source="other").source == "orig"

    def test_coerce_rejects_junk(self):
        with pytest.raises(TypeError):
            coerce_event(42)


class TestQueueSource:
    def test_push_poll_drains_in_order(self):
        src = QueueFeedbackSource()
        src.push(make_rule(name="a"), make_rule(threshold=40.0, name="b"))
        events = src.poll(0)
        assert [e.rule.name for e in events] == ["a", "b"]
        assert src.poll(1) == []

    def test_satisfies_protocol(self):
        assert isinstance(QueueFeedbackSource(), FeedbackSource)
        assert isinstance(ScriptedFeedbackSource([]), FeedbackSource)

    def test_thread_safe_pushes(self):
        src = QueueFeedbackSource()
        threads = [
            threading.Thread(target=lambda: src.push(make_rule()))
            for _ in range(8)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(src.poll(0)) == 8


class TestScriptedSource:
    def test_delivers_at_iteration_boundaries(self):
        src = ScriptedFeedbackSource(
            [(2, make_rule(name="late")), (0, make_rule(name="early"))]
        )
        assert [e.rule.name for e in src.poll(0)] == ["early"]
        assert src.poll(1) == []
        assert [e.rule.name for e in src.poll(5)] == ["late"]
        assert src.poll(6) == []

    def test_dict_schedule(self):
        src = ScriptedFeedbackSource(
            {1: [make_rule(name="a"), make_rule(threshold=40.0, name="b")],
             3: make_rule(name="c")}
        )
        assert [e.rule.name for e in src.poll(2)] == ["a", "b"]
        assert [e.rule.name for e in src.poll(3)] == ["c"]

    def test_catches_up_past_skipped_iterations(self):
        src = ScriptedFeedbackSource([(1, make_rule(name="a"))])
        assert [e.rule.name for e in src.poll(10)] == ["a"]

    def test_reset_rewinds(self):
        src = ScriptedFeedbackSource([(0, make_rule())])
        assert len(src.poll(0)) == 1
        src.reset()
        assert len(src.poll(0)) == 1

    def test_verdicts_pass_through(self):
        verdict = RuleVerdict("pid", approve=True, source="alice")
        src = ScriptedFeedbackSource([(0, verdict)])
        assert src.poll(0) == [verdict]
