"""Aggregation policies and the per-proposal vote bookkeeping."""

from __future__ import annotations

import pytest

from repro.feedback import (
    AGGREGATION_POLICIES,
    APPROVED,
    PENDING,
    REJECTED,
    FeedbackAggregator,
    RuleProposal,
    RuleVerdict,
    register_aggregation_policy,
)
from repro.rules import FeedbackRule, Predicate, clause


def make_rule(threshold=35.0, name="young"):
    return FeedbackRule.deterministic(
        clause(Predicate("age", "<", threshold)), 1, 2, name=name
    )


def proposal(rule=None, source="alice"):
    return RuleProposal(rule if rule is not None else make_rule(), source=source)


class TestUnanimous:
    def test_single_proposal_approves(self):
        agg = FeedbackAggregator()
        decisions = agg.ingest([proposal()])
        assert len(decisions) == 1
        assert decisions[0].status == APPROVED
        assert decisions[0].approvals == ("alice",)

    def test_any_rejection_in_batch_kills(self):
        agg = FeedbackAggregator()
        p = proposal()
        # Votes inside one ingest batch all land before the decision.
        decisions = agg.ingest(
            [p, RuleVerdict(p.proposal_id, approve=False, source="bob")]
        )
        assert [d.status for d in decisions] == [REJECTED]

    def test_decisions_are_final(self):
        agg = FeedbackAggregator()
        p = proposal()
        assert [d.status for d in agg.ingest([p])] == [APPROVED]
        # A reject arriving after the decision is a no-op.
        assert agg.ingest(
            [RuleVerdict(p.proposal_id, approve=False, source="bob")]
        ) == []
        assert agg.status(p.proposal_id) == APPROVED

    def test_min_votes_holds_pending(self):
        agg = FeedbackAggregator(policy="unanimous", min_votes=2)
        p = proposal()
        assert agg.ingest([p]) == []
        assert agg.status(p.proposal_id) == PENDING
        decisions = agg.ingest(
            [RuleVerdict(p.proposal_id, approve=True, source="bob")]
        )
        assert [d.status for d in decisions] == [APPROVED]
        assert set(decisions[0].approvals) == {"alice", "bob"}

    def test_reject_before_quota(self):
        agg = FeedbackAggregator(policy="unanimous", min_votes=3)
        p = proposal()
        agg.ingest([p])
        decisions = agg.ingest(
            [RuleVerdict(p.proposal_id, approve=False, source="bob")]
        )
        assert [d.status for d in decisions] == [REJECTED]


class TestQuorum:
    def test_needs_quorum_approvals(self):
        agg = FeedbackAggregator(policy="quorum", quorum=2)
        p = proposal()
        assert agg.ingest([p]) == []
        decisions = agg.ingest(
            [RuleVerdict(p.proposal_id, approve=True, source="bob")]
        )
        assert [d.status for d in decisions] == [APPROVED]

    def test_quorum_of_rejections_rejects(self):
        agg = FeedbackAggregator(policy="quorum", quorum=2)
        p = proposal()
        agg.ingest([p, RuleVerdict(p.proposal_id, approve=False, source="eve")])
        assert agg.status(p.proposal_id) == PENDING  # 1 approve, 1 reject
        agg.ingest([RuleVerdict(p.proposal_id, approve=False, source="mallory")])
        assert agg.status(p.proposal_id) == REJECTED


class TestPriorityWeighted:
    def test_weighted_votes(self):
        agg = FeedbackAggregator(
            policy="priority-weighted",
            threshold=2.0,
            weights={"senior": 2.0, "junior": 0.5},
        )
        p = proposal(source="junior")
        assert agg.ingest([p]) == []  # score 0.5 < 2.0
        decisions = agg.ingest(
            [RuleVerdict(p.proposal_id, approve=True, source="senior")]
        )
        assert [d.status for d in decisions] == [APPROVED]

    def test_negative_score_rejects(self):
        agg = FeedbackAggregator(
            policy="priority-weighted", threshold=1.5,
            weights={"senior": 2.0},
        )
        p = proposal(source="alice")  # +1.0
        agg.ingest([p])
        decisions = agg.ingest(
            [RuleVerdict(p.proposal_id, approve=False, source="senior")]
        )  # 1.0 - 2.0 = -1.0 <= -1.5? no -> still pending
        assert decisions == []
        decisions = agg.ingest(
            [RuleVerdict(p.proposal_id, approve=False, source="bob")]
        )  # -2.0 <= -1.5 -> rejected
        assert [d.status for d in decisions] == [REJECTED]


class TestBookkeeping:
    def test_latest_vote_per_source_wins(self):
        agg = FeedbackAggregator(policy="unanimous", min_votes=2)
        p = proposal(source="alice")  # counts as alice's approval
        agg.ingest([p])
        decisions = agg.ingest(
            [RuleVerdict(p.proposal_id, approve=False, source="alice")]
        )
        assert [d.status for d in decisions] == [REJECTED]
        assert decisions[0].approvals == ()
        assert decisions[0].rejections == ("alice",)

    def test_orphan_verdicts_park_until_proposal(self):
        agg = FeedbackAggregator(policy="quorum", quorum=2)
        rule = make_rule()
        pid = RuleProposal(rule).proposal_id
        assert agg.ingest([RuleVerdict(pid, approve=True, source="bob")]) == []
        decisions = agg.ingest([RuleProposal(rule, source="alice")])
        assert [d.status for d in decisions] == [APPROVED]
        assert set(decisions[0].approvals) == {"alice", "bob"}

    def test_same_rule_from_two_sources_shares_proposal(self):
        agg = FeedbackAggregator(policy="quorum", quorum=2)
        decisions = agg.ingest(
            [proposal(source="alice"), proposal(source="bob")]
        )
        assert len(decisions) == 1
        assert decisions[0].status == APPROVED

    def test_pending_listing(self):
        agg = FeedbackAggregator(policy="quorum", quorum=2)
        p = proposal()
        agg.ingest([p])
        assert agg.pending() == (p.proposal_id,)


class TestRegistry:
    def test_unknown_policy_errors(self):
        with pytest.raises(Exception):
            FeedbackAggregator(policy="definitely-not-registered")

    def test_builtins_registered(self):
        for name in ("unanimous", "quorum", "priority-weighted"):
            assert name in AGGREGATION_POLICIES

    def test_custom_policy_plugs_in(self):
        @register_aggregation_policy("always-yes", overwrite=True)
        class AlwaysYes:
            def decide(self, tally):
                return APPROVED

        agg = FeedbackAggregator(policy="always-yes")
        decisions = agg.ingest([proposal()])
        assert [d.status for d in decisions] == [APPROVED]
