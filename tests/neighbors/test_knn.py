"""Tests for brute-force KNN and the ball tree (including equivalence)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.neighbors import BallTree, BruteKNN, MixedMetric, make_knn


def _data(n=100, d=3, seed=0, n_cat=0):
    rng = np.random.default_rng(seed)
    X = rng.uniform(0, 1, (n, d + n_cat))
    for j in range(d, d + n_cat):
        X[:, j] = rng.integers(0, 3, n)
    mask = np.zeros(d + n_cat, dtype=bool)
    mask[d:] = True
    return X, MixedMetric(mask)


class TestBruteKNN:
    def test_nearest_is_self_without_exclude(self):
        X, _ = _data()
        knn = BruteKNN().fit(X)
        d, i = knn.kneighbors(X[:5], 1)
        np.testing.assert_array_equal(i[:, 0], np.arange(5))
        np.testing.assert_allclose(d[:, 0], 0, atol=1e-6)

    def test_exclude_self_drops_query(self):
        X, _ = _data()
        knn = BruteKNN().fit(X)
        _, i = knn.kneighbors(X[:5], 3, exclude_self=True)
        for q in range(5):
            assert q not in i[q]

    def test_distances_sorted(self):
        X, _ = _data()
        d, _ = BruteKNN().fit(X).kneighbors(X[:10], 5)
        assert np.all(np.diff(d, axis=1) >= -1e-12)

    def test_k_larger_than_n(self):
        X, _ = _data(n=4)
        d, i = BruteKNN().fit(X).kneighbors(X[:2], 10)
        assert i.shape == (2, 4)

    def test_k_larger_than_n_exclude_self(self):
        X, _ = _data(n=4)
        d, i = BruteKNN().fit(X).kneighbors(X[:2], 10, exclude_self=True)
        assert i.shape == (2, 3)

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            BruteKNN().kneighbors(np.zeros((1, 2)), 1)

    def test_invalid_k_raises(self):
        X, _ = _data()
        with pytest.raises(ValueError, match="k must be positive"):
            BruteKNN().fit(X).kneighbors(X[:1], 0)

    def test_mixed_metric(self):
        X, m = _data(n=50, n_cat=2)
        d, i = BruteKNN(m).fit(X).kneighbors(X[:5], 3, exclude_self=True)
        assert d.shape == (5, 3)


class TestBallTree:
    def test_matches_brute_euclidean(self):
        X, _ = _data(n=200, seed=1)
        Q = X[:30]
        d_bt, _ = BallTree(leaf_size=5).fit(X).kneighbors(Q, 7)
        d_bf, _ = BruteKNN().fit(X).kneighbors(Q, 7)
        # Brute force computes distances via the quadratic expansion, which
        # carries ~1e-8 of floating error on exact-zero self distances.
        np.testing.assert_allclose(d_bt, d_bf, atol=1e-6)

    def test_matches_brute_mixed(self):
        X, m = _data(n=150, seed=2, n_cat=2)
        d_bt, _ = BallTree(m, leaf_size=8).fit(X).kneighbors(X[:20], 5, exclude_self=True)
        d_bf, _ = BruteKNN(m).fit(X).kneighbors(X[:20], 5, exclude_self=True)
        np.testing.assert_allclose(d_bt, d_bf, atol=1e-6)

    def test_duplicate_points(self):
        X = np.zeros((20, 2))
        bt = BallTree(leaf_size=4).fit(X)
        d, i = bt.kneighbors(X[:3], 5)
        np.testing.assert_allclose(d, 0.0, atol=1e-9)

    def test_single_point(self):
        X = np.array([[1.0, 2.0]])
        d, i = BallTree().fit(X).kneighbors(np.array([[0.0, 0.0]]), 3)
        assert i.shape == (1, 1)

    def test_invalid_leaf_size(self):
        with pytest.raises(ValueError, match="leaf_size"):
            BallTree(leaf_size=0)

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            BallTree().kneighbors(np.zeros((1, 2)), 1)


class TestMakeKnn:
    def test_ball_tree(self):
        assert isinstance(make_knn("ball_tree"), BallTree)

    def test_brute(self):
        assert isinstance(make_knn("brute"), BruteKNN)

    def test_unknown_raises(self):
        with pytest.raises(ValueError, match="unknown algorithm"):
            make_knn("kd_tree")


@settings(max_examples=20, deadline=None)
@given(
    n=st.integers(min_value=5, max_value=80),
    k=st.integers(min_value=1, max_value=10),
    seed=st.integers(min_value=0, max_value=10**6),
    leaf=st.integers(min_value=1, max_value=16),
)
def test_balltree_brute_equivalence_property(n, k, seed, leaf):
    """Ball tree and brute force agree on distances for any configuration."""
    rng = np.random.default_rng(seed)
    X = rng.uniform(0, 1, (n, 3))
    X[:, 2] = rng.integers(0, 3, n)
    m = MixedMetric(np.array([False, False, True]))
    Q = rng.uniform(0, 1, (5, 3))
    Q[:, 2] = rng.integers(0, 3, 5)
    d_bt, _ = BallTree(m, leaf_size=leaf).fit(X).kneighbors(Q, k)
    d_bf, _ = BruteKNN(m).fit(X).kneighbors(Q, k)
    np.testing.assert_allclose(d_bt, d_bf, atol=1e-6)
