"""Tests for distance metrics and the table neighbour space."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data import Table, make_schema
from repro.neighbors import MixedMetric, TableNeighborSpace, pairwise_euclidean


class TestPairwiseEuclidean:
    def test_known_values(self):
        A = np.array([[0.0, 0.0]])
        B = np.array([[3.0, 4.0], [0.0, 0.0]])
        np.testing.assert_allclose(pairwise_euclidean(A, B), [[5.0, 0.0]])

    def test_symmetry(self):
        rng = np.random.default_rng(0)
        A = rng.normal(size=(5, 3))
        D1 = pairwise_euclidean(A, A)
        np.testing.assert_allclose(D1, D1.T, atol=1e-10)

    def test_nonnegative(self):
        rng = np.random.default_rng(1)
        A = rng.normal(size=(10, 4))
        assert np.all(pairwise_euclidean(A, A) >= 0)


class TestMixedMetric:
    def test_pure_numeric_equals_euclidean(self):
        rng = np.random.default_rng(2)
        A, B = rng.normal(size=(6, 3)), rng.normal(size=(4, 3))
        m = MixedMetric(np.zeros(3, dtype=bool))
        np.testing.assert_allclose(m.pairwise(A, B), pairwise_euclidean(A, B), atol=1e-9)

    def test_categorical_overlap(self):
        m = MixedMetric(np.array([True]))
        A = np.array([[0.0]])
        B = np.array([[0.0], [1.0]])
        np.testing.assert_allclose(m.pairwise(A, B), [[0.0, 1.0]])

    def test_mixed_combines(self):
        m = MixedMetric(np.array([False, True]))
        a = np.array([[1.0, 0.0]])
        b = np.array([[2.0, 1.0]])
        # sqrt(1^2 + 1) = sqrt(2)
        np.testing.assert_allclose(m.pairwise(a, b), [[np.sqrt(2.0)]])

    def test_dists_to_matches_pairwise(self):
        rng = np.random.default_rng(3)
        X = rng.normal(size=(20, 4))
        X[:, 3] = rng.integers(0, 3, 20)
        m = MixedMetric(np.array([False, False, False, True]))
        row = m.dists_to(X[0], X)
        full = m.pairwise(X[:1], X)[0]
        np.testing.assert_allclose(row, full, atol=1e-9)

    def test_identity_is_zero(self):
        m = MixedMetric(np.array([False, True]))
        x = np.array([[1.5, 2.0]])
        assert m.pairwise(x, x)[0, 0] == pytest.approx(0.0, abs=1e-9)


class TestTableNeighborSpace:
    def _table(self, n=50, seed=0):
        schema = make_schema(numeric=["a"], categorical={"c": ("x", "y")})
        rng = np.random.default_rng(seed)
        return Table(
            schema, {"a": rng.uniform(0, 100, n), "c": rng.integers(0, 2, n)}
        )

    def test_numeric_scaled_to_unit_range(self):
        t = self._table()
        E = TableNeighborSpace().fit_encode(t)
        assert E[:, 0].min() >= 0.0 and E[:, 0].max() <= 1.0

    def test_metric_cat_mask(self):
        t = self._table()
        space = TableNeighborSpace().fit(t)
        np.testing.assert_array_equal(space.metric_.cat_mask, [False, True])

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            TableNeighborSpace().encode(self._table())

    def test_schema_mismatch_raises(self):
        space = TableNeighborSpace().fit(self._table())
        other = Table(make_schema(numeric=["a"]), {"a": np.zeros(1)})
        with pytest.raises(ValueError, match="schema"):
            space.encode(other)

    def test_constant_column_handled(self):
        schema = make_schema(numeric=["a"])
        t = Table(schema, {"a": np.full(5, 3.0)})
        E = TableNeighborSpace().fit_encode(t)
        assert np.all(np.isfinite(E))


@settings(max_examples=30, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10**6))
def test_triangle_inequality_property(seed):
    """HEOM must satisfy the triangle inequality (ball tree correctness)."""
    rng = np.random.default_rng(seed)
    X = rng.normal(size=(3, 4))
    X[:, 2] = rng.integers(0, 3, 3)
    X[:, 3] = rng.integers(0, 2, 3)
    m = MixedMetric(np.array([False, False, True, True]))
    D = m.pairwise(X, X)
    assert D[0, 2] <= D[0, 1] + D[1, 2] + 1e-9
