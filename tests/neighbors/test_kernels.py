"""Kernel-layer tests: coded layouts, blocked top-k, and backend registry.

The float32 coded path is *equivalent* to the exact float64 path under the
documented contract (module docstring of :mod:`repro.neighbors.kernels`),
not bitwise: every assertion here is therefore either distance-based with a
float32-sized margin, or checks the parts that are exact by construction
(categorical-only arithmetic, the ``(distance, index)`` ordering, the numpy
fallback of the numba backend).
"""

import warnings

import numpy as np
import pytest

from repro.core.config import FroteConfig
from repro.engine.registry import (
    DISTANCE_BACKENDS,
    UnknownEntryError,
    register_distance_backend,
)
from repro.neighbors import BruteKNN, TableNeighborSpace
from repro.neighbors.distance import MixedMetric
from repro.neighbors.kernels import (
    NUMPY_BACKEND,
    CodedLayout,
    NumbaDistanceBackend,
    NumpyDistanceBackend,
    kneighbors_blocked,
    resolve_distance_backend,
)
from repro.perf.hotpaths import synthetic_mixed_table
from repro.sampling import SMOTE

#: Absolute slack on distances between the float32 kernel path and the
#: exact float64 path, and the margin below which two base rows are
#: considered tied (either may legitimately be returned).
MARGIN = 1e-3


def random_encoded(rng, n, d_num, d_cat, cardinality=4, duplicates=0):
    """A random encoded matrix in the metric's domain + its cat mask.

    Numerics are range-scaled (uniform [0, 1], like
    ``TableNeighborSpace.encode`` output); categoricals are integer codes.
    ``duplicates`` rows are exact copies of earlier rows, manufacturing
    zero-distance ties.
    """
    num = rng.uniform(0.0, 1.0, size=(n, d_num))
    cat = rng.integers(0, cardinality, size=(n, d_cat)).astype(np.float64)
    E = np.hstack([num, cat]) if d_num + d_cat else np.zeros((n, 0))
    for _ in range(min(duplicates, n - 1)):
        src, dst = rng.integers(0, n, size=2)
        E[dst] = E[src]
    cat_mask = np.zeros(d_num + d_cat, dtype=bool)
    cat_mask[d_num:] = True
    return E, cat_mask


def exact_topk(E_q, E_b, cat_mask, k):
    """Float64 reference: per-row (distance, index)-sorted k best."""
    D = MixedMetric(cat_mask).pairwise(E_q, E_b)
    k = min(k, D.shape[1])
    idx = np.empty((D.shape[0], k), dtype=np.intp)
    dist = np.empty((D.shape[0], k), dtype=np.float64)
    for r, row in enumerate(D):
        order = np.lexsort((np.arange(row.size), row))[:k]
        idx[r] = order
        dist[r] = row[order]
    return dist, idx, D


def assert_equivalent(dist, idx, E_q, E_b, cat_mask, k):
    """Tie-robust parity: each selected neighbour is distance-equivalent
    to the exact one at the same rank, and reported distances are within
    the float32 envelope of the exact distances to the selected rows."""
    exact_d, _, D = exact_topk(E_q, E_b, cat_mask, k)
    assert dist.shape == exact_d.shape
    assert idx.shape == exact_d.shape
    # Reported distance ≈ exact distance of the row it claims.
    chosen_exact = np.take_along_axis(D, idx, axis=1)
    np.testing.assert_allclose(dist, chosen_exact, atol=MARGIN, rtol=1e-4)
    # Rank-by-rank: the chosen row is within a tie margin of the exact
    # k-best at that rank (strictly better is impossible; equal-up-to-ties
    # is the contract).
    assert np.all(chosen_exact <= exact_d + MARGIN)


def coded(E, cat_mask):
    return CodedLayout.from_encoded(E, cat_mask)


class TestCodedLayout:
    def test_from_encoded_splits_and_narrows(self):
        rng = np.random.default_rng(0)
        E, cat_mask = random_encoded(rng, 10, 3, 2)
        layout = coded(E, cat_mask)
        assert layout.n_rows == 10
        assert layout.num.dtype == np.float32 and layout.num.flags["C_CONTIGUOUS"]
        assert layout.cat.dtype == np.int32 and layout.cat.flags["C_CONTIGUOUS"]
        np.testing.assert_array_equal(layout.num, E[:, :3].astype(np.float32))
        np.testing.assert_array_equal(layout.cat, E[:, 3:].astype(np.int32))
        np.testing.assert_array_equal(
            layout.num_sq, np.einsum("ij,ij->i", layout.num, layout.num)
        )

    def test_slice_is_zero_copy_and_take_gathers(self):
        rng = np.random.default_rng(1)
        E, cat_mask = random_encoded(rng, 12, 2, 1)
        layout = coded(E, cat_mask)
        view = layout.slice(3, 7)
        assert view.n_rows == 4
        assert view.num.base is layout.num
        sub = layout.take(np.array([5, 0, 5]))
        assert sub.n_rows == 3
        np.testing.assert_array_equal(sub.num[0], layout.num[5])
        np.testing.assert_array_equal(sub.num[1], layout.num[0])

    def test_shape_validation(self):
        with pytest.raises(ValueError, match="2-D"):
            CodedLayout.from_encoded(np.zeros(3), np.zeros(3, dtype=bool))
        with pytest.raises(ValueError, match="entries"):
            CodedLayout.from_encoded(np.zeros((2, 3)), np.zeros(2, dtype=bool))


class TestBlockedTopK:
    @pytest.mark.parametrize("n_b", [63, 64, 65, 127, 128, 129])
    def test_block_boundary_sizes(self, n_b):
        """n % base_block ∈ {0, 1, block-1} all agree with the reference."""
        rng = np.random.default_rng(n_b)
        E, cat_mask = random_encoded(rng, n_b, 3, 2)
        layout = coded(E, cat_mask)
        q = layout.slice(0, min(40, n_b))
        dist, idx = kneighbors_blocked(q, layout, 5, query_block=16, base_block=64)
        assert_equivalent(dist, idx, E[: q.n_rows], E, cat_mask, 5)

    def test_randomized_parity(self):
        rng = np.random.default_rng(42)
        for trial in range(25):
            n_b = int(rng.integers(2, 400))
            n_q = int(rng.integers(1, 60))
            d_num = int(rng.integers(0, 5))
            d_cat = int(rng.integers(0 if d_num else 1, 4))
            card = int(rng.integers(1, 6))
            k = int(rng.integers(1, 8))
            E_b, cat_mask = random_encoded(
                rng, n_b, d_num, d_cat, cardinality=card, duplicates=n_b // 4
            )
            E_q, _ = random_encoded(rng, n_q, d_num, d_cat, cardinality=card)
            dist, idx = kneighbors_blocked(
                coded(E_q, cat_mask), coded(E_b, cat_mask), k,
                query_block=int(rng.integers(1, 64)),
                base_block=int(rng.integers(1, 128)),
            )
            assert_equivalent(dist, idx, E_q, E_b, cat_mask, k)

    def test_categorical_only_distances_blocking_invariant_bitwise(self):
        """Integer-overlap distances carry no float accumulation: the
        selected distance vector must be identical bits under any
        blocking.  Indices may differ only inside exact tie groups (the
        documented implementation-defined part of the contract), so each
        reported index must still realize its reported distance exactly."""
        rng = np.random.default_rng(7)
        E, cat_mask = random_encoded(rng, 200, 0, 4, cardinality=3)
        D = MixedMetric(cat_mask).pairwise(E[:50], E)
        layout = coded(E, cat_mask)
        q = layout.slice(0, 50)
        ref_d, _ = kneighbors_blocked(q, layout, 6)
        for qb, bb in [(1, 1), (7, 13), (50, 200), (64, 1024)]:
            d, i = kneighbors_blocked(q, layout, 6, query_block=qb, base_block=bb)
            np.testing.assert_array_equal(d, ref_d)
            np.testing.assert_array_equal(np.take_along_axis(D, i, axis=1), d)

    def test_mixed_blocking_invariance_within_margin(self):
        rng = np.random.default_rng(8)
        E, cat_mask = random_encoded(rng, 300, 4, 2, duplicates=40)
        layout = coded(E, cat_mask)
        q = layout.slice(0, 80)
        for qb, bb in [(11, 17), (80, 300), (256, 1024)]:
            d, i = kneighbors_blocked(q, layout, 5, query_block=qb, base_block=bb)
            assert_equivalent(d, i, E[:80], E, cat_mask, 5)

    def test_duplicate_rows_sorted_by_distance_then_index(self):
        rng = np.random.default_rng(9)
        E, cat_mask = random_encoded(rng, 120, 2, 2, cardinality=2, duplicates=60)
        layout = coded(E, cat_mask)
        dist, idx = kneighbors_blocked(layout, layout, 8, base_block=32)
        assert np.all(np.diff(dist, axis=1) >= 0)
        ties = np.diff(dist, axis=1) == 0
        idx_increasing = np.diff(idx, axis=1) > 0
        assert np.all(idx_increasing[ties])

    def test_exclude_self_drops_query_row(self):
        rng = np.random.default_rng(10)
        # Well-separated distinct rows: self-exclusion must drop exactly
        # the query row and match the exact path's neighbour sets.
        E, cat_mask = random_encoded(rng, 150, 4, 1, cardinality=5)
        layout = coded(E, cat_mask)
        dist, idx = kneighbors_blocked(
            layout, layout, 4, exclude_self=True, base_block=64
        )
        assert idx.shape == (150, 4)
        rows = np.arange(150)[:, None]
        assert not np.any(idx == rows)
        exact = BruteKNN(MixedMetric(cat_mask)).fit(E)
        e_dist, e_idx = exact.kneighbors(E, 4, exclude_self=True)
        np.testing.assert_allclose(dist, e_dist, atol=MARGIN, rtol=1e-4)

    def test_small_base_shapes_match_brute(self):
        rng = np.random.default_rng(11)
        E, cat_mask = random_encoded(rng, 3, 2, 1)
        layout = coded(E, cat_mask)
        brute = BruteKNN(MixedMetric(cat_mask)).fit(E)
        for exclude in (False, True):
            d_b, i_b = brute.kneighbors(E, 8, exclude_self=exclude)
            d_k, i_k = kneighbors_blocked(layout, layout, 8, exclude_self=exclude)
            assert d_k.shape == d_b.shape
            assert i_k.shape == i_b.shape

    def test_k_validation_and_empty_base(self):
        rng = np.random.default_rng(12)
        E, cat_mask = random_encoded(rng, 4, 1, 1)
        layout = coded(E, cat_mask)
        with pytest.raises(ValueError, match="k must be positive"):
            kneighbors_blocked(layout, layout, 0)
        empty = coded(np.zeros((0, 2)), cat_mask)
        d, i = kneighbors_blocked(layout, empty, 3)
        assert d.shape == (4, 0) and i.shape == (4, 0)


class TestBackendsAndRegistry:
    def test_resolve(self):
        assert resolve_distance_backend(None) is NUMPY_BACKEND
        assert resolve_distance_backend("numpy") is NUMPY_BACKEND
        mine = NumpyDistanceBackend()
        assert resolve_distance_backend(mine) is mine
        with pytest.raises(UnknownEntryError, match="numpy"):
            resolve_distance_backend("nump")

    def test_registry_names_and_validation(self):
        assert "numpy" in DISTANCE_BACKENDS
        assert "numba" in DISTANCE_BACKENDS
        with pytest.raises(UnknownEntryError):
            DISTANCE_BACKENDS.validate("not-a-backend")

    def test_register_custom_backend(self):
        class HalfBackend(NumpyDistanceBackend):
            name = "half"

        instance = HalfBackend()
        register_distance_backend("half", instance)
        try:
            assert resolve_distance_backend("half") is instance
            assert FroteConfig(distance_backend="half").distance_backend == "half"
        finally:
            DISTANCE_BACKENDS.unregister("half")

    def test_config_validates_backend(self):
        assert FroteConfig(distance_backend="numpy").distance_backend == "numpy"
        assert FroteConfig().distance_backend is None
        with pytest.raises(UnknownEntryError, match="distance backend"):
            FroteConfig(distance_backend="nonsense")

    def test_numba_fallback_is_bitwise_numpy_and_warns_once(self):
        backend = NumbaDistanceBackend()  # fresh: warn-once state untouched
        rng = np.random.default_rng(13)
        E, cat_mask = random_encoded(rng, 64, 3, 2)
        layout = coded(E, cat_mask)
        q = layout.slice(0, 16)
        args = (q.num, q.num_sq, q.cat, layout.num, layout.num_sq, layout.cat)
        if backend.available:
            # Compiled leg (CI with numba installed): same parity envelope
            # as the numpy kernel, no fallback warning.
            with warnings.catch_warnings():
                warnings.simplefilter("error", RuntimeWarning)
                tile = backend.sqdist_tile(*args)
            np.testing.assert_allclose(
                tile, NUMPY_BACKEND.sqdist_tile(*args), atol=MARGIN**2, rtol=1e-4
            )
        else:
            with pytest.warns(RuntimeWarning, match="falling back"):
                tile = backend.sqdist_tile(*args)
            np.testing.assert_array_equal(tile, NUMPY_BACKEND.sqdist_tile(*args))
            assert not backend.available
            with warnings.catch_warnings():  # warn-once: silent second call
                warnings.simplefilter("error", RuntimeWarning)
                backend.sqdist_tile(*args)

    def test_numba_route_through_driver_matches_numpy(self):
        rng = np.random.default_rng(14)
        E, cat_mask = random_encoded(rng, 90, 2, 2)
        layout = coded(E, cat_mask)
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", RuntimeWarning)
            d_nb, i_nb = kneighbors_blocked(layout, layout, 5, backend="numba")
        d_np, i_np = kneighbors_blocked(layout, layout, 5, backend="numpy")
        assert_equivalent(d_nb, i_nb, E, E, cat_mask, 5)
        from repro.neighbors.kernels import NUMBA_BACKEND

        if not NUMBA_BACKEND.available:  # fallback leg: bitwise numpy
            np.testing.assert_array_equal(d_nb, d_np)
            np.testing.assert_array_equal(i_nb, i_np)


class TestIntegration:
    def test_brute_backend_route_matches_default(self):
        table = synthetic_mixed_table(300, seed=5)
        space = TableNeighborSpace().fit(table)
        E = space.encode(table)
        cat_mask = space.metric_.cat_mask
        default = BruteKNN(space.metric_).fit(E)
        routed = BruteKNN(space.metric_, backend="numpy").fit(E)
        d0, i0 = default.kneighbors(E[:100], 5, exclude_self=True)
        d1, i1 = routed.kneighbors(E[:100], 5, exclude_self=True)
        assert d1.shape == d0.shape
        np.testing.assert_allclose(d1, d0, atol=MARGIN, rtol=1e-4)
        assert not np.any(i1 == np.arange(100)[:, None])
        # Without self-exclusion the generic tie-robust reference applies.
        d2, i2 = routed.kneighbors(E[:100], 5)
        assert_equivalent(d2, i2, E[:100], E, cat_mask, 5)

    def test_brute_coded_cache_invalidation_on_append_and_rollback(self):
        table = synthetic_mixed_table(120, seed=6)
        extra = synthetic_mixed_table(120, seed=66)
        space = TableNeighborSpace().fit(table)
        E, E2 = space.encode(table), space.encode(extra)
        knn = BruteKNN(space.metric_, backend="numpy").fit(E)
        knn.kneighbors(E[:10], 3)  # warm the coded cache
        token = knn.checkpoint()
        knn.append(E2)
        d_appended, i_appended = knn.kneighbors(E[:10], 3)
        fresh = BruteKNN(space.metric_, backend="numpy").fit(np.vstack([E, E2]))
        d_fresh, i_fresh = fresh.kneighbors(E[:10], 3)
        np.testing.assert_array_equal(i_appended, i_fresh)
        np.testing.assert_array_equal(d_appended, d_fresh)
        # Rollback-then-append with *different* rows must not reuse the
        # stale layout even though the row count matches.
        knn.rollback(token)
        knn.append(space.encode(synthetic_mixed_table(120, seed=67)))
        d_after, i_after = knn.kneighbors(E[:10], 3)
        assert (i_after != i_appended).any() or not np.allclose(d_after, d_appended)

    def test_encode_coded_cache_token(self):
        table = synthetic_mixed_table(80, seed=7)
        space = TableNeighborSpace().fit(table)
        first = space.encode_coded(table, cache_token="v1")
        again = space.encode_coded(table, cache_token="v1")
        assert again is first
        rebuilt = space.encode_coded(table, cache_token="v2")
        assert rebuilt is not first
        with pytest.raises(ValueError, match="table or an encoded"):
            space.encode_coded()

    def test_encode_coded_requires_fit(self):
        with pytest.raises(RuntimeError, match="not fitted"):
            TableNeighborSpace().encode_coded(encoded=np.zeros((2, 2)))

    def test_smote_with_backend_generates_valid_rows(self):
        table = synthetic_mixed_table(200, seed=8)
        out = SMOTE(3, distance_backend="numpy").generate(
            table, 50, rng=np.random.default_rng(0)
        )
        assert out.n_rows == 50
        assert out.schema == table.schema
        for name in table.schema.categorical_names:
            cats = table.schema[name].categories
            assert out.column(name).min() >= 0
            assert out.column(name).max() < len(cats)
