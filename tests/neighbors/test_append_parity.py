"""Appendable indices reproduce fresh fits bit-for-bit.

Randomized workloads: a sequence of appends must answer every query
exactly like an index fitted from scratch on the concatenated matrix —
same distances, same indices — across metrics, ``exclude_self``, and
amortized BallTree rebuilds.
"""

import numpy as np
import pytest

from repro.neighbors import BallTree, BruteKNN, MixedMetric


def random_batches(seed, d=5, sizes=(120, 1, 40, 33, 260)):
    rng = np.random.default_rng(seed)
    return [rng.normal(size=(n, d)) for n in sizes]


@pytest.mark.parametrize("cls", [BruteKNN, BallTree], ids=["brute", "balltree"])
@pytest.mark.parametrize("seed", [0, 1, 2])
def test_append_sequence_matches_fresh_fit(cls, seed):
    batches = random_batches(seed)
    rng = np.random.default_rng(seed + 50)
    Q = rng.normal(size=(60, 5))
    inc = cls().fit(batches[0])
    for i, batch in enumerate(batches[1:], start=1):
        inc.append(batch)
        full = cls().fit(np.concatenate(batches[: i + 1]))
        for k in (1, 4, 11):
            for exclude_self in (False, True):
                d_inc, i_inc = inc.kneighbors(Q, k, exclude_self=exclude_self)
                d_full, i_full = full.kneighbors(Q, k, exclude_self=exclude_self)
                np.testing.assert_array_equal(d_inc, d_full)
                np.testing.assert_array_equal(i_inc, i_full)


def test_balltree_rebuild_threshold_crossed():
    """Appends large enough to trigger the amortized rebuild stay exact."""
    rng = np.random.default_rng(7)
    X0 = rng.normal(size=(64, 3))
    tree = BallTree(rebuild_threshold=0.25)
    tree.fit(X0)
    parts = [X0]
    for step in range(6):
        batch = rng.normal(size=(48, 3))
        parts.append(batch)
        tree.append(batch)
        full = BallTree().fit(np.concatenate(parts))
        Q = rng.normal(size=(25, 3))
        d_inc, i_inc = tree.kneighbors(Q, 6)
        d_full, i_full = full.kneighbors(Q, 6)
        np.testing.assert_array_equal(d_inc, d_full)
        np.testing.assert_array_equal(i_inc, i_full)
    # At least one amortized rebuild folded pending rows into the tree.
    assert tree._tree_n > 64


def test_balltree_small_appends_stay_pending():
    rng = np.random.default_rng(8)
    tree = BallTree(rebuild_threshold=0.5).fit(rng.normal(size=(200, 4)))
    tree.append(rng.normal(size=(5, 4)))
    assert tree._tree_n == 200 and tree._n == 205


@pytest.mark.parametrize("cls", [BruteKNN, BallTree], ids=["brute", "balltree"])
def test_append_with_mixed_metric(cls):
    rng = np.random.default_rng(9)
    # Columns 0-1 numeric, column 2 categorical overlap-coded.
    metric = MixedMetric(np.array([False, False, True]))
    def enc(n):
        E = rng.normal(size=(n, 3))
        E[:, 2] = rng.integers(0, 3, size=n)
        return E
    X0, X1 = enc(90), enc(35)
    inc = cls(metric).fit(X0)
    inc.append(X1)
    full = cls(metric).fit(np.concatenate([X0, X1]))
    Q = enc(20)
    d_inc, i_inc = inc.kneighbors(Q, 5)
    d_full, i_full = full.kneighbors(Q, 5)
    np.testing.assert_array_equal(d_inc, d_full)
    np.testing.assert_array_equal(i_inc, i_full)


@pytest.mark.parametrize("cls", [BruteKNN, BallTree], ids=["brute", "balltree"])
def test_checkpoint_rollback_restores_exactly(cls):
    rng = np.random.default_rng(11)
    X0 = rng.normal(size=(150, 4))
    inc = cls().fit(X0)
    inc.append(rng.normal(size=(30, 4)))
    token = inc.checkpoint()
    baseline = cls().fit(inc._X.copy())
    # A rejected-candidate append cycle, twice, each rolled back.
    for _ in range(2):
        inc.append(rng.normal(size=(500, 4)))  # large: may trigger rebuild
        inc.rollback(token)
    Q = rng.normal(size=(40, 4))
    d_inc, i_inc = inc.kneighbors(Q, 8)
    d_base, i_base = baseline.kneighbors(Q, 8)
    np.testing.assert_array_equal(d_inc, d_base)
    np.testing.assert_array_equal(i_inc, i_base)


def test_append_to_unfitted_is_fit():
    rng = np.random.default_rng(13)
    X = rng.normal(size=(20, 3))
    for cls in (BruteKNN, BallTree):
        idx = cls()
        idx.append(X)
        assert idx.n_samples == 20


@pytest.mark.parametrize("cls", [BruteKNN, BallTree], ids=["brute", "balltree"])
def test_append_empty_batch_is_noop(cls):
    rng = np.random.default_rng(14)
    X = rng.normal(size=(20, 3))
    idx = cls().fit(X)
    idx.append(np.empty((0, 3)))
    assert idx.n_samples == 20
    d, i = idx.kneighbors(X[:3], 2)
    d2, i2 = cls().fit(X).kneighbors(X[:3], 2)
    np.testing.assert_array_equal(d, d2)
    np.testing.assert_array_equal(i, i2)
