"""Tests for the IP base-instance selection (Eq. 5)."""

import numpy as np
import pytest

from repro.core import (
    build_selection_problem,
    greedy_selection,
    solve_lp_relaxation,
    solve_selection,
)


def _problem(weights, pools, k=2, eta=10):
    w = np.asarray(weights, dtype=float)
    pool_arrays = [np.asarray(p, dtype=np.intp) for p in pools]
    return build_selection_problem(w, pool_arrays, k=k, eta=eta)


class TestBuildProblem:
    def test_membership_matrix(self):
        problem, union = _problem([1, 1, 1], [[0, 1], [1, 2]])
        np.testing.assert_array_equal(union, [0, 1, 2])
        np.testing.assert_array_equal(
            problem.membership, [[True, True, False], [False, True, True]]
        )

    def test_lower_clamped_to_pool_size(self):
        problem, _ = _problem([1, 1], [[0, 1]], k=5, eta=10)
        assert problem.lower[0] == 2  # pool smaller than k+1

    def test_upper_at_least_lower(self):
        problem, _ = _problem([1] * 5, [[0, 1, 2, 3, 4]], k=3, eta=2)
        assert problem.upper[0] >= problem.lower[0]

    def test_weight_length_mismatch_raises(self):
        with pytest.raises(ValueError, match="weights length"):
            _problem([1, 1], [[0, 1, 2]])


class TestSolvers:
    def test_lp_relaxation_feasible(self):
        problem, _ = _problem([3, 1, 1, 1], [[0, 1], [2, 3]], k=1, eta=4)
        frac = solve_lp_relaxation(problem)
        assert frac is not None
        counts = problem.membership.astype(float) @ frac
        assert np.all(counts >= problem.lower - 1e-6)
        assert np.all(counts <= problem.upper + 1e-6)

    def test_solution_respects_bounds(self):
        rng = np.random.default_rng(0)
        pools = [rng.choice(30, size=10, replace=False) for _ in range(3)]
        union = np.unique(np.concatenate(pools))
        weights = rng.choice([1.0, 3.0], size=union.size)
        problem, _ = build_selection_problem(weights, pools, k=2, eta=12)
        chosen = solve_selection(problem)
        counts = problem.membership.astype(int) @ chosen
        assert np.all(counts >= problem.lower)
        assert np.all(counts <= problem.upper)

    def test_prefers_heavy_weights(self):
        # Two pools, disjoint; one candidate per pool much heavier.
        problem, union = _problem(
            [10.0, 1.0, 1.0, 10.0, 1.0, 1.0],
            [[0, 1, 2], [3, 4, 5]],
            k=1,
            eta=4,
        )
        chosen = solve_selection(problem)
        assert chosen[0] and chosen[3]

    def test_greedy_fallback_feasible(self):
        problem, _ = _problem([1, 2, 3, 4], [[0, 1, 2, 3]], k=2, eta=3)
        chosen = greedy_selection(problem)
        counts = problem.membership.astype(int) @ chosen
        assert np.all(counts >= problem.lower)
        assert np.all(counts <= problem.upper)

    def test_greedy_picks_heaviest_for_lower_bound(self):
        problem, _ = _problem([1, 5, 2, 4], [[0, 1, 2, 3]], k=1, eta=2)
        chosen = greedy_selection(problem)
        # lower bound 2: the two heaviest (indices 1, 3) must be chosen.
        assert chosen[1] and chosen[3]

    def test_empty_problem(self):
        problem, union = build_selection_problem(
            np.empty(0), [], k=2, eta=10
        )
        assert solve_selection(problem).size == 0

    def test_shared_instance_between_rules(self):
        # Instance 1 is in both pools; selecting it serves both lower bounds.
        problem, union = _problem([1.0, 5.0, 1.0], [[0, 1], [1, 2]], k=1, eta=2)
        chosen = solve_selection(problem)
        counts = problem.membership.astype(int) @ chosen
        assert np.all(counts >= problem.lower)

    def test_repair_does_not_break_other_rules(self):
        # Rule 0 over-covered; removal of shared instance must not push
        # rule 1 below its lower bound.
        rng = np.random.default_rng(1)
        pools = [np.arange(8), np.array([7, 8])]
        weights = np.ones(9)
        problem, _ = build_selection_problem(weights, pools, k=1, eta=4)
        chosen = solve_selection(problem)
        counts = problem.membership.astype(int) @ chosen
        assert counts[1] >= problem.lower[1]
