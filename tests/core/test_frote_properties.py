"""Property-based tests of FROTE's run-level invariants.

These complement the example-based tests in ``test_frote.py``: for
arbitrary small configurations and data seeds, the invariants of
Algorithm 1 must hold — monotone loss on acceptance, quota/iteration
bounds, dataset growth accounting, provenance consistency, and
rule-satisfaction of all synthetic rows.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import FROTE, SYNTHETIC, FroteConfig
from repro.data import Dataset, Table, make_schema
from repro.models import GaussianNB, make_algorithm
from repro.rules import FeedbackRule, FeedbackRuleSet, Predicate, clause


def _make_dataset(seed: int, n: int) -> Dataset:
    schema = make_schema(
        numeric=["a", "b"], categorical={"c": ("u", "v", "w")}
    )
    rng = np.random.default_rng(seed)
    t = Table(
        schema,
        {
            "a": rng.uniform(0, 10, n),
            "b": rng.normal(0, 1, n),
            "c": rng.integers(0, 3, n),
        },
    )
    y = ((t.column("a") > 5) ^ (t.column("c") == 0)).astype(np.int64)
    return Dataset(t, y, ("no", "yes"))


def _make_frs(seed: int) -> FeedbackRuleSet:
    rng = np.random.default_rng(seed + 10_000)
    lo = float(rng.uniform(1, 4))
    hi = lo + float(rng.uniform(1, 4))
    target = int(rng.integers(0, 2))
    return FeedbackRuleSet(
        (
            FeedbackRule.deterministic(
                clause(Predicate("a", ">=", lo), Predicate("a", "<", hi)),
                target,
                2,
            ),
        )
    )


# GaussianNB is the fastest trainer; properties are about the loop, not
# the model.
_ALGORITHM = make_algorithm(lambda: GaussianNB())


@settings(max_examples=12, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(
    seed=st.integers(min_value=0, max_value=10**6),
    tau=st.integers(min_value=1, max_value=6),
    eta=st.integers(min_value=1, max_value=15),
    q=st.floats(min_value=0.05, max_value=1.0),
    mod=st.sampled_from(["none", "relabel", "drop"]),
)
def test_run_invariants(seed, tau, eta, q, mod):
    dataset = _make_dataset(seed, 120)
    frs = _make_frs(seed)
    cfg = FroteConfig(
        tau=tau, q=q, eta=eta, mod_strategy=mod, random_state=seed
    )
    result = FROTE(_ALGORITHM, frs, cfg).run(dataset)

    # 1. Iteration and history bounds.
    assert result.iterations <= tau
    assert len(result.history) <= tau

    # 2. Growth accounting: final size = input - dropped + added.
    assert result.dataset.n == dataset.n - result.n_dropped + result.n_added

    # 3. Quota: n_added never exceeds the quota by more than one batch.
    # The quota rounds half-to-even (FroteConfig.oversampling_quota), so
    # the bound must use the same rounding — int(q * n) truncates and is
    # one short whenever q·n lands on .5 (e.g. q=0.0625, n=120).
    n_input = dataset.n - result.n_dropped
    assert result.n_added <= cfg.oversampling_quota(n_input) + eta

    # 4. Provenance matches the dataset row for row.
    assert result.provenance is not None
    assert result.provenance.n == result.dataset.n
    assert result.provenance.counts()[SYNTHETIC] == result.n_added

    # 5. Every synthetic row satisfies its generating rule.
    synth_rows = np.flatnonzero(result.provenance.kind == SYNTHETIC)
    if synth_rows.size:
        synth = result.dataset.X.take(synth_rows)
        for r, rule in enumerate(frs):
            rows_r = result.provenance.rule_index[synth_rows] == r
            if rows_r.any():
                sub = synth.loc_mask(rows_r)
                assert rule.coverage_mask(sub).all()

    # 6. Accepted-batch losses are strictly decreasing.
    accepted_losses = [
        rec.candidate_loss for rec in result.history if rec.accepted
    ]
    assert all(
        b < a + 1e-12 for a, b in zip(accepted_losses, accepted_losses[1:])
    )

    # 7. Synthetic labels come from the rules' supports.
    if synth_rows.size:
        labels = result.dataset.y[synth_rows]
        for r, rule in enumerate(frs):
            rows_r = result.provenance.rule_index[synth_rows] == r
            if rows_r.any():
                pi = rule.pi_array()
                assert np.all(pi[labels[rows_r]] > 0)


@settings(max_examples=8, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(seed=st.integers(min_value=0, max_value=10**6))
def test_determinism_property(seed):
    """Identical configuration and data produce identical results."""
    dataset = _make_dataset(seed, 100)
    frs = _make_frs(seed)
    cfg = FroteConfig(tau=3, q=0.5, eta=8, random_state=seed)
    a = FROTE(_ALGORITHM, frs, cfg).run(dataset)
    b = FROTE(_ALGORITHM, frs, cfg).run(dataset)
    assert a.n_added == b.n_added
    assert a.iterations == b.iterations
    np.testing.assert_array_equal(a.dataset.y, b.dataset.y)
    np.testing.assert_allclose(
        a.dataset.X.column("a"), b.dataset.X.column("a")
    )


@settings(max_examples=8, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(
    seed=st.integers(min_value=0, max_value=10**6),
    n=st.integers(min_value=30, max_value=200),
)
def test_original_rows_never_mutated_without_mod(seed, n):
    """With mod_strategy='none' the input rows pass through bit-identical."""
    dataset = _make_dataset(seed, n)
    frs = _make_frs(seed)
    cfg = FroteConfig(tau=2, q=0.5, eta=8, mod_strategy="none", random_state=seed)
    result = FROTE(_ALGORITHM, frs, cfg).run(dataset)
    np.testing.assert_array_equal(result.dataset.y[: dataset.n], dataset.y)
    for col in dataset.X.schema.names:
        np.testing.assert_array_equal(
            result.dataset.X.column(col)[: dataset.n], dataset.X.column(col)
        )
