"""Tests for the FROTE main loop (Algorithm 1)."""

import numpy as np
import pytest

from repro.core import FROTE, FroteConfig, evaluate_model, run_frote
from repro.models import LogisticRegression, make_algorithm
from repro.rules import FeedbackRule, FeedbackRuleSet, Predicate, clause


@pytest.fixture
def algorithm():
    return make_algorithm(lambda: LogisticRegression(max_iter=200))


@pytest.fixture
def flip_rule(mixed_dataset):
    """A rule that contradicts the data: young high-earners -> deny."""
    return FeedbackRuleSet(
        (
            FeedbackRule.deterministic(
                clause(
                    Predicate("age", "<", 35.0),
                    Predicate("income", ">", 120.0),
                ),
                0,
                2,
                name="flip",
            ),
        )
    )


class TestConfig:
    def test_defaults_match_paper(self):
        cfg = FroteConfig()
        assert cfg.tau == 200 and cfg.q == 0.5 and cfg.k == 5
        assert cfg.random_state == 42

    def test_effective_eta_uniform_quota(self):
        cfg = FroteConfig(tau=100, q=0.5)
        assert cfg.effective_eta(1000) == 5

    def test_effective_eta_explicit(self):
        assert FroteConfig(eta=20).effective_eta(10**6) == 20

    def test_quota(self):
        assert FroteConfig(q=0.5).oversampling_quota(100) == 50

    def test_quota_rounding_matches_effective_eta(self):
        # Regression: the quota used int() (floor) while effective_eta used
        # round(); both must use the same rounding rule.
        cfg = FroteConfig(tau=1, q=0.7)
        for n in (1, 3, 7, 99, 101, 1234):
            assert cfg.oversampling_quota(n) == int(round(0.7 * n))
            assert cfg.effective_eta(n) == max(1, int(round(0.7 * n)))

    def test_quota_rounds_rather_than_floors(self):
        assert FroteConfig(q=0.5).oversampling_quota(75) == 38  # was 37

    def test_q_upper_bound(self):
        with pytest.raises(ValueError, match="percentage"):
            FroteConfig(q=50.0)

    def test_q_inf_means_unbounded(self):
        cfg = FroteConfig(q=float("inf"), eta=5)
        assert cfg.oversampling_quota(100) > 10**9
        assert FroteConfig(q=float("inf")).effective_eta(100) == 100

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"tau": 0},
            {"q": 0.0},
            {"q": 11.0},
            {"eta": 0},
            {"k": 0},
            {"mra_weight": 1.5},
            {"selection": "bogus"},
            {"mod_strategy": "bogus"},
            {"objective": "bogus"},
        ],
    )
    def test_invalid_config_raises(self, kwargs):
        with pytest.raises(ValueError):
            FroteConfig(**kwargs)

    def test_unknown_selection_suggests_close_match(self):
        with pytest.raises(ValueError, match="did you mean 'random'"):
            FroteConfig(selection="randam")

    def test_unknown_mod_strategy_enumerates_registered(self):
        with pytest.raises(ValueError, match="drop, none, relabel"):
            FroteConfig(mod_strategy="bogus")

    def test_registered_plugin_accepted(self):
        from repro.engine import SELECTORS, register_selector

        @register_selector("config-test-plugin")
        class Plugin:
            def select(self, bp, eta, ctx):  # pragma: no cover
                return []

        try:
            cfg = FroteConfig(selection="config-test-plugin")
            assert cfg.selection == "config-test-plugin"
        finally:
            SELECTORS.unregister("config-test-plugin")


class TestRun:
    def test_improves_training_objective(self, mixed_dataset, algorithm, flip_rule):
        cfg = FroteConfig(tau=10, q=1.0, eta=15, mod_strategy="none", random_state=0)
        result = FROTE(algorithm, flip_rule, cfg).run(mixed_dataset)
        init = result.initial_evaluation.loss_equal()
        final = result.final_evaluation.loss_equal()
        assert final <= init

    def test_quota_respected(self, mixed_dataset, algorithm, flip_rule):
        cfg = FroteConfig(tau=50, q=0.2, eta=10, random_state=0)
        result = FROTE(algorithm, flip_rule, cfg).run(mixed_dataset)
        # n may exceed quota by at most one batch (the loop condition is
        # checked before generation).
        assert result.n_added <= int(0.2 * mixed_dataset.n) + 10

    def test_iteration_limit(self, mixed_dataset, algorithm, flip_rule):
        cfg = FroteConfig(tau=3, q=5.0, eta=5, random_state=0)
        result = FROTE(algorithm, flip_rule, cfg).run(mixed_dataset)
        assert result.iterations <= 3
        assert len(result.history) <= 3

    def test_rejected_batches_not_added(self, mixed_dataset, algorithm, flip_rule):
        cfg = FroteConfig(tau=10, q=1.0, eta=10, random_state=0)
        result = FROTE(algorithm, flip_rule, cfg).run(mixed_dataset)
        accepted_total = sum(r.n_generated for r in result.history if r.accepted)
        assert result.n_added == accepted_total

    def test_augmented_dataset_contains_original(self, mixed_dataset, algorithm, flip_rule):
        cfg = FroteConfig(tau=5, q=0.5, eta=10, mod_strategy="none", random_state=0)
        result = FROTE(algorithm, flip_rule, cfg).run(mixed_dataset)
        assert result.dataset.n == mixed_dataset.n + result.n_added
        np.testing.assert_allclose(
            result.dataset.X.column("age")[: mixed_dataset.n],
            mixed_dataset.X.column("age"),
        )

    def test_synthetic_rows_satisfy_rule(self, mixed_dataset, algorithm, flip_rule):
        cfg = FroteConfig(tau=10, q=0.5, eta=10, mod_strategy="none", random_state=0)
        result = FROTE(algorithm, flip_rule, cfg).run(mixed_dataset)
        if result.n_added:
            synth = result.dataset.X.take(
                np.arange(mixed_dataset.n, result.dataset.n)
            )
            assert flip_rule[0].coverage_mask(synth).all()

    def test_relabel_strategy_applied(self, mixed_dataset, algorithm, flip_rule):
        cfg = FroteConfig(tau=2, q=0.1, eta=5, mod_strategy="relabel", random_state=0)
        result = FROTE(algorithm, flip_rule, cfg).run(mixed_dataset)
        assert result.n_relabelled > 0
        rule = flip_rule[0]
        original_rows = result.dataset.take(np.arange(mixed_dataset.n))
        cov = rule.coverage_mask(original_rows.X)
        assert (original_rows.y[cov] == rule.target_class).all()

    def test_drop_strategy_shrinks_dataset(self, mixed_dataset, algorithm, flip_rule):
        cfg = FroteConfig(tau=2, q=0.1, eta=5, mod_strategy="drop", random_state=0)
        result = FROTE(algorithm, flip_rule, cfg).run(mixed_dataset)
        assert result.n_dropped > 0

    def test_eval_callback_recorded(self, mixed_dataset, algorithm, flip_rule):
        cfg = FroteConfig(tau=8, q=1.0, eta=10, random_state=0)
        calls = []

        def cb(model):
            calls.append(1)
            return 0.5

        result = FROTE(algorithm, flip_rule, cfg).run(mixed_dataset, eval_callback=cb)
        accepted = [r for r in result.history if r.accepted]
        assert len(calls) == len(accepted)
        assert all(r.external_score == 0.5 for r in accepted)

    def test_empty_frs_raises(self, algorithm):
        with pytest.raises(ValueError, match="empty"):
            FROTE(algorithm, FeedbackRuleSet(()), FroteConfig())

    def test_reproducible(self, mixed_dataset, algorithm, flip_rule):
        cfg = FroteConfig(tau=5, q=0.5, eta=10, random_state=11)
        a = FROTE(algorithm, flip_rule, cfg).run(mixed_dataset)
        b = FROTE(algorithm, flip_rule, cfg).run(mixed_dataset)
        assert a.n_added == b.n_added
        np.testing.assert_allclose(
            a.dataset.X.column("age"), b.dataset.X.column("age")
        )

    def test_run_frote_wrapper(self, mixed_dataset, algorithm, flip_rule):
        result = run_frote(
            mixed_dataset, algorithm, flip_rule, tau=3, q=0.3, eta=5, random_state=0
        )
        assert result.iterations <= 3

    def test_ip_selection_runs(self, mixed_dataset, algorithm, flip_rule):
        cfg = FroteConfig(tau=3, q=0.5, eta=10, selection="ip", random_state=0)
        result = FROTE(algorithm, flip_rule, cfg).run(mixed_dataset)
        assert result.iterations == 3

    def test_online_selection_runs(self, mixed_dataset, algorithm, flip_rule):
        cfg = FroteConfig(tau=2, q=0.5, eta=6, selection="online", random_state=0)
        result = FROTE(algorithm, flip_rule, cfg).run(mixed_dataset)
        assert result.iterations == 2

    def test_added_fraction(self, mixed_dataset, algorithm, flip_rule):
        cfg = FroteConfig(tau=5, q=0.5, eta=10, mod_strategy="none", random_state=0)
        result = FROTE(algorithm, flip_rule, cfg).run(mixed_dataset)
        assert result.added_fraction == pytest.approx(
            result.n_added / mixed_dataset.n
        )

    def test_zero_coverage_rule_relaxation_path(self, mixed_dataset, algorithm):
        """A rule with no coverage at all must still generate (via relaxation)."""
        frs = FeedbackRuleSet(
            (
                FeedbackRule.deterministic(
                    clause(
                        Predicate("age", "<", 35.0),
                        Predicate("income", ">", 5000.0),  # impossible
                    ),
                    0,
                    2,
                ),
            )
        )
        cfg = FroteConfig(tau=5, q=0.5, eta=10, mod_strategy="none", random_state=0)
        result = FROTE(algorithm, frs, cfg).run(mixed_dataset)
        if result.n_added:
            synth = result.dataset.X.take(np.arange(mixed_dataset.n, result.dataset.n))
            assert frs[0].coverage_mask(synth).all()
