"""Tests for base-instance selection strategies."""

import numpy as np
import pytest

from repro.core import (
    IPSelector,
    RandomSelector,
    SelectionContext,
    make_selector,
    preselect_base_population,
)
from repro.core.selection import _allocate_per_rule


class TestAllocate:
    def test_even_split(self):
        assert _allocate_per_rule(10, 2) == [5, 5]

    def test_remainder_to_first(self):
        assert _allocate_per_rule(10, 3) == [4, 3, 3]

    def test_zero_rules(self):
        assert _allocate_per_rule(10, 0) == []

    def test_total_preserved(self):
        for eta in range(1, 20):
            for m in range(1, 6):
                assert sum(_allocate_per_rule(eta, m)) == eta


def _ctx(dataset, predictions=None, seed=0, frs=None):
    return SelectionContext(
        dataset,
        predictions,
        k=5,
        rng=np.random.default_rng(seed),
        frs=frs,
    )


class TestRandomSelector:
    def test_quota_honoured(self, mixed_dataset, two_rule_frs):
        bp = preselect_base_population(mixed_dataset, two_rule_frs, k=5)
        sel = RandomSelector().select(bp, 10, _ctx(mixed_dataset))
        assert sum(s.size for s in sel) == 10

    def test_positions_within_pool(self, mixed_dataset, two_rule_frs):
        bp = preselect_base_population(mixed_dataset, two_rule_frs, k=5)
        sel = RandomSelector().select(bp, 8, _ctx(mixed_dataset))
        for pop, positions in zip(bp.per_rule, sel):
            if positions.size:
                assert positions.max() < pop.size

    def test_replacement_when_quota_exceeds_pool(self, mixed_dataset, two_rule_frs):
        bp = preselect_base_population(mixed_dataset, two_rule_frs, k=5)
        huge = bp.total_size * 3
        sel = RandomSelector().select(bp, huge, _ctx(mixed_dataset))
        assert sum(s.size for s in sel) == huge

    def test_reproducible(self, mixed_dataset, two_rule_frs):
        bp = preselect_base_population(mixed_dataset, two_rule_frs, k=5)
        a = RandomSelector().select(bp, 6, _ctx(mixed_dataset, seed=3))
        b = RandomSelector().select(bp, 6, _ctx(mixed_dataset, seed=3))
        for x, y in zip(a, b):
            np.testing.assert_array_equal(x, y)


class TestIPSelector:
    def test_selects_within_pools(self, mixed_dataset, two_rule_frs):
        bp = preselect_base_population(mixed_dataset, two_rule_frs, k=5)
        preds = mixed_dataset.y.copy()
        sel = IPSelector().select(bp, 12, _ctx(mixed_dataset, preds))
        for pop, positions in zip(bp.per_rule, sel):
            if positions.size:
                assert positions.max() < pop.size

    def test_lower_bound_met_per_rule(self, mixed_dataset, two_rule_frs):
        bp = preselect_base_population(mixed_dataset, two_rule_frs, k=5)
        preds = mixed_dataset.y.copy()
        sel = IPSelector().select(bp, 20, _ctx(mixed_dataset, preds))
        for pop, positions in zip(bp.per_rule, sel):
            assert positions.size >= min(6, pop.size)

    def test_falls_back_to_labels_without_predictions(self, mixed_dataset, two_rule_frs):
        bp = preselect_base_population(mixed_dataset, two_rule_frs, k=5)
        sel = IPSelector().select(bp, 12, _ctx(mixed_dataset, None))
        assert any(s.size for s in sel)


class TestMakeSelector:
    def test_random(self):
        assert isinstance(make_selector("random"), RandomSelector)

    def test_ip(self):
        assert isinstance(make_selector("ip"), IPSelector)

    def test_online(self):
        from repro.core import OnlineProxySelector

        assert isinstance(make_selector("online"), OnlineProxySelector)

    def test_unknown_raises(self):
        with pytest.raises(ValueError, match="unknown selection"):
            make_selector("genetic")
