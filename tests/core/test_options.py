"""Typed option groups: FroteConfig expansion, back-compat, deprecation."""

import warnings

import pytest

import repro
from repro.core.config import FroteConfig
from repro.core.options import (
    JournalOptions,
    KernelOptions,
    ServeOptions,
    StorageOptions,
)


class TestFroteConfigGroups:
    def test_storage_group_equals_flat(self):
        grouped = FroteConfig(
            tau=3,
            storage=StorageOptions(max_resident_mb=1.0, shard_rows=64),
        )
        flat = FroteConfig(tau=3, max_resident_mb=1.0, shard_rows=64)
        assert grouped == flat

    def test_journal_group_equals_flat(self, tmp_path):
        grouped = FroteConfig(
            journal=JournalOptions(dir=str(tmp_path), name="s", resume=False)
        )
        flat = FroteConfig(
            journal_dir=str(tmp_path), journal_name="s", journal_resume=False
        )
        assert grouped == flat

    def test_kernel_group_equals_flat(self):
        grouped = FroteConfig(kernel=KernelOptions(incremental=True))
        assert grouped == FroteConfig(incremental=True)

    def test_flat_agreeing_with_group_is_fine(self):
        config = FroteConfig(
            max_resident_mb=1.0, storage=StorageOptions(max_resident_mb=1.0)
        )
        assert config.max_resident_mb == 1.0

    def test_flat_conflicting_with_group_raises(self):
        with pytest.raises(ValueError, match="conflicting values"):
            FroteConfig(
                max_resident_mb=2.0,
                storage=StorageOptions(max_resident_mb=1.0),
            )

    def test_group_validation_still_applies(self):
        # shard_rows without a budget is invalid however it is spelled.
        with pytest.raises(ValueError, match="shard_rows"):
            FroteConfig(storage=StorageOptions(shard_rows=64))

    def test_options_properties_reconstruct_groups(self, tmp_path):
        config = FroteConfig(
            max_resident_mb=1.0,
            shard_rows=32,
            journal_dir=str(tmp_path),
            incremental=True,
        )
        assert config.storage_options == StorageOptions(
            max_resident_mb=1.0, shard_rows=32
        )
        assert config.journal_options == JournalOptions(dir=str(tmp_path))
        assert config.kernel_options == KernelOptions(incremental=True)

    def test_groups_are_frozen_and_hashable(self):
        opts = StorageOptions(max_resident_mb=1.0)
        with pytest.raises(AttributeError):
            opts.max_resident_mb = 2.0
        assert hash(opts) == hash(StorageOptions(max_resident_mb=1.0))


class TestConfigureGroups:
    def test_flat_grouped_kwarg_warns_deprecation(self, mixed_dataset):
        session = repro.edit(mixed_dataset)
        with pytest.warns(DeprecationWarning, match="max_resident_mb"):
            session.configure(max_resident_mb=1.0)
        assert session._config_kwargs["max_resident_mb"] == 1.0

    def test_warning_names_the_group(self, mixed_dataset):
        with pytest.warns(DeprecationWarning, match="journal=...Options"):
            repro.edit(mixed_dataset).configure(journal_dir="/tmp/j")

    def test_groups_do_not_warn(self, mixed_dataset, recwarn):
        session = repro.edit(mixed_dataset).configure(
            tau=3,
            storage=StorageOptions(max_resident_mb=1.0, shard_rows=64),
            kernel=KernelOptions(incremental=True),
        )
        assert not [
            w for w in recwarn if issubclass(w.category, DeprecationWarning)
        ]
        assert session._config_kwargs["max_resident_mb"] == 1.0
        assert session._config_kwargs["incremental"] is True

    def test_ungrouped_flat_kwargs_do_not_warn(self, mixed_dataset, recwarn):
        repro.edit(mixed_dataset).configure(tau=3, q=0.5, random_state=0)
        assert not [
            w for w in recwarn if issubclass(w.category, DeprecationWarning)
        ]

    def test_later_group_wins_over_earlier_flat(self, mixed_dataset):
        session = repro.edit(mixed_dataset)
        with pytest.warns(DeprecationWarning):
            session.configure(max_resident_mb=2.0)
        session.configure(storage=StorageOptions(max_resident_mb=1.0))
        assert session._config_kwargs["max_resident_mb"] == 1.0

    def test_same_call_conflict_raises(self, mixed_dataset):
        session = repro.edit(mixed_dataset)
        with pytest.raises(ValueError, match="conflicting values"), \
                warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            session.configure(
                max_resident_mb=2.0,
                storage=StorageOptions(max_resident_mb=1.0),
            )

    def test_sugars_do_not_warn(self, mixed_dataset, tmp_path, recwarn):
        (
            repro.edit(mixed_dataset)
            .incremental()
            .out_of_core(max_resident_mb=1.0, shard_rows=64)
            .journaled(tmp_path, name="s")
        )
        assert not [
            w for w in recwarn if issubclass(w.category, DeprecationWarning)
        ]

    def test_grouped_run_equals_flat_run(self, mixed_dataset, single_rule_frs):
        def build(**cfg):
            return (
                repro.edit(mixed_dataset)
                .with_rules(single_rule_frs)
                .with_algorithm("LR")
                .configure(tau=2, q=0.5, random_state=0, **cfg)
                .run()
            )

        grouped = build(kernel=KernelOptions(incremental=True))
        with pytest.warns(DeprecationWarning):
            flat = build(incremental=True)
        assert grouped.history == flat.history
        assert grouped.n_added == flat.n_added


class TestServeOptions:
    def test_bundle_supplies_defaults(self):
        from repro.serve import EditService

        service = EditService(
            options=ServeOptions(
                max_active_sessions=3, max_pending=5, event_queue_size=9
            )
        )
        assert service.admission.max_active == 3
        assert service.admission.max_pending == 5
        assert service.event_queue_size == 9

    def test_explicit_flat_kwarg_overrides_bundle(self):
        from repro.serve import EditService

        service = EditService(
            options=ServeOptions(max_active_sessions=3, event_queue_size=9),
            max_active_sessions=7,
        )
        assert service.admission.max_active == 7
        assert service.event_queue_size == 9

    def test_memory_budget_flows_through_bundle(self):
        from repro.serve import EditService

        service = EditService(options=ServeOptions(memory_budget_mb=16.0))
        assert service.pool is not None
        assert service.pool.total_mb == 16.0
        assert service.default_session_mb == 2.0
