"""Tests for the inflection-point analysis (paper §6)."""

import numpy as np
import pytest

from repro.core import InflectionTrace, format_inflection, trace_inflection
from repro.data import train_test_split
from repro.models import LogisticRegression, make_algorithm
from repro.rules import FeedbackRule, FeedbackRuleSet, Predicate, clause


class TestInflectionTrace:
    def _trace(self, j):
        n = len(j)
        return InflectionTrace(
            n_added=np.arange(n) * 10,
            mra=np.linspace(0.2, 0.9, n),
            f1_outside=np.linspace(0.9, 0.5, n),
            j_weighted=np.asarray(j, dtype=float),
        )

    def test_detects_first_decrease(self):
        t = self._trace([0.5, 0.6, 0.65, 0.6, 0.55])
        assert t.inflection_index == 3
        assert t.inflection_n_added == 30

    def test_monotone_has_no_inflection(self):
        t = self._trace([0.5, 0.6, 0.7])
        assert t.inflection_index is None
        assert t.inflection_n_added is None

    def test_format_marks_inflection(self):
        out = format_inflection(self._trace([0.5, 0.6, 0.55]))
        assert "<- inflection" in out

    def test_format_no_inflection_note(self):
        out = format_inflection(self._trace([0.5, 0.6]))
        assert "no inflection" in out


class TestTraceInflection:
    def test_sweep_runs_and_aligns(self, mixed_dataset):
        frs = FeedbackRuleSet(
            (
                FeedbackRule.deterministic(
                    clause(Predicate("age", "<", 35.0)), 0, 2
                ),
            )
        )
        train, test = train_test_split(mixed_dataset, random_state=0)
        alg = make_algorithm(lambda: LogisticRegression())
        trace = trace_inflection(
            train, test, alg, frs, eta=10, max_iterations=5, random_state=0
        )
        assert trace.n_added.size == trace.mra.size == trace.j_weighted.size
        assert trace.n_added[0] == 0
        # With accept_equal + mra_weight=1 the sweep keeps adding batches.
        assert trace.n_added.size >= 2

    def test_mra_chasing_raises_mra(self, mixed_dataset):
        frs = FeedbackRuleSet(
            (
                FeedbackRule.deterministic(
                    clause(
                        Predicate("age", "<", 35.0),
                        Predicate("income", ">", 120.0),
                    ),
                    0,
                    2,
                ),
            )
        )
        train, test = train_test_split(mixed_dataset, random_state=1)
        alg = make_algorithm(lambda: LogisticRegression())
        trace = trace_inflection(
            train, test, alg, frs, eta=15, max_iterations=8, random_state=1
        )
        assert trace.mra[-1] >= trace.mra[0] - 0.05
