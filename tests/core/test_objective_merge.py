"""Delta-aware objective merge: additive carriers on :class:`Evaluation`.

Pins the two merge axes the feedback layer relies on:

* **ruleset axis** — :func:`append_rule_evaluation` derives the extended
  evaluation in O(new rule) and matches a from-scratch pass *bitwise*;
* **dataset axis** — :func:`merge_evaluations` over a disjoint row
  partition is integer-exact on counts/F1 and exact-ratio on the means
  (documented last-ulp tolerance from summation order).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.objective import (
    Evaluation,
    append_rule_evaluation,
    evaluate_predictions,
    merge_evaluations,
)
from repro.metrics.classification import confusion_matrix, default_f1, f1_from_confusion
from repro.rules import FeedbackRule, FeedbackRuleSet, Predicate, clause

from conftest import make_tiny_dataset

DATASET = make_tiny_dataset(n=200, seed=3)

RULE_A = FeedbackRule.deterministic(
    clause(Predicate("x1", "<", -0.5)), 1, 2, name="a"
)
RULE_B = FeedbackRule.deterministic(
    clause(Predicate("x1", ">", 0.8)), 0, 2, name="b"
)


def predictions(seed=0):
    rng = np.random.default_rng(seed)
    return rng.integers(0, 2, DATASET.n).astype(np.int64)


class TestAppendAxis:
    def test_append_matches_full_evaluation_bitwise(self):
        y_pred = predictions()
        base_frs = FeedbackRuleSet((RULE_A,))
        base = evaluate_predictions(y_pred, DATASET, base_frs)
        assigned = base_frs.assign(DATASET.X) >= 0
        moved = (~assigned) & RULE_B.coverage_mask(DATASET.X)

        derived = append_rule_evaluation(base, y_pred, DATASET, RULE_B, moved)
        full = evaluate_predictions(
            y_pred, DATASET, FeedbackRuleSet((RULE_A, RULE_B))
        )
        assert derived.mra == full.mra
        assert derived.f1_outside == full.f1_outside
        assert derived.n_covered == full.n_covered
        assert derived.n_outside == full.n_outside
        np.testing.assert_array_equal(derived.per_rule_mra, full.per_rule_mra)
        np.testing.assert_array_equal(derived.per_rule_count, full.per_rule_count)
        np.testing.assert_array_equal(
            derived.per_rule_agreement, full.per_rule_agreement
        )
        np.testing.assert_array_equal(
            derived.outside_confusion, full.outside_confusion
        )

    def test_append_with_empty_coverage(self):
        y_pred = predictions()
        base_frs = FeedbackRuleSet((RULE_A,))
        base = evaluate_predictions(y_pred, DATASET, base_frs)
        nowhere = FeedbackRule.deterministic(
            clause(Predicate("x1", ">", 99.0)), 0, 2, name="nowhere"
        )
        derived = append_rule_evaluation(
            base, y_pred, DATASET, nowhere, np.zeros(DATASET.n, dtype=bool)
        )
        assert derived.mra == base.mra
        assert derived.f1_outside == base.f1_outside
        assert np.isnan(derived.per_rule_mra[-1])
        assert derived.per_rule_count[-1] == 0

    def test_requires_merge_carriers(self):
        legacy = Evaluation(
            per_rule_mra=np.array([1.0]),
            per_rule_count=np.array([3]),
            mra=1.0,
            f1_outside=1.0,
            n_covered=3,
            n_outside=0,
        )
        assert not legacy.mergeable
        with pytest.raises(ValueError, match="merge fields"):
            append_rule_evaluation(
                legacy, predictions(), DATASET, RULE_B,
                np.zeros(DATASET.n, dtype=bool),
            )


class TestDatasetAxis:
    def split(self):
        idx = np.arange(DATASET.n)
        return DATASET.take(idx[::2]), DATASET.take(idx[1::2]), idx

    def test_merge_partition_counts_are_integer_exact(self):
        y_pred = predictions()
        frs = FeedbackRuleSet((RULE_A, RULE_B))
        left, right, idx = self.split()
        merged = merge_evaluations(
            evaluate_predictions(y_pred[idx[::2]], left, frs),
            evaluate_predictions(y_pred[idx[1::2]], right, frs),
        )
        whole = evaluate_predictions(y_pred, DATASET, frs)
        # Counts and confusion are additive -> F1 merges bit-for-bit.
        np.testing.assert_array_equal(merged.per_rule_count, whole.per_rule_count)
        np.testing.assert_array_equal(
            merged.outside_confusion, whole.outside_confusion
        )
        assert merged.f1_outside == whole.f1_outside
        assert merged.n_covered == whole.n_covered
        assert merged.n_outside == whole.n_outside
        # Means re-derive from summed carriers; summation order may move
        # the last ulp, which is the documented dataset-axis tolerance.
        assert merged.mra == pytest.approx(whole.mra, abs=1e-12)
        np.testing.assert_allclose(
            merged.per_rule_mra, whole.per_rule_mra, atol=1e-12
        )

    def test_merged_mean_is_summed_carrier_over_count(self):
        y_pred = predictions()
        frs = FeedbackRuleSet((RULE_A, RULE_B))
        left, right, idx = self.split()
        a = evaluate_predictions(y_pred[idx[::2]], left, frs)
        b = evaluate_predictions(y_pred[idx[1::2]], right, frs)
        merged = merge_evaluations(a, b)
        for r in range(2):
            cnt = a.per_rule_count[r] + b.per_rule_count[r]
            if cnt == 0:
                assert np.isnan(merged.per_rule_mra[r])
                continue
            total = a.per_rule_agreement[r] + b.per_rule_agreement[r]
            assert merged.per_rule_mra[r] == total / cnt

    def test_merge_shape_mismatch_errors(self):
        y_pred = predictions()
        one = evaluate_predictions(y_pred, DATASET, FeedbackRuleSet((RULE_A,)))
        two = evaluate_predictions(
            y_pred, DATASET, FeedbackRuleSet((RULE_A, RULE_B))
        )
        with pytest.raises(ValueError, match="different rule sets"):
            merge_evaluations(one, two)


class TestConfusionF1:
    @pytest.mark.parametrize("n_classes", [2, 3])
    def test_f1_from_confusion_matches_default_f1(self, n_classes):
        rng = np.random.default_rng(9)
        y_true = rng.integers(0, n_classes, 300)
        y_pred = rng.integers(0, n_classes, 300)
        cm = confusion_matrix(y_true, y_pred, n_classes=n_classes)
        assert f1_from_confusion(cm) == default_f1(
            y_true, y_pred, n_classes=n_classes
        )

    def test_empty_partition_scores_one(self):
        assert f1_from_confusion(np.zeros((2, 2), dtype=np.int64)) == 1.0
