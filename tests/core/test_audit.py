"""Tests for edit lineage and audit records."""

import json

import numpy as np
import pytest

from repro.core import (
    FROTE,
    ORIGINAL,
    RELABELLED,
    SYNTHETIC,
    EditAudit,
    FroteConfig,
    RowProvenance,
)
from repro.models import LogisticRegression, make_algorithm
from repro.rules import FeedbackRule, FeedbackRuleSet, Predicate, clause


class TestRowProvenance:
    def test_for_input_all_original(self):
        p = RowProvenance.for_input(5)
        assert (p.kind == ORIGINAL).all()
        assert (p.rule_index == -1).all()
        assert p.n == 5

    def test_mark_relabelled(self):
        p = RowProvenance.for_input(5)
        p.mark_relabelled(np.array([1, 3]), np.array([0, 1]), np.array([1, 0]))
        assert p.kind[1] == RELABELLED and p.kind[3] == RELABELLED
        assert p.rule_index[3] == 1
        assert p.original_label[1] == 1
        assert p.kind[0] == ORIGINAL

    def test_extend_synthetic(self):
        p = RowProvenance.for_input(3)
        p2 = p.extend_synthetic([2, 1], iteration=4)
        assert p2.n == 6
        assert (p2.kind[3:] == SYNTHETIC).all()
        assert p2.rule_index[3:].tolist() == [0, 0, 1]
        assert (p2.iteration[3:] == 4).all()
        # Original object untouched.
        assert p.n == 3

    def test_drop_rows(self):
        p = RowProvenance.for_input(4)
        mask = np.array([False, True, False, True])
        p2 = p.drop_rows(mask)
        assert p2.n == 2

    def test_counts(self):
        p = RowProvenance.for_input(4)
        p.mark_relabelled(np.array([0]), np.array([0]), np.array([1]))
        p = p.extend_synthetic([3], iteration=0)
        assert p.counts() == {ORIGINAL: 3, RELABELLED: 1, SYNTHETIC: 3}

    def test_synthetic_by_rule(self):
        p = RowProvenance.for_input(2).extend_synthetic([2, 0, 5], iteration=0)
        assert p.synthetic_by_rule() == {0: 2, 2: 5}


class TestFroteProvenance:
    @pytest.fixture
    def run(self, mixed_dataset):
        frs = FeedbackRuleSet(
            (
                FeedbackRule.deterministic(
                    clause(
                        Predicate("age", "<", 35.0),
                        Predicate("income", ">", 120.0),
                    ),
                    0,
                    2,
                ),
            )
        )
        alg = make_algorithm(lambda: LogisticRegression())
        cfg = FroteConfig(tau=6, q=0.5, eta=10, random_state=0)
        return frs, FROTE(alg, frs, cfg).run(mixed_dataset), mixed_dataset

    def test_provenance_rows_match_dataset(self, run):
        _, result, _ = run
        assert result.provenance is not None
        assert result.provenance.n == result.dataset.n

    def test_synthetic_count_matches(self, run):
        _, result, _ = run
        counts = result.provenance.counts()
        assert counts[SYNTHETIC] == result.n_added

    def test_relabelled_count_matches(self, run):
        _, result, _ = run
        counts = result.provenance.counts()
        assert counts[RELABELLED] == result.n_relabelled

    def test_drop_strategy_provenance(self, mixed_dataset):
        frs = FeedbackRuleSet(
            (
                FeedbackRule.deterministic(
                    clause(Predicate("age", "<", 35.0)), 0, 2
                ),
            )
        )
        alg = make_algorithm(lambda: LogisticRegression())
        cfg = FroteConfig(tau=2, q=0.1, eta=5, mod_strategy="drop", random_state=0)
        result = FROTE(alg, frs, cfg).run(mixed_dataset)
        assert result.provenance.n == result.dataset.n
        assert result.provenance.counts()[RELABELLED] == 0

    def test_audit_from_result(self, run):
        frs, result, _ = run
        audit = result.audit(frs, mod_strategy="relabel", operator="tester")
        assert audit.n_synthetic == result.n_added
        assert audit.metadata["operator"] == "tester"
        assert len(audit.rules) == 1


class TestEditAudit:
    def _audit(self):
        p = RowProvenance.for_input(4).extend_synthetic([2], iteration=0)
        return EditAudit(
            rules=["IF age < 30 THEN class=1"],
            mod_strategy="relabel",
            n_input=4,
            n_relabelled=1,
            n_dropped=0,
            n_synthetic=2,
            iterations=3,
            accepted_iterations=1,
            initial_loss=0.4,
            final_loss=0.2,
            provenance=p,
        )

    def test_to_dict_serializable(self):
        d = self._audit().to_dict()
        json.dumps(d)  # must not raise
        assert d["provenance_counts"][SYNTHETIC] == 2
        assert d["synthetic_by_rule"] == {"0": 2}

    def test_to_json_roundtrip(self):
        payload = json.loads(self._audit().to_json())
        assert payload["n_synthetic"] == 2
        assert payload["final_loss"] == 0.2

    def test_summary_readable(self):
        s = self._audit().summary()
        assert "FROTE edit audit" in s
        assert "relabelled:        1" in s
        assert "IF age < 30" in s
