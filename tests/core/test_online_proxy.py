"""Tests for the online-learning objective proxy (supplement Eq. 7)."""

import numpy as np
import pytest

from repro.core import OnlineObjectiveProxy
from repro.models import LogisticRegression, make_algorithm


class TestOnlineObjectiveProxy:
    def test_baseline_close_to_model_loss(self, mixed_dataset, single_rule_frs):
        alg = make_algorithm(lambda: LogisticRegression())
        model = alg(mixed_dataset)
        preds = model.predict(mixed_dataset.X)
        proxy = OnlineObjectiveProxy(mixed_dataset, preds, single_rule_frs)
        from repro.core import evaluate_predictions

        true_loss = evaluate_predictions(
            preds, mixed_dataset, single_rule_frs
        ).loss_equal()
        assert abs(proxy.baseline_loss() - true_loss) < 0.25

    def test_score_batch_no_side_effects(self, mixed_dataset, single_rule_frs):
        alg = make_algorithm(lambda: LogisticRegression())
        model = alg(mixed_dataset)
        preds = model.predict(mixed_dataset.X)
        proxy = OnlineObjectiveProxy(mixed_dataset, preds, single_rule_frs)
        base1 = proxy.baseline_loss()
        rule = single_rule_frs[0]
        cov = rule.coverage_mask(mixed_dataset.X)
        batch_table = mixed_dataset.X.loc_mask(cov).take(np.arange(5))
        labels = np.full(5, rule.target_class, dtype=np.int64)
        proxy.score_batch(batch_table, labels)
        assert proxy.baseline_loss() == pytest.approx(base1)

    def test_aligned_batch_scores_finite(self, mixed_dataset, single_rule_frs):
        alg = make_algorithm(lambda: LogisticRegression())
        model = alg(mixed_dataset)
        preds = model.predict(mixed_dataset.X)
        proxy = OnlineObjectiveProxy(mixed_dataset, preds, single_rule_frs)
        rule = single_rule_frs[0]
        cov = rule.coverage_mask(mixed_dataset.X)
        batch_table = mixed_dataset.X.loc_mask(cov).take(np.arange(10))
        labels = np.full(10, rule.target_class, dtype=np.int64)
        score = proxy.score_batch(batch_table, labels)
        assert 0.0 <= score <= 1.0
