"""Tests for the objective (Eq. 3 complement) and its estimators."""

import numpy as np
import pytest

from repro.core import evaluate_predictions
from repro.rules import FeedbackRule, FeedbackRuleSet, Predicate, clause


class TestEvaluatePredictions:
    def test_perfect_agreement(self, mixed_dataset, single_rule_frs):
        rule = single_rule_frs[0]
        pred = mixed_dataset.y.copy()
        pred[rule.coverage_mask(mixed_dataset.X)] = rule.target_class
        ev = evaluate_predictions(pred, mixed_dataset, single_rule_frs)
        assert ev.mra == 1.0

    def test_zero_agreement(self, mixed_dataset, single_rule_frs):
        rule = single_rule_frs[0]
        pred = mixed_dataset.y.copy()
        pred[rule.coverage_mask(mixed_dataset.X)] = 1 - rule.target_class
        ev = evaluate_predictions(pred, mixed_dataset, single_rule_frs)
        assert ev.mra == 0.0

    def test_outside_f1_unaffected_by_rule_agreement(self, mixed_dataset, single_rule_frs):
        rule = single_rule_frs[0]
        cov = rule.coverage_mask(mixed_dataset.X)
        pred = mixed_dataset.y.copy()
        ev1 = evaluate_predictions(pred, mixed_dataset, single_rule_frs)
        pred2 = pred.copy()
        pred2[cov] = 1 - pred2[cov]
        ev2 = evaluate_predictions(pred2, mixed_dataset, single_rule_frs)
        assert ev1.f1_outside == ev2.f1_outside

    def test_counts_partition(self, mixed_dataset, two_rule_frs):
        pred = mixed_dataset.y
        ev = evaluate_predictions(pred, mixed_dataset, two_rule_frs)
        assert ev.n_covered + ev.n_outside == mixed_dataset.n
        assert ev.per_rule_count.sum() == ev.n_covered

    def test_per_rule_mra_nan_for_uncovered(self, mixed_dataset):
        r = FeedbackRule.deterministic(clause(Predicate("age", ">", 1000.0)), 1, 2)
        ev = evaluate_predictions(
            mixed_dataset.y, mixed_dataset, FeedbackRuleSet((r,))
        )
        assert np.isnan(ev.per_rule_mra[0])
        assert ev.mra == 1.0  # vacuous

    def test_empty_frs(self, mixed_dataset):
        ev = evaluate_predictions(mixed_dataset.y, mixed_dataset, FeedbackRuleSet(()))
        assert ev.n_covered == 0
        assert ev.mra == 1.0
        assert ev.f1_outside == 1.0

    def test_probabilistic_rule_mra(self, mixed_dataset):
        r = FeedbackRule(clause(Predicate("age", "<", 50.0)), (0.25, 0.75))
        frs = FeedbackRuleSet((r,))
        pred = np.ones(mixed_dataset.n, dtype=np.int64)
        ev = evaluate_predictions(pred, mixed_dataset, frs)
        assert ev.mra == pytest.approx(0.75)

    def test_length_mismatch_raises(self, mixed_dataset, single_rule_frs):
        with pytest.raises(ValueError, match="length"):
            evaluate_predictions(np.zeros(3, dtype=int), mixed_dataset, single_rule_frs)


class TestWeightings:
    def _eval(self, mixed_dataset, single_rule_frs):
        pred = mixed_dataset.y.copy()
        return evaluate_predictions(pred, mixed_dataset, single_rule_frs)

    def test_j_equal_weighting(self, mixed_dataset, single_rule_frs):
        ev = self._eval(mixed_dataset, single_rule_frs)
        assert ev.j_equal(0.5) == pytest.approx(0.5 * ev.mra + 0.5 * ev.f1_outside)

    def test_j_equal_custom_weight(self, mixed_dataset, single_rule_frs):
        ev = self._eval(mixed_dataset, single_rule_frs)
        assert ev.j_equal(1.0) == pytest.approx(ev.mra)
        assert ev.j_equal(0.0) == pytest.approx(ev.f1_outside)

    def test_j_weighted_uses_coverage_probability(self, mixed_dataset, single_rule_frs):
        ev = self._eval(mixed_dataset, single_rule_frs)
        p = ev.n_covered / ev.n_total
        assert ev.j_weighted() == pytest.approx(
            p * ev.mra + (1 - p) * ev.f1_outside
        )

    def test_loss_is_complement(self, mixed_dataset, single_rule_frs):
        ev = self._eval(mixed_dataset, single_rule_frs)
        assert ev.loss_equal() == pytest.approx(1.0 - ev.j_equal())

    def test_bounds(self, mixed_dataset, two_rule_frs):
        rng = np.random.default_rng(0)
        for _ in range(5):
            pred = rng.integers(0, 2, mixed_dataset.n)
            ev = evaluate_predictions(pred, mixed_dataset, two_rule_frs)
            assert 0.0 <= ev.j_equal() <= 1.0
            assert 0.0 <= ev.j_weighted() <= 1.0
