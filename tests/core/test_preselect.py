"""Tests for base population pre-selection (Algorithm 2 integration)."""

import numpy as np
import pytest

from repro.core import preselect_base_population
from repro.rules import FeedbackRule, FeedbackRuleSet, Predicate, clause


class TestPreselect:
    def test_strong_coverage_no_relaxation(self, mixed_dataset):
        r = FeedbackRule.deterministic(clause(Predicate("age", "<", 60.0)), 1, 2)
        bp = preselect_base_population(mixed_dataset, FeedbackRuleSet((r,)), k=5)
        pop = bp[0]
        assert not pop.was_relaxed
        assert pop.n_strong == pop.size
        assert pop.size == r.coverage_count(mixed_dataset.X)

    def test_thin_rule_gets_relaxed(self, mixed_dataset):
        # Impossible income condition: zero strong coverage.
        r = FeedbackRule.deterministic(
            clause(Predicate("age", "<", 60.0), Predicate("income", ">", 10_000.0)),
            1,
            2,
        )
        bp = preselect_base_population(mixed_dataset, FeedbackRuleSet((r,)), k=5)
        pop = bp[0]
        assert pop.was_relaxed
        assert pop.size >= 6  # k + 1
        assert pop.n_strong == 0

    def test_indices_point_at_covered_rows(self, mixed_dataset):
        r = FeedbackRule.deterministic(clause(Predicate("age", "<", 45.0)), 1, 2)
        bp = preselect_base_population(mixed_dataset, FeedbackRuleSet((r,)), k=5)
        ages = mixed_dataset.X.column("age")[bp[0].indices]
        assert (ages < 45.0).all()

    def test_per_rule_population_count(self, mixed_dataset, two_rule_frs):
        bp = preselect_base_population(mixed_dataset, two_rule_frs, k=5)
        assert len(bp) == 2
        assert bp[0].rule_index == 0 and bp[1].rule_index == 1

    def test_union_indices_deduplicated(self, mixed_dataset):
        r1 = FeedbackRule.deterministic(clause(Predicate("age", "<", 50.0)), 1, 2)
        r2 = FeedbackRule.deterministic(clause(Predicate("age", "<", 40.0)), 1, 2)
        bp = preselect_base_population(
            mixed_dataset, FeedbackRuleSet((r1, r2)), k=5
        )
        union = bp.union_indices
        assert len(np.unique(union)) == len(union)
        assert bp.total_size >= union.size

    def test_strong_mask_marks_exact_matches(self, mixed_dataset):
        r = FeedbackRule.deterministic(
            clause(Predicate("age", "<", 25.0), Predicate("marital", "==", "single")),
            1,
            2,
        )
        frs = FeedbackRuleSet((r,))
        bp = preselect_base_population(mixed_dataset, frs, k=5)
        pop = bp[0]
        strong_rows = pop.indices[pop.strong_mask]
        if strong_rows.size:
            mask = r.coverage_mask(mixed_dataset.X)
            assert mask[strong_rows].all()

    def test_invalid_k_raises(self, mixed_dataset, single_rule_frs):
        with pytest.raises(ValueError, match="k must be"):
            preselect_base_population(mixed_dataset, single_rule_frs, k=0)
