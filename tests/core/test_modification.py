"""Tests for the none/relabel/drop modification strategies."""

import numpy as np
import pytest

from repro.core import apply_modification
from repro.rules import FeedbackRule, FeedbackRuleSet, Predicate, clause


class TestNone:
    def test_dataset_unchanged(self, mixed_dataset, single_rule_frs):
        res = apply_modification(mixed_dataset, single_rule_frs, "none")
        assert res.dataset is mixed_dataset
        assert res.n_relabelled == 0 and res.n_dropped == 0


class TestRelabel:
    def test_covered_disagreeing_rows_relabelled(self, mixed_dataset, single_rule_frs):
        rule = single_rule_frs[0]
        res = apply_modification(
            mixed_dataset, single_rule_frs, "relabel", random_state=0
        )
        cov = rule.coverage_mask(res.dataset.X)
        assert (res.dataset.y[cov] == rule.target_class).all()

    def test_outside_rows_untouched(self, mixed_dataset, single_rule_frs):
        rule = single_rule_frs[0]
        res = apply_modification(
            mixed_dataset, single_rule_frs, "relabel", random_state=0
        )
        cov = rule.coverage_mask(mixed_dataset.X)
        np.testing.assert_array_equal(
            res.dataset.y[~cov], mixed_dataset.y[~cov]
        )

    def test_count_matches(self, mixed_dataset, single_rule_frs):
        rule = single_rule_frs[0]
        cov = rule.coverage_mask(mixed_dataset.X)
        expected = int((mixed_dataset.y[cov] != rule.target_class).sum())
        res = apply_modification(
            mixed_dataset, single_rule_frs, "relabel", random_state=0
        )
        assert res.n_relabelled == expected

    def test_probabilistic_rule_keeps_supported_labels(self, mixed_dataset):
        r = FeedbackRule(clause(Predicate("age", "<", 50.0)), (0.5, 0.5))
        frs = FeedbackRuleSet((r,))
        res = apply_modification(mixed_dataset, frs, "relabel", random_state=0)
        # Both labels have non-zero probability: nothing disagrees.
        assert res.n_relabelled == 0
        np.testing.assert_array_equal(res.dataset.y, mixed_dataset.y)

    def test_original_dataset_not_mutated(self, mixed_dataset, single_rule_frs):
        y_before = mixed_dataset.y.copy()
        apply_modification(mixed_dataset, single_rule_frs, "relabel", random_state=0)
        np.testing.assert_array_equal(mixed_dataset.y, y_before)


class TestDrop:
    def test_disagreeing_rows_removed(self, mixed_dataset, single_rule_frs):
        rule = single_rule_frs[0]
        res = apply_modification(mixed_dataset, single_rule_frs, "drop")
        cov = rule.coverage_mask(res.dataset.X)
        assert (res.dataset.y[cov] == rule.target_class).all()

    def test_sizes_add_up(self, mixed_dataset, single_rule_frs):
        res = apply_modification(mixed_dataset, single_rule_frs, "drop")
        assert res.dataset.n + res.n_dropped == mixed_dataset.n

    def test_agreeing_covered_rows_kept(self, mixed_dataset, single_rule_frs):
        rule = single_rule_frs[0]
        cov = rule.coverage_mask(mixed_dataset.X)
        agree = int((mixed_dataset.y[cov] == rule.target_class).sum())
        res = apply_modification(mixed_dataset, single_rule_frs, "drop")
        cov_after = rule.coverage_mask(res.dataset.X)
        assert int(cov_after.sum()) == agree


class TestValidation:
    def test_unknown_strategy_raises(self, mixed_dataset, single_rule_frs):
        with pytest.raises(ValueError, match="strategy"):
            apply_modification(mixed_dataset, single_rule_frs, "rewrite")

    def test_empty_frs_noop(self, mixed_dataset):
        from repro.rules import FeedbackRuleSet

        res = apply_modification(mixed_dataset, FeedbackRuleSet(()), "relabel")
        assert res.dataset is mixed_dataset

    def test_multi_rule_assignment(self, mixed_dataset, two_rule_frs):
        res = apply_modification(mixed_dataset, two_rule_frs, "relabel", random_state=0)
        assign = two_rule_frs.assign(res.dataset.X)
        for r_idx, rule in enumerate(two_rule_frs):
            rows = assign == r_idx
            assert (res.dataset.y[rows] == rule.target_class).all()
