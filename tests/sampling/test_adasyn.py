"""Tests for ADASYN."""

import numpy as np
import pytest

from repro.data import Dataset, Table, make_schema
from repro.sampling import ADASYN, adasyn_weights


def _imbalanced(n_major=80, n_minor=15, seed=0):
    rng = np.random.default_rng(seed)
    schema = make_schema(numeric=["x", "y"])
    X = np.vstack(
        [
            rng.normal([0, 0], 1.0, (n_major, 2)),
            rng.normal([2.0, 2.0], 1.0, (n_minor, 2)),
        ]
    )
    t = Table(schema, {"x": X[:, 0], "y": X[:, 1]})
    y = np.concatenate([np.zeros(n_major), np.ones(n_minor)]).astype(np.int64)
    return Dataset(t, y, ("maj", "min"))


class TestAdasynWeights:
    def test_weights_sum_to_one(self):
        ds = _imbalanced()
        w = adasyn_weights(ds.X, ds.y == 1, k=5)
        assert w.sum() == pytest.approx(1.0)
        assert w.size == int((ds.y == 1).sum())

    def test_boundary_points_weighted_higher(self):
        # Minority instance planted deep inside the majority blob must get
        # more weight than one deep inside the minority blob.
        ds = _imbalanced(seed=1)
        minority_idx = np.flatnonzero(ds.y == 1)
        x = ds.X.column("x").copy()
        y_col = ds.X.column("y").copy()
        x[minority_idx[0]] = 0.0  # deep in majority territory
        y_col[minority_idx[0]] = 0.0
        x[minority_idx[1]] = 4.0  # deep in minority territory
        y_col[minority_idx[1]] = 4.0
        t = ds.X.with_column("x", x).with_column("y", y_col)
        w = adasyn_weights(t, ds.y == 1, k=5)
        assert w[0] > w[1]

    def test_no_minority_empty(self):
        ds = _imbalanced()
        w = adasyn_weights(ds.X, np.zeros(ds.n, dtype=bool))
        assert w.size == 0

    def test_mask_shape_validated(self):
        ds = _imbalanced()
        with pytest.raises(ValueError, match="is_minority"):
            adasyn_weights(ds.X, np.zeros(3, dtype=bool))


class TestAdasyn:
    def test_balances_classes(self):
        ds = _imbalanced()
        out = ADASYN(random_state=0).fit_resample(ds)
        counts = out.class_counts()
        assert counts[0] == counts[1]

    def test_original_rows_preserved(self):
        ds = _imbalanced()
        out = ADASYN(random_state=0).fit_resample(ds)
        np.testing.assert_allclose(
            out.X.column("x")[: ds.n], ds.X.column("x")
        )

    def test_balanced_input_unchanged(self):
        ds = _imbalanced(n_major=30, n_minor=30)
        out = ADASYN(random_state=0).fit_resample(ds)
        assert out.n == ds.n

    def test_reproducible(self):
        ds = _imbalanced()
        a = ADASYN(random_state=5).fit_resample(ds)
        b = ADASYN(random_state=5).fit_resample(ds)
        np.testing.assert_allclose(a.X.column("x"), b.X.column("x"))

    def test_invalid_k_raises(self):
        with pytest.raises(ValueError, match="k must be"):
            ADASYN(k=0)

    def test_tiny_minority_skipped(self):
        ds = _imbalanced(n_major=20, n_minor=1)
        out = ADASYN(random_state=0).fit_resample(ds)
        # One minority instance cannot be interpolated; class stays rare.
        assert out.class_counts()[1] == 1
