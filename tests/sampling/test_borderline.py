"""Tests for borderline classification and Borderline-SMOTE."""

import numpy as np
import pytest

from repro.data import Dataset, Table, make_schema
from repro.sampling import (
    BORDERLINE,
    NOISY,
    SAFE,
    BorderlineSMOTE,
    classify_borderline,
)


def _two_blobs(n_per=40, seed=0, gap=6.0):
    """Two well-separated Gaussian blobs: everything is 'safe'."""
    rng = np.random.default_rng(seed)
    schema = make_schema(numeric=["x", "y"])
    X = np.vstack(
        [
            rng.normal([0, 0], 0.5, (n_per, 2)),
            rng.normal([gap, gap], 0.5, (n_per, 2)),
        ]
    )
    t = Table(schema, {"x": X[:, 0], "y": X[:, 1]})
    labels = np.repeat([0, 1], n_per)
    return t, labels


class TestClassifyBorderline:
    def test_separated_blobs_all_safe(self):
        t, labels = _two_blobs()
        analysis = classify_borderline(t, labels, k=5)
        assert analysis.count(SAFE) == t.n_rows

    def test_isolated_point_is_noisy(self):
        t, labels = _two_blobs()
        # Flip one label deep inside the other blob.
        labels = labels.copy()
        labels[0] = 1
        analysis = classify_borderline(t, labels, k=5)
        assert analysis.categories[0] == NOISY

    def test_boundary_points_borderline(self):
        rng = np.random.default_rng(1)
        schema = make_schema(numeric=["x"])
        # Interleaved stripe: ~half of each point's neighbours disagree.
        x = np.arange(40, dtype=float)
        t = Table(schema, {"x": x})
        labels = (np.arange(40) % 2).astype(np.int64)
        analysis = classify_borderline(t, labels, k=6)
        assert analysis.count(BORDERLINE) + analysis.count(NOISY) > 20

    def test_weights_default(self):
        t, labels = _two_blobs(20)
        analysis = classify_borderline(t, labels, k=5)
        np.testing.assert_allclose(analysis.weights, 1.0)  # all safe -> weight 1

    def test_custom_weights(self):
        t, labels = _two_blobs(20)
        analysis = classify_borderline(
            t, labels, k=5, weights={SAFE: 2.0, NOISY: 1.0, BORDERLINE: 9.0}
        )
        np.testing.assert_allclose(analysis.weights, 2.0)

    def test_borderline_weight_is_three_by_default(self):
        x = np.arange(30, dtype=float)
        t = Table(make_schema(numeric=["x"]), {"x": x})
        labels = (np.arange(30) % 2).astype(np.int64)
        analysis = classify_borderline(t, labels, k=4)
        border = analysis.categories == BORDERLINE
        if border.any():
            np.testing.assert_allclose(analysis.weights[border], 3.0)

    def test_label_length_mismatch_raises(self):
        t, labels = _two_blobs(10)
        with pytest.raises(ValueError, match="labels"):
            classify_borderline(t, labels[:-1])

    def test_tiny_table_all_safe(self):
        t, labels = _two_blobs(1)  # 2 rows total
        analysis = classify_borderline(t.take(np.array([0])), labels[:1])
        assert analysis.categories[0] == SAFE

    def test_invalid_band_raises(self):
        t, labels = _two_blobs(10)
        with pytest.raises(ValueError, match="borderline_band"):
            classify_borderline(t, labels, borderline_band=1.5)


class TestBorderlineSMOTE:
    def test_balances_classes(self):
        t, labels = _two_blobs(30)
        # Imbalance: drop most of class 1.
        keep = np.concatenate([np.arange(30), np.arange(30, 38)])
        ds = Dataset(t.take(keep), labels[keep], ("a", "b"))
        out = BorderlineSMOTE(random_state=0).fit_resample(ds)
        counts = out.class_counts()
        assert counts[0] == counts[1]

    def test_no_minority_instances_no_crash(self):
        t, labels = _two_blobs(5)
        ds = Dataset(t, labels, ("a", "b"))
        out = BorderlineSMOTE(random_state=0).fit_resample(ds)
        assert out.n >= ds.n
