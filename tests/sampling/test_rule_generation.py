"""Tests for FROTE's rule-constrained synthetic instance generator.

The central invariant (paper §4.2): every generated instance satisfies the
original, unrelaxed feedback rule, and its label follows the rule's π.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.rules import FeedbackRule, Predicate, clause
from repro.sampling import (
    NumericWindow,
    RuleConstrainedGenerator,
    pick_categorical,
    sample_in_window,
    window_from_conditions,
)


class TestNumericWindow:
    def test_bounds_folded(self):
        w = window_from_conditions(
            (Predicate("x", ">", 1.0), Predicate("x", "<=", 5.0))
        )
        assert (w.lo, w.hi, w.lo_strict, w.hi_strict) == (1.0, 5.0, True, False)

    def test_tightest_bound_wins(self):
        w = window_from_conditions(
            (Predicate("x", ">", 1.0), Predicate("x", ">=", 3.0))
        )
        assert w.lo == 3.0 and not w.lo_strict

    def test_equal_value_strict_wins(self):
        w = window_from_conditions(
            (Predicate("x", ">=", 1.0), Predicate("x", ">", 1.0))
        )
        assert w.lo == 1.0 and w.lo_strict

    def test_eq_condition(self):
        w = window_from_conditions((Predicate("x", "==", 3.0),))
        assert w.eq == 3.0
        assert w.contains(3.0) and not w.contains(3.1)

    def test_contains_strictness(self):
        w = NumericWindow(lo=1.0, hi=2.0, lo_strict=True, hi_strict=False)
        assert not w.contains(1.0)
        assert w.contains(2.0)


class TestSampleInWindow:
    def test_eq_returns_exact(self):
        w = NumericWindow(eq=7.0)
        rng = np.random.default_rng(0)
        assert sample_in_window(w, 0.0, 1.0, (0.0, 10.0), rng) == 7.0

    def test_prefers_smote_segment(self):
        w = NumericWindow(lo=0.0, hi=100.0)
        rng = np.random.default_rng(0)
        for _ in range(20):
            v = sample_in_window(w, 3.0, 5.0, (0.0, 100.0), rng)
            assert 3.0 <= v <= 5.0

    def test_falls_back_to_window_when_segment_outside(self):
        w = NumericWindow(lo=10.0, hi=20.0)
        rng = np.random.default_rng(0)
        for _ in range(20):
            v = sample_in_window(w, 1.0, 2.0, (0.0, 30.0), rng)
            assert 10.0 <= v <= 20.0

    def test_strict_bounds_respected(self):
        w = NumericWindow(lo=1.0, hi=2.0, lo_strict=True, hi_strict=True)
        rng = np.random.default_rng(0)
        for _ in range(50):
            v = sample_in_window(w, 0.0, 0.5, (0.0, 3.0), rng)
            assert 1.0 < v < 2.0

    def test_half_open_window_outside_range(self):
        w = NumericWindow(lo=1000.0)
        rng = np.random.default_rng(0)
        v = sample_in_window(w, 0.0, 1.0, (0.0, 10.0), rng)
        assert v >= 1000.0


class TestPickCategorical:
    def test_majority_when_unconstrained(self):
        rng = np.random.default_rng(0)
        code = pick_categorical(np.array([1, 1, 0]), (), ("a", "b"), rng)
        assert code == 1

    def test_eq_condition_forces_value(self):
        rng = np.random.default_rng(0)
        code = pick_categorical(
            np.array([1, 1, 1]),
            (Predicate("c", "==", "a"),),
            ("a", "b"),
            rng,
        )
        assert code == 0

    def test_ne_condition_skips_majority(self):
        rng = np.random.default_rng(0)
        code = pick_categorical(
            np.array([1, 1, 0]),
            (Predicate("c", "!=", "b"),),
            ("a", "b"),
            rng,
        )
        assert code == 0

    def test_all_observed_violate_falls_back_to_allowed(self):
        rng = np.random.default_rng(0)
        code = pick_categorical(
            np.array([0, 0]),
            (Predicate("c", "!=", "a"),),
            ("a", "b", "z"),
            rng,
        )
        assert code in (1, 2)

    def test_unsatisfiable_conditions_raise(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError, match="no categorical value"):
            pick_categorical(
                np.array([0]),
                (Predicate("c", "==", "a"), Predicate("c", "!=", "a")),
                ("a", "b"),
                rng,
            )


class TestRuleConstrainedGenerator:
    def _rule(self, n_classes=2):
        return FeedbackRule.deterministic(
            clause(
                Predicate("age", "<", 40.0),
                Predicate("marital", "==", "single"),
            ),
            1,
            n_classes,
            name="r",
        )

    def test_generated_instances_satisfy_rule(self, mixed_table):
        rule = self._rule()
        gen = RuleConstrainedGenerator(rule, mixed_table, k=5)
        pool = mixed_table.loc_mask(rule.coverage_mask(mixed_table))
        rng = np.random.default_rng(0)
        batch = gen.generate(pool, np.arange(min(20, pool.n_rows)), rng)
        assert batch.n > 0
        assert rule.coverage_mask(batch.table).all()

    def test_labels_follow_deterministic_pi(self, mixed_table):
        rule = self._rule()
        gen = RuleConstrainedGenerator(rule, mixed_table, k=3)
        pool = mixed_table.loc_mask(rule.coverage_mask(mixed_table))
        batch = gen.generate(pool, np.arange(10), np.random.default_rng(0))
        assert (batch.labels == 1).all()

    def test_labels_follow_probabilistic_pi(self, mixed_table):
        rule = FeedbackRule(
            clause(Predicate("age", "<", 60.0)), (0.5, 0.5), name="p"
        )
        gen = RuleConstrainedGenerator(rule, mixed_table, k=3)
        pool = mixed_table.loc_mask(rule.coverage_mask(mixed_table))
        idx = np.zeros(400, dtype=np.intp)  # many samples from one base
        batch = gen.generate(pool, idx, np.random.default_rng(0))
        assert 0.35 < batch.labels.mean() < 0.65

    def test_generation_from_relaxed_pool_still_satisfies_original(self, mixed_table):
        """Pool rows only weakly cover the rule (relaxed); output must satisfy
        the original rule anyway — the paper's 'special logic' case."""
        rule = self._rule()
        # Pool: rows matching only the age condition (marital arbitrary).
        pool = mixed_table.loc_mask(mixed_table.column("age") < 40.0)
        gen = RuleConstrainedGenerator(rule, mixed_table, k=5)
        batch = gen.generate(pool, np.arange(min(30, pool.n_rows)), np.random.default_rng(1))
        assert rule.coverage_mask(batch.table).all()

    def test_empty_positions_empty_batch(self, mixed_table):
        gen = RuleConstrainedGenerator(self._rule(), mixed_table)
        batch = gen.generate(
            mixed_table, np.array([], dtype=np.intp), np.random.default_rng(0)
        )
        assert batch.n == 0

    def test_empty_pool_raises(self, mixed_table):
        gen = RuleConstrainedGenerator(self._rule(), mixed_table)
        empty = mixed_table.loc_mask(np.zeros(mixed_table.n_rows, dtype=bool))
        with pytest.raises(ValueError, match="empty base population"):
            gen.generate(empty, np.array([0]), np.random.default_rng(0))

    def test_single_row_pool_selfneighbour(self, mixed_table):
        rule = self._rule()
        pool_full = mixed_table.loc_mask(rule.coverage_mask(mixed_table))
        pool = pool_full.take(np.array([0]))
        gen = RuleConstrainedGenerator(rule, mixed_table, k=5)
        batch = gen.generate(pool, np.array([0, 0, 0]), np.random.default_rng(0))
        assert batch.n == 3
        assert rule.coverage_mask(batch.table).all()

    def test_invalid_k_raises(self, mixed_table):
        with pytest.raises(ValueError, match="k must be"):
            RuleConstrainedGenerator(self._rule(), mixed_table, k=0)

    def test_unconstrained_numeric_interpolates(self, mixed_table):
        rule = FeedbackRule.deterministic(
            clause(Predicate("marital", "==", "single")), 1, 2
        )
        gen = RuleConstrainedGenerator(rule, mixed_table, k=5)
        pool = mixed_table.loc_mask(rule.coverage_mask(mixed_table))
        batch = gen.generate(pool, np.arange(pool.n_rows), np.random.default_rng(0))
        # Income (unconstrained) must stay within the pool's convex hull.
        inc = pool.column("income")
        assert batch.table.column("income").min() >= inc.min() - 1e-9
        assert batch.table.column("income").max() <= inc.max() + 1e-9


@settings(max_examples=20, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=10**6),
    lo=st.floats(min_value=20.0, max_value=40.0),
    hi=st.floats(min_value=50.0, max_value=75.0),
)
def test_generated_satisfy_rule_property(seed, lo, hi, ):
    """For arbitrary interval rules, every generated row satisfies the rule."""
    from repro.data import Table, make_schema

    schema = make_schema(numeric=["age"], categorical={"c": ("a", "b")})
    rng = np.random.default_rng(seed)
    n = 120
    t = Table(schema, {"age": rng.uniform(18, 80, n), "c": rng.integers(0, 2, n)})
    rule = FeedbackRule.deterministic(
        clause(Predicate("age", ">=", lo), Predicate("age", "<", hi)), 1, 2
    )
    pool = t.loc_mask(t.column("age") >= 0)  # whole table as (relaxed) pool
    gen = RuleConstrainedGenerator(rule, t, k=5)
    batch = gen.generate(pool, np.arange(15), rng)
    assert rule.coverage_mask(batch.table).all()
