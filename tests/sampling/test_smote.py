"""Tests for SMOTE / SMOTE-NC."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sampling import SMOTE, interpolate_numeric, majority_categorical


class TestPrimitives:
    def test_interpolation_endpoints(self):
        base, nbr = np.array([0.0]), np.array([10.0])
        assert interpolate_numeric(base, nbr, np.array([0.0]))[0] == 0.0
        assert interpolate_numeric(base, nbr, np.array([1.0]))[0] == 10.0

    def test_interpolation_between(self):
        v = interpolate_numeric(np.array([2.0]), np.array([4.0]), np.array([0.5]))
        assert v[0] == 3.0

    def test_majority_categorical(self):
        rng = np.random.default_rng(0)
        assert majority_categorical(np.array([1, 1, 2]), rng) == 1

    def test_majority_tie_broken_within_candidates(self):
        rng = np.random.default_rng(0)
        picks = {majority_categorical(np.array([0, 1]), rng) for _ in range(50)}
        assert picks <= {0, 1}


class TestGenerate:
    def test_synthetic_in_convex_hull_numeric(self, mixed_table):
        smote = SMOTE(k=5, random_state=0)
        synth = smote.generate(mixed_table, 100)
        for col in ("age", "income"):
            vals = synth.column(col)
            orig = mixed_table.column(col)
            assert vals.min() >= orig.min() - 1e-9
            assert vals.max() <= orig.max() + 1e-9

    def test_categorical_values_valid_codes(self, mixed_table):
        synth = SMOTE(k=3, random_state=0).generate(mixed_table, 50)
        for col in ("marital", "color"):
            codes = synth.column(col)
            assert codes.min() >= 0
            assert codes.max() < 3

    def test_requested_count(self, mixed_table):
        assert SMOTE(random_state=0).generate(mixed_table, 17).n_rows == 17

    def test_base_indices_restrict_bases(self, mixed_table):
        young = np.flatnonzero(mixed_table.column("age") < 30.0)
        synth = SMOTE(k=3, random_state=0).generate(
            mixed_table, 30, base_indices=young
        )
        # Numeric values interpolate between a young base and any neighbour;
        # ages cannot exceed the max over (young ∪ neighbours of young).
        assert synth.n_rows == 30

    def test_too_few_rows_raises(self, mixed_table):
        single = mixed_table.take(np.array([0]))
        with pytest.raises(ValueError, match="at least 2"):
            SMOTE().generate(single, 5)

    def test_empty_base_indices_raises(self, mixed_table):
        with pytest.raises(ValueError, match="empty"):
            SMOTE().generate(mixed_table, 5, base_indices=np.array([], dtype=int))

    def test_invalid_k_raises(self):
        with pytest.raises(ValueError, match="k must be"):
            SMOTE(k=0)

    def test_reproducible(self, mixed_table):
        a = SMOTE(random_state=3).generate(mixed_table, 20)
        b = SMOTE(random_state=3).generate(mixed_table, 20)
        np.testing.assert_allclose(a.column("age"), b.column("age"))


class TestFitResample:
    def test_balances_classes(self, mixed_dataset):
        out = SMOTE(random_state=0).fit_resample(mixed_dataset)
        counts = out.class_counts()
        assert counts[0] == counts[1]

    def test_original_rows_kept(self, mixed_dataset):
        out = SMOTE(random_state=0).fit_resample(mixed_dataset)
        assert out.n >= mixed_dataset.n
        np.testing.assert_allclose(
            out.X.column("age")[: mixed_dataset.n], mixed_dataset.X.column("age")
        )

    def test_already_balanced_unchanged(self):
        from tests.conftest import make_tiny_dataset

        ds = make_tiny_dataset(60, seed=1)
        # Force exact balance.
        n0 = int((ds.y == 0).sum())
        n1 = int((ds.y == 1).sum())
        m = min(n0, n1)
        idx = np.concatenate(
            [np.flatnonzero(ds.y == 0)[:m], np.flatnonzero(ds.y == 1)[:m]]
        )
        balanced = ds.take(idx)
        out = SMOTE(random_state=0).fit_resample(balanced)
        assert out.n == balanced.n


@settings(max_examples=20, deadline=None)
@given(
    n_samples=st.integers(min_value=1, max_value=40),
    seed=st.integers(min_value=0, max_value=10**6),
)
def test_generate_count_property(n_samples, seed, ):
    """SMOTE always produces exactly the requested number of rows."""
    from repro.data import Table, make_schema

    schema = make_schema(numeric=["x"], categorical={"c": ("a", "b")})
    rng = np.random.default_rng(seed)
    t = Table(schema, {"x": rng.normal(size=20), "c": rng.integers(0, 2, 20)})
    out = SMOTE(k=3, random_state=seed).generate(t, n_samples)
    assert out.n_rows == n_samples
