"""Tests for MRA metrics."""

import numpy as np
import pytest

from repro.metrics import mra_deterministic, mra_probabilistic


class TestDeterministic:
    def test_all_agree(self):
        assert mra_deterministic([1, 1, 1], 1) == 1.0

    def test_none_agree(self):
        assert mra_deterministic([0, 0], 1) == 0.0

    def test_fraction(self):
        assert mra_deterministic([1, 0, 1, 0], 1) == 0.5

    def test_empty_is_vacuous(self):
        assert mra_deterministic([], 1) == 1.0


class TestProbabilistic:
    def test_matches_deterministic_for_delta(self):
        pi = np.array([0.0, 1.0])
        preds = np.array([1, 0, 1])
        assert mra_probabilistic(preds, pi) == pytest.approx(
            mra_deterministic(preds, 1)
        )

    def test_mean_rule_probability(self):
        pi = np.array([0.3, 0.7])
        preds = np.array([0, 1])
        assert mra_probabilistic(preds, pi) == pytest.approx(0.5)

    def test_empty_is_vacuous(self):
        assert mra_probabilistic(np.array([], dtype=int), np.array([0.5, 0.5])) == 1.0

    def test_unnormalized_pi_raises(self):
        with pytest.raises(ValueError, match="sum to 1"):
            mra_probabilistic(np.array([0]), np.array([0.5, 0.6]))

    def test_prediction_outside_support_raises(self):
        with pytest.raises(ValueError, match="exceeds"):
            mra_probabilistic(np.array([3]), np.array([0.5, 0.5]))

    def test_2d_pi_raises(self):
        with pytest.raises(ValueError, match="1-D"):
            mra_probabilistic(np.array([0]), np.array([[0.5, 0.5]]))
