"""Tests for classification metrics."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.metrics import (
    accuracy_score,
    confusion_matrix,
    default_f1,
    f1_score,
    precision_recall_f1,
)


class TestAccuracy:
    def test_perfect(self):
        assert accuracy_score([0, 1, 2], [0, 1, 2]) == 1.0

    def test_none_correct(self):
        assert accuracy_score([0, 0], [1, 1]) == 0.0

    def test_half(self):
        assert accuracy_score([0, 1], [0, 0]) == 0.5

    def test_empty_returns_zero(self):
        assert accuracy_score([], []) == 0.0

    def test_length_mismatch_raises(self):
        with pytest.raises(ValueError, match="lengths differ"):
            accuracy_score([0], [0, 1])


class TestConfusionMatrix:
    def test_basic(self):
        cm = confusion_matrix([0, 0, 1, 1], [0, 1, 1, 1])
        np.testing.assert_array_equal(cm, [[1, 1], [0, 2]])

    def test_n_classes_padding(self):
        cm = confusion_matrix([0], [0], n_classes=3)
        assert cm.shape == (3, 3)

    def test_label_exceeds_n_classes_raises(self):
        with pytest.raises(ValueError, match="exceed"):
            confusion_matrix([5], [0], n_classes=2)

    def test_negative_label_raises(self):
        with pytest.raises(ValueError, match="non-negative"):
            confusion_matrix([-1], [0])

    def test_rows_are_true_labels(self):
        cm = confusion_matrix([1, 1, 1], [0, 0, 1])
        assert cm[1, 0] == 2 and cm[1, 1] == 1


class TestF1:
    def test_binary_perfect(self):
        assert f1_score([0, 1, 1], [0, 1, 1], average="binary") == 1.0

    def test_binary_known_value(self):
        # tp=1, fp=1, fn=1 -> precision=0.5, recall=0.5, f1=0.5
        y_true = [1, 1, 0, 0]
        y_pred = [1, 0, 1, 0]
        assert f1_score(y_true, y_pred, average="binary") == pytest.approx(0.5)

    def test_macro_averages_classes(self):
        y_true = [0, 0, 1, 1]
        y_pred = [0, 0, 0, 0]
        # class0: p=0.5, r=1, f1=2/3; class1: f1=0
        assert f1_score(y_true, y_pred, average="macro") == pytest.approx(1 / 3)

    def test_micro_equals_accuracy(self):
        rng = np.random.default_rng(0)
        y_true = rng.integers(0, 3, 100)
        y_pred = rng.integers(0, 3, 100)
        assert f1_score(y_true, y_pred, average="micro") == pytest.approx(
            accuracy_score(y_true, y_pred)
        )

    def test_weighted_weights_by_support(self):
        y_true = [0] * 9 + [1]
        y_pred = [0] * 9 + [0]
        p, r, f = precision_recall_f1(y_true, y_pred, average="weighted")
        # class0 f1 = 2*0.9*1/(1.9); class1 f1 = 0; weighted by (0.9, 0.1)
        assert f == pytest.approx(0.9 * (2 * 0.9 / 1.9))

    def test_unknown_average_raises(self):
        with pytest.raises(ValueError, match="average"):
            f1_score([0], [0], average="bogus")

    def test_binary_pos_label(self):
        y_true = [0, 0, 1]
        y_pred = [0, 0, 0]
        assert f1_score(y_true, y_pred, average="binary", pos_label=0) > 0
        assert f1_score(y_true, y_pred, average="binary", pos_label=1) == 0.0

    def test_absent_pos_label_scores_zero(self):
        assert f1_score([0, 0], [0, 0], average="binary", pos_label=1, n_classes=2) == 0.0


class TestDefaultF1:
    def test_binary_uses_binary(self):
        y_true = [1, 1, 0, 0]
        y_pred = [1, 0, 1, 0]
        assert default_f1(y_true, y_pred, n_classes=2) == pytest.approx(0.5)

    def test_multiclass_uses_macro(self):
        y_true = [0, 1, 2]
        y_pred = [0, 1, 2]
        assert default_f1(y_true, y_pred, n_classes=3) == 1.0

    def test_empty_is_vacuously_perfect(self):
        assert default_f1([], [], n_classes=2) == 1.0


@settings(max_examples=50, deadline=None)
@given(
    n=st.integers(min_value=1, max_value=100),
    k=st.integers(min_value=2, max_value=5),
    seed=st.integers(min_value=0, max_value=10**6),
)
def test_f1_bounds_property(n, k, seed):
    """All averagings stay within [0, 1]."""
    rng = np.random.default_rng(seed)
    y_true = rng.integers(0, k, n)
    y_pred = rng.integers(0, k, n)
    for avg in ("binary", "macro", "micro", "weighted"):
        v = f1_score(y_true, y_pred, average=avg, n_classes=k)
        assert 0.0 <= v <= 1.0


@settings(max_examples=30, deadline=None)
@given(
    n=st.integers(min_value=1, max_value=60),
    seed=st.integers(min_value=0, max_value=10**6),
)
def test_perfect_prediction_property(n, seed):
    """Identical predictions score 1 under micro/weighted averaging.

    (Macro is excluded: declared-but-absent classes legitimately score 0,
    pulling the macro mean below 1 — same as scikit-learn with explicit
    ``labels``.)
    """
    rng = np.random.default_rng(seed)
    y = rng.integers(0, 3, n)
    for avg in ("micro", "weighted"):
        assert f1_score(y, y, average=avg, n_classes=3) == pytest.approx(1.0)


def test_perfect_prediction_macro_all_classes_present():
    y = np.array([0, 1, 2, 0, 1, 2])
    assert f1_score(y, y, average="macro", n_classes=3) == pytest.approx(1.0)
