"""Append-stability of first-match FRS assignment (property-based).

The live-ruleset-delta design rests on one invariant of
:meth:`FeedbackRuleSet.assign`: because assignment is first-match and an
appended rule takes the *highest* index, appending can only claim rows no
earlier rule covered — every previously-assigned row keeps its rule, so
an append delta recomputes nothing but the new rule's own coverage.
Conversely, a rule whose symbolic coverage conflicts with an earlier
rule's must be classified ``"rebuild"`` so carve-outs are re-resolved.
"""

from __future__ import annotations

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.data import Table, make_schema
from repro.feedback import classify_rule, extend_ruleset
from repro.feedback.delta import APPEND, REBUILD
from repro.rules import FeedbackRule, FeedbackRuleSet, Predicate, clause

SCHEMA = make_schema(numeric=["a", "b"], categorical={"c": ("u", "v", "w")})


def make_table(seed: int, n: int = 120) -> Table:
    rng = np.random.default_rng(seed)
    return Table(
        SCHEMA,
        {
            "a": rng.uniform(0, 10, n),
            "b": rng.normal(0, 1, n),
            "c": rng.integers(0, 3, n),
        },
    )


@st.composite
def rules(draw):
    """A random single-predicate-per-attribute rule over SCHEMA."""
    predicates = []
    if draw(st.booleans()):
        lo = draw(st.floats(0.0, 10.0, allow_nan=False))
        op = draw(st.sampled_from(["<", ">=", ">", "<="]))
        predicates.append(Predicate("a", op, float(lo)))
    if draw(st.booleans()):
        predicates.append(
            Predicate("b", draw(st.sampled_from(["<", ">"])),
                      float(draw(st.floats(-2.0, 2.0, allow_nan=False))))
        )
    if not predicates or draw(st.booleans()):
        predicates.append(Predicate("c", "==", draw(st.sampled_from(["u", "v", "w"]))))
    label = draw(st.integers(0, 1))
    return FeedbackRule.deterministic(clause(*predicates), label, 2)


@st.composite
def rulesets(draw):
    n = draw(st.integers(1, 4))
    return FeedbackRuleSet(tuple(draw(rules()) for _ in range(n)))


@settings(max_examples=60, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(frs=rulesets(), rule=rules(), seed=st.integers(0, 2**16))
def test_append_never_moves_assigned_rows(frs, rule, seed):
    """For *any* appended rule, previously-assigned rows keep their rule."""
    X = make_table(seed)
    before = frs.assign(X)
    after = FeedbackRuleSet(frs.rules + (rule,)).assign(X)
    assigned = before >= 0
    np.testing.assert_array_equal(after[assigned], before[assigned])
    # Rows the new rule claimed were exactly the uncovered ones it covers.
    claimed = after == len(frs)
    np.testing.assert_array_equal(
        claimed, (~assigned) & rule.coverage_mask(X)
    )


@settings(max_examples=60, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(frs=rulesets(), rule=rules(), seed=st.integers(0, 2**16))
def test_classification_is_sound(frs, rule, seed):
    """append-classified extensions change no empirical coverage conflict.

    If ``classify_rule`` says ``append``, then on any concrete table no
    row covered by both the new rule and a conflicting-label existing
    rule exists outside the symbolically-carved exceptions — i.e. the
    extension really is conflict-free; a ``rebuild`` verdict always comes
    with at least one symbolic conflict.
    """
    kind = classify_rule(frs, rule, SCHEMA)
    X = make_table(seed)
    new_cov = rule.coverage_mask(X)
    if kind == APPEND:
        for existing in frs:
            if not existing.conflicts_with(rule):
                continue
            # Conflicting label: coverage overlap must be fully blocked
            # by the recorded exception certificates.
            both = existing.coverage_mask(X) & new_cov
            assert not both.any()
    else:
        assert kind == REBUILD


@settings(max_examples=40, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(frs=rulesets(), rule=rules())
def test_conflicting_extension_forces_rebuild_delta(frs, rule):
    """extend_ruleset's kind always equals classify_rule's verdict, and a
    carve-resolved result never conflicts with the rule it carved."""
    kind, out = extend_ruleset(frs, rule, SCHEMA, resolve="carve")
    assert kind == classify_rule(frs, rule, SCHEMA)
    if kind == APPEND:
        assert out.rules[:-1] == frs.rules
    else:
        assert len(out) == len(frs) + 1
        # Re-classifying the carved result against any of its own rules
        # must not re-detect the resolved conflict.
        carved_new = out.rules[len(frs)]
        rest = FeedbackRuleSet(out.rules[: len(frs)])
        assert classify_rule(rest, carved_new, SCHEMA) == APPEND
