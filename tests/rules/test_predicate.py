"""Tests for Predicate evaluation and validation."""

import numpy as np
import pytest

from repro.rules import Predicate


class TestConstruction:
    def test_unknown_operator_raises(self):
        with pytest.raises(ValueError, match="unknown operator"):
            Predicate("age", "~=", 1.0)


class TestNumericMask(object):
    @pytest.mark.parametrize(
        "op,expected",
        [
            ("==", [False, True, False]),
            (">", [False, False, True]),
            (">=", [False, True, True]),
            ("<", [True, False, False]),
            ("<=", [True, True, False]),
        ],
    )
    def test_operators(self, mixed_table, op, expected):
        t = mixed_table
        sub = t.take(np.array([0, 1, 2]))
        vals = sub.column("age")
        p = Predicate("age", op, float(vals[1]))
        np.testing.assert_array_equal(
            p.mask(sub),
            {
                "==": vals == vals[1],
                ">": vals > vals[1],
                ">=": vals >= vals[1],
                "<": vals < vals[1],
                "<=": vals <= vals[1],
            }[op],
        )

    def test_string_value_on_numeric_raises(self, mixed_table):
        with pytest.raises(TypeError, match="string value"):
            Predicate("age", "<", "young").mask(mixed_table)

    def test_ne_on_numeric_raises(self, mixed_table):
        with pytest.raises(ValueError, match="not allowed for numeric"):
            Predicate("age", "!=", 30.0).mask(mixed_table)


class TestCategoricalMask:
    def test_eq(self, mixed_table):
        m = Predicate("marital", "==", "single").mask(mixed_table)
        np.testing.assert_array_equal(m, mixed_table.column("marital") == 0)

    def test_ne(self, mixed_table):
        m = Predicate("marital", "!=", "single").mask(mixed_table)
        np.testing.assert_array_equal(m, mixed_table.column("marital") != 0)

    def test_lt_on_categorical_raises(self, mixed_table):
        with pytest.raises(ValueError, match="not allowed for categorical"):
            Predicate("marital", "<", "single").mask(mixed_table)

    def test_unknown_category_raises(self, mixed_table):
        with pytest.raises(ValueError, match="not in categories"):
            Predicate("marital", "==", "widowed").mask(mixed_table)

    def test_non_string_value_raises(self, mixed_table):
        with pytest.raises(TypeError, match="string"):
            Predicate("marital", "==", 1).mask(mixed_table)


class TestHoldsFor:
    def test_numeric_scalar(self, mixed_schema):
        p = Predicate("age", "<", 30.0)
        assert p.holds_for(25.0, mixed_schema["age"])
        assert not p.holds_for(30.0, mixed_schema["age"])

    def test_categorical_scalar(self, mixed_schema):
        p = Predicate("marital", "==", "married")
        assert p.holds_for(1, mixed_schema["marital"])
        assert not p.holds_for(0, mixed_schema["marital"])

    def test_mask_agrees_with_holds_for(self, mixed_table):
        p = Predicate("income", ">=", 100.0)
        mask = p.mask(mixed_table)
        spec = mixed_table.schema["income"]
        for i in range(0, mixed_table.n_rows, 17):
            assert mask[i] == p.holds_for(mixed_table.column("income")[i], spec)


class TestTransforms:
    @pytest.mark.parametrize(
        "op,rev",
        [("==", "!="), ("!=", "=="), ("<", ">"), (">", "<"), ("<=", ">="), (">=", "<=")],
    )
    def test_reversed_operator(self, op, rev):
        assert Predicate("a", op, 1.0).reversed_operator().operator == rev

    def test_reverse_is_involution(self):
        p = Predicate("a", "<=", 2.0)
        assert p.reversed_operator().reversed_operator() == p

    def test_with_value(self):
        p = Predicate("a", "<", 1.0).with_value(9.0)
        assert p.value == 9.0 and p.operator == "<"

    def test_str_numeric(self):
        assert str(Predicate("age", "<", 29.0)) == "age < 29"

    def test_str_categorical(self):
        assert str(Predicate("c", "==", "red")) == "c = 'red'"

    def test_validate_wrong_column(self, mixed_schema):
        with pytest.raises(ValueError, match="validated against"):
            Predicate("age", "<", 1.0).validate(mixed_schema["income"])
