"""Tests for rule redundancy reduction."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data import make_schema
from repro.rules import (
    FeedbackRule,
    FeedbackRuleSet,
    Predicate,
    clause,
    compact_rule_set,
    deduplicate_rules,
    remove_subsumed_rules,
    simplify_clause,
    simplify_rule,
)


@pytest.fixture
def schema():
    return make_schema(numeric=["x"], categorical={"c": ("a", "b", "z")})


class TestSimplifyClause:
    def test_redundant_upper_bound_dropped(self, schema):
        c = clause(Predicate("x", "<", 5.0), Predicate("x", "<", 9.0))
        out = simplify_clause(c, schema)
        assert len(out) == 1
        assert out.predicates[0].value == 5.0

    def test_redundant_lower_bound_dropped(self, schema):
        c = clause(Predicate("x", ">", 3.0), Predicate("x", ">=", 1.0))
        out = simplify_clause(c, schema)
        assert len(out) == 1
        assert out.predicates[0].value == 3.0

    def test_eq_dominates_inequalities(self, schema):
        c = clause(Predicate("x", "==", 2.0), Predicate("x", "<", 5.0))
        out = simplify_clause(c, schema)
        assert [str(p) for p in out.predicates] == ["x = 2"]

    def test_strictness_kept(self, schema):
        # x < 5 implies x <= 5, so the weaker <= 5 goes.
        c = clause(Predicate("x", "<", 5.0), Predicate("x", "<=", 5.0))
        out = simplify_clause(c, schema)
        assert len(out) == 1
        assert out.predicates[0].operator == "<"

    def test_categorical_ne_implied_by_eq(self, schema):
        c = clause(Predicate("c", "==", "a"), Predicate("c", "!=", "b"))
        out = simplify_clause(c, schema)
        assert [str(p) for p in out.predicates] == ["c = 'a'"]

    def test_exhaustive_ne_implies_eq(self, schema):
        # != b and != z leaves only a; c == 'a' then implied? No: the EQ is
        # the informative one, NE pair stays informative... our rule: EQ is
        # implied when allowed == {value}.
        c = clause(
            Predicate("c", "!=", "b"),
            Predicate("c", "!=", "z"),
            Predicate("c", "==", "a"),
        )
        out = simplify_clause(c, schema)
        # Either the EQ alone or the NE pair alone is a valid minimal form;
        # coverage must be preserved regardless.
        assert len(out) < 3

    def test_duplicates_removed(self, schema):
        p = Predicate("x", "<", 5.0)
        out = simplify_clause(clause(p, p), schema)
        assert len(out) == 1

    def test_independent_attributes_untouched(self, schema):
        c = clause(Predicate("x", "<", 5.0), Predicate("c", "==", "a"))
        assert len(simplify_clause(c, schema)) == 2

    def test_coverage_preserved(self, schema, ):
        rng = np.random.default_rng(0)
        from repro.data import Table

        t = Table(
            schema,
            {"x": rng.uniform(0, 10, 300), "c": rng.integers(0, 3, 300)},
        )
        c = clause(
            Predicate("x", "<", 7.0),
            Predicate("x", "<=", 9.0),
            Predicate("c", "!=", "z"),
            Predicate("c", "==", "a"),
        )
        out = simplify_clause(c, schema)
        np.testing.assert_array_equal(c.mask(t), out.mask(t))


class TestDeduplicate:
    def _rule(self, v, target=1):
        return FeedbackRule.deterministic(clause(Predicate("x", "<", v)), target, 2)

    def test_exact_duplicates_dropped(self):
        frs = FeedbackRuleSet((self._rule(5.0), self._rule(5.0)))
        assert len(deduplicate_rules(frs)) == 1

    def test_same_clause_different_pi_kept(self):
        frs = FeedbackRuleSet((self._rule(5.0, 1), self._rule(5.0, 0)))
        assert len(deduplicate_rules(frs)) == 2

    def test_order_preserved(self):
        frs = FeedbackRuleSet((self._rule(5.0), self._rule(3.0), self._rule(5.0)))
        out = deduplicate_rules(frs)
        assert [r.clause.predicates[0].value for r in out] == [5.0, 3.0]


class TestSubsumption:
    def test_shadowed_rule_removed(self, schema, mixed_table=None):
        from repro.data import Table

        rng = np.random.default_rng(1)
        t = Table(schema, {"x": rng.uniform(0, 10, 200), "c": rng.integers(0, 3, 200)})
        broad = FeedbackRule.deterministic(clause(Predicate("x", "<", 8.0)), 1, 2)
        narrow = FeedbackRule.deterministic(clause(Predicate("x", "<", 4.0)), 1, 2)
        out = remove_subsumed_rules(FeedbackRuleSet((broad, narrow)), t)
        assert len(out) == 1
        assert out[0] is broad

    def test_conflicting_pi_not_removed(self, schema):
        from repro.data import Table

        rng = np.random.default_rng(1)
        t = Table(schema, {"x": rng.uniform(0, 10, 200), "c": rng.integers(0, 3, 200)})
        broad = FeedbackRule.deterministic(clause(Predicate("x", "<", 8.0)), 1, 2)
        narrow = FeedbackRule.deterministic(clause(Predicate("x", "<", 4.0)), 0, 2)
        out = remove_subsumed_rules(FeedbackRuleSet((broad, narrow)), t)
        assert len(out) == 2

    def test_disjoint_rules_kept(self, schema):
        from repro.data import Table

        rng = np.random.default_rng(1)
        t = Table(schema, {"x": rng.uniform(0, 10, 200), "c": rng.integers(0, 3, 200)})
        a = FeedbackRule.deterministic(clause(Predicate("x", "<", 3.0)), 1, 2)
        b = FeedbackRule.deterministic(clause(Predicate("x", ">", 7.0)), 1, 2)
        assert len(remove_subsumed_rules(FeedbackRuleSet((a, b)), t)) == 2


class TestCompact:
    def test_full_pass(self, schema):
        from repro.data import Table

        rng = np.random.default_rng(2)
        t = Table(schema, {"x": rng.uniform(0, 10, 200), "c": rng.integers(0, 3, 200)})
        messy = FeedbackRuleSet(
            (
                FeedbackRule.deterministic(
                    clause(Predicate("x", "<", 8.0), Predicate("x", "<", 9.0)), 1, 2
                ),
                FeedbackRule.deterministic(clause(Predicate("x", "<", 8.0)), 1, 2),
                FeedbackRule.deterministic(clause(Predicate("x", "<", 2.0)), 1, 2),
            )
        )
        out = compact_rule_set(messy, schema, t)
        assert len(out) == 1
        assert str(out[0].clause) == "x < 8"


@settings(max_examples=40, deadline=None)
@given(
    v1=st.floats(min_value=0, max_value=10),
    v2=st.floats(min_value=0, max_value=10),
    op1=st.sampled_from(["<", "<=", ">", ">="]),
    op2=st.sampled_from(["<", "<=", ">", ">="]),
    seed=st.integers(min_value=0, max_value=10**5),
)
def test_simplify_preserves_coverage_property(v1, v2, op1, op2, seed):
    """Simplification never changes the covered set."""
    from repro.data import Table

    schema = make_schema(numeric=["x"])
    rng = np.random.default_rng(seed)
    t = Table(schema, {"x": rng.uniform(-1, 11, 100)})
    c = clause(Predicate("x", op1, v1), Predicate("x", op2, v2))
    out = simplify_clause(c, schema)
    np.testing.assert_array_equal(c.mask(t), out.mask(t))
