"""Tests for FeedbackRuleSet: coverage, conflicts, resolution, drawing."""

import numpy as np
import pytest

from repro.data import make_schema
from repro.rules import (
    FeedbackRule,
    FeedbackRuleSet,
    Predicate,
    clause,
    draw_conflict_free,
)


def _schema():
    return make_schema(numeric=["x"], categorical={"c": ("a", "b")})


def _rule(lo=None, hi=None, cat=None, target=0, n_classes=2, pi=None):
    preds = []
    if lo is not None:
        preds.append(Predicate("x", ">", float(lo)))
    if hi is not None:
        preds.append(Predicate("x", "<", float(hi)))
    if cat is not None:
        preds.append(Predicate("c", "==", cat))
    if pi is not None:
        return FeedbackRule(clause(*preds), pi)
    return FeedbackRule.deterministic(clause(*preds), target, n_classes)


class TestBasics:
    def test_len_iter_getitem(self):
        frs = FeedbackRuleSet((_rule(0, 1), _rule(2, 3)))
        assert len(frs) == 2
        assert frs[0] is frs.rules[0]
        assert list(frs) == list(frs.rules)

    def test_n_classes(self):
        assert FeedbackRuleSet((_rule(0, 1),)).n_classes == 2

    def test_mixed_class_counts_raise(self):
        with pytest.raises(ValueError, match="same number of classes"):
            FeedbackRuleSet((_rule(0, 1, n_classes=2), _rule(0, 1, n_classes=3)))

    def test_empty_n_classes_raises(self):
        with pytest.raises(ValueError, match="empty"):
            FeedbackRuleSet(()).n_classes


class TestCoverage:
    def test_union_coverage(self, mixed_table):
        r1 = FeedbackRule.deterministic(clause(Predicate("age", "<", 30.0)), 0, 2)
        r2 = FeedbackRule.deterministic(clause(Predicate("age", ">", 70.0)), 1, 2)
        frs = FeedbackRuleSet((r1, r2))
        expected = (mixed_table.column("age") < 30.0) | (
            mixed_table.column("age") > 70.0
        )
        np.testing.assert_array_equal(frs.coverage_mask(mixed_table), expected)

    def test_assign_first_match_priority(self, mixed_table):
        r1 = FeedbackRule.deterministic(clause(Predicate("age", "<", 50.0)), 0, 2)
        r2 = FeedbackRule.deterministic(clause(Predicate("age", "<", 30.0)), 0, 2)
        frs = FeedbackRuleSet((r1, r2))
        assign = frs.assign(mixed_table)
        young = mixed_table.column("age") < 30.0
        # Rule 0 covers everything rule 1 covers, so first-match wins.
        assert (assign[young] == 0).all()

    def test_assign_uncovered_is_minus_one(self, mixed_table):
        r = FeedbackRule.deterministic(clause(Predicate("age", "<", 0.0)), 0, 2)
        assign = FeedbackRuleSet((r,)).assign(mixed_table)
        assert (assign == -1).all()

    def test_coverage_masks_shape(self, mixed_table):
        frs = FeedbackRuleSet(
            (
                FeedbackRule.deterministic(clause(Predicate("age", "<", 40.0)), 0, 2),
                FeedbackRule.deterministic(clause(Predicate("age", ">", 60.0)), 1, 2),
            )
        )
        assert frs.coverage_masks(mixed_table).shape == (2, mixed_table.n_rows)


class TestConflicts:
    def test_overlapping_different_pi_conflict(self):
        frs = FeedbackRuleSet((_rule(0, 10, target=0), _rule(5, 15, target=1)))
        assert frs.find_conflicts(_schema()) == [(0, 1)]

    def test_overlapping_same_pi_no_conflict(self):
        frs = FeedbackRuleSet((_rule(0, 10, target=1), _rule(5, 15, target=1)))
        assert frs.is_conflict_free(_schema())

    def test_disjoint_different_pi_no_conflict(self):
        frs = FeedbackRuleSet((_rule(0, 1, target=0), _rule(5, 6, target=1)))
        assert frs.is_conflict_free(_schema())

    def test_empirical_conflict_detection(self, mixed_table):
        # Symbolically intersecting but empirically checked against a table.
        r1 = FeedbackRule.deterministic(clause(Predicate("age", "<", 30.0)), 0, 2)
        r2 = FeedbackRule.deterministic(clause(Predicate("age", "<", 25.0)), 1, 2)
        frs = FeedbackRuleSet((r1, r2))
        assert frs.find_conflicts(mixed_table.schema, table=mixed_table) == [(0, 1)]

    def test_probabilistic_pi_difference_is_conflict(self):
        frs = FeedbackRuleSet(
            (_rule(0, 10, pi=(0.5, 0.5)), _rule(5, 15, pi=(0.4, 0.6)))
        )
        assert not frs.is_conflict_free(_schema())


class TestResolution:
    def test_carve_makes_conflict_free(self):
        frs = FeedbackRuleSet((_rule(0, 10, target=0), _rule(5, 15, target=1)))
        resolved = frs.resolve_conflicts(_schema(), strategy="carve")
        assert resolved.is_conflict_free(_schema())

    def test_carve_coverage_disjoint(self, mixed_table):
        r1 = FeedbackRule.deterministic(clause(Predicate("age", "<", 50.0)), 0, 2)
        r2 = FeedbackRule.deterministic(clause(Predicate("age", "<", 60.0)), 1, 2)
        resolved = FeedbackRuleSet((r1, r2)).resolve_conflicts(mixed_table.schema)
        m1 = resolved[0].coverage_mask(mixed_table)
        m2 = resolved[1].coverage_mask(mixed_table)
        assert not np.any(m1 & m2)

    def test_mixture_adds_intersection_rule(self):
        frs = FeedbackRuleSet((_rule(0, 10, target=0), _rule(5, 15, target=1)))
        resolved = frs.resolve_conflicts(_schema(), strategy="mixture")
        assert len(resolved) == 3
        mix = resolved[2]
        np.testing.assert_allclose(mix.pi_array(), [0.5, 0.5])

    def test_mixture_weight(self):
        frs = FeedbackRuleSet((_rule(0, 10, target=0), _rule(5, 15, target=1)))
        resolved = frs.resolve_conflicts(
            _schema(), strategy="mixture", mixture_weight=0.8
        )
        np.testing.assert_allclose(resolved[2].pi_array(), [0.8, 0.2])

    def test_unknown_strategy_raises(self):
        frs = FeedbackRuleSet((_rule(0, 1),))
        with pytest.raises(ValueError, match="strategy"):
            frs.resolve_conflicts(_schema(), strategy="vote")

    def test_no_conflicts_unchanged(self):
        frs = FeedbackRuleSet((_rule(0, 1, target=0), _rule(5, 6, target=1)))
        resolved = frs.resolve_conflicts(_schema())
        assert len(resolved) == 2
        assert resolved[0].exceptions == ()


class TestDrawConflictFree:
    def _pool(self):
        # Rules on disjoint x-intervals with alternating labels: any subset
        # is conflict-free.
        return [
            _rule(i * 10, i * 10 + 5, target=i % 2) for i in range(8)
        ]

    def test_draws_requested_size(self):
        frs = draw_conflict_free(self._pool(), 4, _schema(), np.random.default_rng(0))
        assert frs is not None and len(frs) == 4

    def test_requesting_more_than_pool_returns_none(self):
        frs = draw_conflict_free(self._pool(), 99, _schema(), np.random.default_rng(0))
        assert frs is None

    def test_impossible_combination_returns_none(self):
        # Two rules covering everything with different labels: no pair works.
        pool = [_rule(target=0), _rule(target=1)]
        frs = draw_conflict_free(pool, 2, _schema(), np.random.default_rng(0))
        assert frs is None

    def test_greedy_fallback_finds_compatible_subset(self):
        # Many conflicting pairs but enough compatible rules exist.
        pool = [_rule(0, 5, target=0), _rule(0, 5, target=1)] + self._pool()
        frs = draw_conflict_free(pool, 5, _schema(), np.random.default_rng(1))
        assert frs is not None
        assert frs.is_conflict_free(_schema())

    def test_result_always_conflict_free(self):
        rng = np.random.default_rng(2)
        pool = self._pool() + [_rule(0, 100, target=1)]
        for _ in range(5):
            frs = draw_conflict_free(pool, 3, _schema(), rng)
            assert frs is None or frs.is_conflict_free(_schema())
