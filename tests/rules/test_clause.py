"""Tests for Clause conjunction semantics and symbolic satisfiability."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.rules import Clause, Predicate, clause, clause_satisfiable, clauses_intersect


class TestMask:
    def test_empty_clause_covers_all(self, mixed_table):
        assert clause().mask(mixed_table).all()

    def test_conjunction_is_and(self, mixed_table):
        p1 = Predicate("age", "<", 50.0)
        p2 = Predicate("marital", "==", "single")
        c = clause(p1, p2)
        np.testing.assert_array_equal(
            c.mask(mixed_table), p1.mask(mixed_table) & p2.mask(mixed_table)
        )

    def test_covers_row_agrees_with_mask(self, mixed_table):
        c = clause(
            Predicate("age", ">", 30.0),
            Predicate("color", "!=", "red"),
        )
        mask = c.mask(mixed_table)
        for i in range(0, mixed_table.n_rows, 13):
            assert c.covers_row(mixed_table, i) == mask[i]


class TestStructure:
    def test_attributes_deduplicated(self):
        c = clause(
            Predicate("a", ">", 1.0),
            Predicate("b", "<", 2.0),
            Predicate("a", "<", 5.0),
        )
        assert c.attributes == ("a", "b")

    def test_conjoin(self):
        c1 = clause(Predicate("a", ">", 1.0))
        c2 = clause(Predicate("b", "<", 2.0))
        assert len(c1.conjoin(c2)) == 2

    def test_without(self):
        p = Predicate("a", ">", 1.0)
        c = clause(p, Predicate("b", "<", 2.0))
        assert len(c.without(p)) == 1
        assert "a" not in c.without(p).attributes

    def test_predicates_on(self):
        c = clause(Predicate("a", ">", 1.0), Predicate("a", "<", 5.0))
        assert len(c.predicates_on("a")) == 2
        assert c.predicates_on("zzz") == ()

    def test_str_empty(self):
        assert str(clause()) == "TRUE"

    def test_str_joins_with_and(self):
        c = clause(Predicate("a", ">", 1.0), Predicate("b", "<", 2.0))
        assert " AND " in str(c)

    def test_list_coerced_to_tuple(self):
        c = Clause([Predicate("a", ">", 1.0)])
        assert isinstance(c.predicates, tuple)


class TestSatisfiability:
    def _schema(self):
        from repro.data import make_schema

        return make_schema(
            numeric=["x"], categorical={"c": ("a", "b", "z")}
        )

    def test_empty_clause_satisfiable(self):
        assert clause_satisfiable(clause(), self._schema())

    def test_open_interval_satisfiable(self):
        c = clause(Predicate("x", ">", 1.0), Predicate("x", "<", 2.0))
        assert clause_satisfiable(c, self._schema())

    def test_contradictory_interval(self):
        c = clause(Predicate("x", ">", 2.0), Predicate("x", "<", 1.0))
        assert not clause_satisfiable(c, self._schema())

    def test_touching_bounds_closed(self):
        c = clause(Predicate("x", ">=", 1.0), Predicate("x", "<=", 1.0))
        assert clause_satisfiable(c, self._schema())

    def test_touching_bounds_strict(self):
        c = clause(Predicate("x", ">", 1.0), Predicate("x", "<=", 1.0))
        assert not clause_satisfiable(c, self._schema())

    def test_eq_inside_interval(self):
        c = clause(Predicate("x", "==", 1.5), Predicate("x", ">", 1.0))
        assert clause_satisfiable(c, self._schema())

    def test_eq_outside_interval(self):
        c = clause(Predicate("x", "==", 0.5), Predicate("x", ">", 1.0))
        assert not clause_satisfiable(c, self._schema())

    def test_two_different_eqs(self):
        c = clause(Predicate("x", "==", 1.0), Predicate("x", "==", 2.0))
        assert not clause_satisfiable(c, self._schema())

    def test_categorical_contradiction(self):
        c = clause(Predicate("c", "==", "a"), Predicate("c", "==", "b"))
        assert not clause_satisfiable(c, self._schema())

    def test_categorical_eq_and_ne_same_value(self):
        c = clause(Predicate("c", "==", "a"), Predicate("c", "!=", "a"))
        assert not clause_satisfiable(c, self._schema())

    def test_all_categories_excluded(self):
        c = clause(
            Predicate("c", "!=", "a"),
            Predicate("c", "!=", "b"),
            Predicate("c", "!=", "z"),
        )
        assert not clause_satisfiable(c, self._schema())

    def test_clauses_intersect(self):
        s = self._schema()
        a = clause(Predicate("x", ">", 0.0))
        b = clause(Predicate("x", "<", 1.0))
        assert clauses_intersect(a, b, s)

    def test_clauses_disjoint(self):
        s = self._schema()
        a = clause(Predicate("x", ">", 1.0))
        b = clause(Predicate("x", "<", 0.0))
        assert not clauses_intersect(a, b, s)


@settings(max_examples=50, deadline=None)
@given(
    lo=st.floats(min_value=-10, max_value=10),
    hi=st.floats(min_value=-10, max_value=10),
    strict_lo=st.booleans(),
    strict_hi=st.booleans(),
)
def test_interval_satisfiability_property(lo, hi, strict_lo, strict_hi):
    """Symbolic interval feasibility matches the mathematical definition."""
    from repro.data import make_schema

    schema = make_schema(numeric=["x"])
    c = clause(
        Predicate("x", ">" if strict_lo else ">=", lo),
        Predicate("x", "<" if strict_hi else "<=", hi),
    )
    if lo < hi:
        expected = True
    elif lo == hi:
        expected = not (strict_lo or strict_hi)
    else:
        expected = False
    assert clause_satisfiable(c, schema) == expected


@settings(max_examples=40, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10**6))
def test_satisfiable_whenever_dataset_witness_exists(seed):
    """If some row satisfies a clause, the symbolic check must agree."""
    import numpy as np

    from repro.data import Table, make_schema

    schema = make_schema(numeric=["x"], categorical={"c": ("a", "b")})
    rng = np.random.default_rng(seed)
    t = Table(schema, {"x": rng.uniform(0, 1, 50), "c": rng.integers(0, 2, 50)})
    thr = float(rng.uniform(0, 1))
    c = clause(
        Predicate("x", rng.choice(["<", ">"]), thr),
        Predicate("c", "==", str(rng.choice(["a", "b"]))),
    )
    if c.mask(t).any():
        assert clause_satisfiable(c, schema)
