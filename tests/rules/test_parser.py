"""Tests for the rule text parser."""

import pytest

from repro.rules import RuleParseError, parse_clause, parse_predicate, parse_rule


@pytest.fixture
def schema(mixed_schema):
    return mixed_schema


LABELS = ("deny", "approve")


class TestParsePredicate:
    def test_numeric(self, schema):
        p = parse_predicate("age < 29", schema)
        assert (p.attribute, p.operator, p.value) == ("age", "<", 29.0)

    def test_single_equals_normalized(self, schema):
        assert parse_predicate("age = 30", schema).operator == "=="

    def test_categorical_quotes_stripped(self, schema):
        p = parse_predicate("marital != 'single'", schema)
        assert p.value == "single"

    def test_categorical_double_quotes(self, schema):
        assert parse_predicate('color == "red"', schema).value == "red"

    def test_unknown_attribute_raises(self, schema):
        with pytest.raises(RuleParseError, match="unknown attribute"):
            parse_predicate("salary > 10", schema)

    def test_bad_numeric_value_raises(self, schema):
        with pytest.raises(RuleParseError, match="numeric"):
            parse_predicate("age > old", schema)

    def test_invalid_category_raises(self, schema):
        with pytest.raises(ValueError):
            parse_predicate("marital == 'complicated'", schema)

    def test_garbage_raises(self, schema):
        with pytest.raises(RuleParseError, match="cannot parse"):
            parse_predicate("!!!", schema)


class TestParseClause:
    def test_multi_condition(self, schema):
        c = parse_clause("age < 29 AND marital = 'single' AND income > 150", schema)
        assert len(c) == 3

    def test_case_insensitive_and(self, schema):
        assert len(parse_clause("age < 29 and income > 100", schema)) == 2

    def test_empty_raises(self, schema):
        with pytest.raises(RuleParseError):
            parse_clause("   ", schema)


class TestParseRule:
    def test_class_name_target(self, schema):
        r = parse_rule("age < 29 => approve", schema, LABELS)
        assert r.target_class == 1
        assert r.is_deterministic

    def test_class_code_target(self, schema):
        r = parse_rule("age < 29 => 0", schema, LABELS)
        assert r.target_class == 0

    def test_distribution_target(self, schema):
        r = parse_rule("age < 29 => [0.2, 0.8]", schema, LABELS)
        assert not r.is_deterministic
        assert r.pi == (0.2, 0.8)

    def test_missing_arrow_raises(self, schema):
        with pytest.raises(RuleParseError, match="=>"):
            parse_rule("age < 29", schema, LABELS)

    def test_bad_target_raises(self, schema):
        with pytest.raises(RuleParseError, match="neither a class name"):
            parse_rule("age < 29 => maybe", schema, LABELS)

    def test_out_of_range_code_raises(self, schema):
        with pytest.raises(RuleParseError, match="out of range"):
            parse_rule("age < 29 => 7", schema, LABELS)

    def test_wrong_distribution_length_raises(self, schema):
        with pytest.raises(RuleParseError, match="entries"):
            parse_rule("age < 29 => [0.2, 0.3, 0.5]", schema, LABELS)

    def test_unterminated_distribution_raises(self, schema):
        with pytest.raises(RuleParseError, match="unterminated"):
            parse_rule("age < 29 => [0.2, 0.8", schema, LABELS)

    def test_bad_distribution_values_raise(self, schema):
        with pytest.raises(RuleParseError, match="bad distribution"):
            parse_rule("age < 29 => [a, b]", schema, LABELS)

    def test_name_attached(self, schema):
        r = parse_rule("age < 29 => approve", schema, LABELS, name="policy-7")
        assert r.name == "policy-7"

    def test_roundtrip_through_mask(self, schema, mixed_table):
        r = parse_rule("age < 40 AND color != 'red' => deny", schema, LABELS)
        expected = (mixed_table.column("age") < 40.0) & (
            mixed_table.column("color") != 0
        )
        import numpy as np

        np.testing.assert_array_equal(r.coverage_mask(mixed_table), expected)
