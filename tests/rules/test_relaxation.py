"""Tests for rule relaxation (Algorithm 2)."""

import numpy as np
import pytest

from repro.rules import FeedbackRule, Predicate, clause, relax_rule


class TestRelaxRule:
    def test_no_relaxation_when_coverage_sufficient(self, mixed_table):
        r = FeedbackRule.deterministic(clause(Predicate("age", "<", 60.0)), 1, 2)
        res = relax_rule(r, mixed_table, min_coverage=5)
        assert not res.was_relaxed
        assert res.relaxed_clause == r.clause

    def test_relaxes_zero_support_rule(self, mixed_table):
        # age < 60 has support; income > 1000 has none.
        r = FeedbackRule.deterministic(
            clause(
                Predicate("age", "<", 60.0),
                Predicate("income", ">", 1000.0),
            ),
            1,
            2,
        )
        res = relax_rule(r, mixed_table, min_coverage=6)
        assert res.was_relaxed
        assert res.coverage >= 6
        # The impossible condition is the one that must go.
        assert any(p.attribute == "income" for p in res.removed)

    def test_removes_minimum_conditions(self, mixed_table):
        """Relaxation removes the single worst condition, not more."""
        r = FeedbackRule.deterministic(
            clause(
                Predicate("age", "<", 60.0),
                Predicate("income", ">", 1000.0),  # zero support
            ),
            1,
            2,
        )
        res = relax_rule(r, mixed_table, min_coverage=6)
        assert len(res.removed) == 1

    def test_greedy_picks_max_coverage_deletion(self, mixed_table):
        # Two conditions: one rare, one common; deleting the rare one keeps
        # more coverage only if the common one's coverage is larger.
        rare = Predicate("age", "<", 20.0)
        common = Predicate("age", "<", 75.0)
        r = FeedbackRule.deterministic(
            clause(rare, Predicate("income", ">", 500.0)), 1, 2
        )
        res = relax_rule(r, mixed_table, min_coverage=3)
        # income > 500 has zero support: its removal leaves cov(age<20) > 0,
        # whereas removing the age condition leaves zero coverage.
        assert res.removed[0].attribute == "income"

    def test_empties_clause_for_fully_impossible_rule(self, mixed_table):
        r = FeedbackRule.deterministic(
            clause(Predicate("income", ">", 10_000.0)), 1, 2
        )
        res = relax_rule(r, mixed_table, min_coverage=mixed_table.n_rows)
        assert len(res.relaxed_clause) == 0
        assert res.coverage == mixed_table.n_rows

    def test_exceptions_respected(self, mixed_table):
        r = FeedbackRule.deterministic(
            clause(Predicate("income", ">", 10_000.0)),
            1,
            2,
            exceptions=(clause(Predicate("marital", "==", "single")),),
        )
        res = relax_rule(r, mixed_table, min_coverage=5)
        mask = res.relaxed_mask(mixed_table)
        assert not np.any(mask & (mixed_table.column("marital") == 0))

    def test_min_coverage_validation(self, mixed_table):
        r = FeedbackRule.deterministic(clause(), 1, 2)
        with pytest.raises(ValueError, match="min_coverage"):
            relax_rule(r, mixed_table, min_coverage=0)

    def test_relaxed_mask_superset_of_original(self, mixed_table):
        r = FeedbackRule.deterministic(
            clause(
                Predicate("age", "<", 25.0),
                Predicate("marital", "==", "single"),
                Predicate("color", "==", "red"),
            ),
            1,
            2,
        )
        res = relax_rule(r, mixed_table, min_coverage=20)
        original = r.coverage_mask(mixed_table)
        relaxed = res.relaxed_mask(mixed_table)
        assert np.all(relaxed | ~original)  # original ⊆ relaxed
