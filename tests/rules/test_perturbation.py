"""Tests for feedback-rule generation by perturbation."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.rules import FeedbackRule, Predicate, clause, generate_feedback_pool
from repro.rules.perturbation import _perturb_once


@pytest.fixture
def base_rules(mixed_dataset):
    return [
        FeedbackRule.deterministic(
            clause(Predicate("age", "<", 40.0), Predicate("marital", "==", "single")),
            1,
            2,
            name="base0",
        ),
        FeedbackRule.deterministic(
            clause(Predicate("income", ">", 100.0)), 0, 2, name="base1"
        ),
    ]


class TestPerturbOnce:
    def test_produces_valid_rule_or_none(self, mixed_dataset, base_rules):
        rng = np.random.default_rng(0)
        for _ in range(50):
            out = _perturb_once(base_rules[0], mixed_dataset, base_rules, rng)
            if out is not None:
                assert isinstance(out, FeedbackRule)
                assert out.pi == base_rules[0].pi

    def test_empty_clause_returns_none(self, mixed_dataset, base_rules):
        rng = np.random.default_rng(0)
        empty = FeedbackRule.deterministic(clause(), 1, 2)
        assert _perturb_once(empty, mixed_dataset, base_rules, rng) is None

    def test_add_condition_uses_other_rules(self, mixed_dataset, base_rules):
        rng = np.random.default_rng(3)
        seen_added = False
        for _ in range(100):
            out = _perturb_once(base_rules[1], mixed_dataset, base_rules, rng)
            if out is not None and len(out.clause) > len(base_rules[1].clause):
                seen_added = True
                added = out.clause.predicates[-1]
                donor_attrs = {p.attribute for p in base_rules[0].clause.predicates}
                assert added.attribute in donor_attrs
        assert seen_added


class TestGeneratePool:
    def test_coverage_constraint_enforced(self, mixed_dataset, base_rules):
        pool = generate_feedback_pool(
            mixed_dataset, base_rules, n_rules=15, random_state=0
        )
        n = mixed_dataset.n
        for r in pool:
            cov = r.coverage_count(mixed_dataset.X)
            assert 0.05 * n <= cov < 0.25 * n

    def test_no_duplicate_clauses(self, mixed_dataset, base_rules):
        pool = generate_feedback_pool(
            mixed_dataset, base_rules, n_rules=15, random_state=0
        )
        clauses = [str(r.clause) for r in pool]
        assert len(set(clauses)) == len(clauses)

    def test_rules_named_sequentially(self, mixed_dataset, base_rules):
        pool = generate_feedback_pool(
            mixed_dataset, base_rules, n_rules=5, random_state=0
        )
        assert [r.name for r in pool] == [f"fb#{i}" for i in range(len(pool))]

    def test_reproducible(self, mixed_dataset, base_rules):
        a = generate_feedback_pool(mixed_dataset, base_rules, n_rules=10, random_state=5)
        b = generate_feedback_pool(mixed_dataset, base_rules, n_rules=10, random_state=5)
        assert [str(r.clause) for r in a] == [str(r.clause) for r in b]

    def test_empty_base_raises(self, mixed_dataset):
        with pytest.raises(ValueError, match="at least one base rule"):
            generate_feedback_pool(mixed_dataset, [], n_rules=5)

    def test_invalid_coverage_range_raises(self, mixed_dataset, base_rules):
        with pytest.raises(ValueError, match="coverage_range"):
            generate_feedback_pool(
                mixed_dataset, base_rules, coverage_range=(0.5, 0.2)
            )

    def test_attempt_cap_limits_output(self, mixed_dataset, base_rules):
        pool = generate_feedback_pool(
            mixed_dataset, base_rules, n_rules=1000, max_attempts=50, random_state=0
        )
        assert len(pool) <= 50


@settings(max_examples=15, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10**6))
def test_pool_rules_satisfiable_property(seed):
    """Every generated rule must be symbolically satisfiable."""
    import numpy as np

    from repro.data import Dataset, Table, make_schema
    from repro.rules.clause import clause_satisfiable

    schema = make_schema(numeric=["x"], categorical={"c": ("a", "b", "z")})
    rng = np.random.default_rng(seed)
    n = 150
    t = Table(schema, {"x": rng.uniform(0, 10, n), "c": rng.integers(0, 3, n)})
    ds = Dataset(t, rng.integers(0, 2, n), ("n", "p"))
    base = [
        FeedbackRule.deterministic(
            clause(Predicate("x", "<", 5.0), Predicate("c", "==", "a")), 1, 2
        )
    ]
    pool = generate_feedback_pool(ds, base, n_rules=8, random_state=seed, max_attempts=400)
    for r in pool:
        assert clause_satisfiable(r.clause, schema)
