"""Tests for FeedbackRule."""

import numpy as np
import pytest

from repro.rules import FeedbackRule, Predicate, clause


class TestConstruction:
    def test_deterministic_constructor(self):
        r = FeedbackRule.deterministic(clause(Predicate("age", "<", 30.0)), 1, 2)
        assert r.pi == (0.0, 1.0)
        assert r.is_deterministic
        assert r.target_class == 1

    def test_probabilistic(self):
        r = FeedbackRule(clause(Predicate("age", "<", 30.0)), (0.3, 0.7))
        assert not r.is_deterministic
        assert r.target_class == 1

    def test_pi_must_sum_to_one(self):
        with pytest.raises(ValueError, match="sum to 1"):
            FeedbackRule(clause(), (0.5, 0.6))

    def test_pi_no_negative(self):
        with pytest.raises(ValueError, match="negative"):
            FeedbackRule(clause(), (-0.1, 1.1))

    def test_pi_needs_two_classes(self):
        with pytest.raises(ValueError, match=">= 2"):
            FeedbackRule(clause(), (1.0,))

    def test_target_out_of_range_raises(self):
        with pytest.raises(ValueError, match="out of range"):
            FeedbackRule.deterministic(clause(), 5, 2)

    def test_pi_array_readonly(self):
        r = FeedbackRule.deterministic(clause(), 0, 2)
        with pytest.raises(ValueError):
            r.pi_array()[0] = 0.5


class TestCoverage:
    def test_coverage_mask(self, mixed_table):
        r = FeedbackRule.deterministic(
            clause(Predicate("age", "<", 40.0)), 1, 2
        )
        np.testing.assert_array_equal(
            r.coverage_mask(mixed_table), mixed_table.column("age") < 40.0
        )

    def test_exception_carves_out(self, mixed_table):
        r = FeedbackRule.deterministic(
            clause(Predicate("age", "<", 40.0)),
            1,
            2,
            exceptions=(clause(Predicate("marital", "==", "single")),),
        )
        expected = (mixed_table.column("age") < 40.0) & (
            mixed_table.column("marital") != 0
        )
        np.testing.assert_array_equal(r.coverage_mask(mixed_table), expected)

    def test_coverage_count(self, mixed_table):
        r = FeedbackRule.deterministic(clause(Predicate("age", "<", 40.0)), 1, 2)
        assert r.coverage_count(mixed_table) == int(
            (mixed_table.column("age") < 40.0).sum()
        )


class TestLabels:
    def test_deterministic_sampling_constant(self):
        r = FeedbackRule.deterministic(clause(), 1, 3)
        labels = r.sample_labels(50, np.random.default_rng(0))
        assert (labels == 1).all()

    def test_probabilistic_sampling_distribution(self):
        r = FeedbackRule(clause(), (0.2, 0.8))
        labels = r.sample_labels(5000, np.random.default_rng(0))
        assert abs(labels.mean() - 0.8) < 0.03

    def test_conflicts_with(self):
        a = FeedbackRule.deterministic(clause(), 0, 2)
        b = FeedbackRule.deterministic(clause(), 1, 2)
        assert a.conflicts_with(b)
        assert not a.conflicts_with(a)


class TestModifiers:
    def test_with_clause(self):
        r = FeedbackRule.deterministic(clause(Predicate("age", "<", 30.0)), 1, 2)
        r2 = r.with_clause(clause(Predicate("age", ">", 50.0)))
        assert r2.pi == r.pi
        assert str(r2.clause) == "age > 50"

    def test_with_exception_appends(self):
        r = FeedbackRule.deterministic(clause(), 1, 2)
        r2 = r.with_exception(clause(Predicate("age", "<", 20.0)))
        assert len(r2.exceptions) == 1

    def test_str_deterministic(self):
        r = FeedbackRule.deterministic(clause(Predicate("age", "<", 30.0)), 1, 2)
        assert "IF age < 30 THEN class=1" == str(r)

    def test_str_probabilistic_shows_pi(self):
        r = FeedbackRule(clause(Predicate("age", "<", 30.0)), (0.25, 0.75))
        assert "pi=" in str(r)

    def test_str_with_exceptions(self):
        r = FeedbackRule.deterministic(
            clause(Predicate("age", "<", 30.0)),
            1,
            2,
            exceptions=(clause(Predicate("age", "<", 20.0)),),
        )
        assert "EXCEPT" in str(r)
