"""Tests for the greedy rule learner (BRCG substitute)."""

import numpy as np
import pytest

from repro.rules import GreedyRuleLearner, candidate_predicates, learn_model_explanation


class TestCandidatePredicates:
    def test_numeric_thresholds_paired(self, mixed_table):
        cands = candidate_predicates(mixed_table, n_thresholds=4)
        age_ops = {p.operator for p in cands if p.attribute == "age"}
        assert age_ops == {"<=", ">"}

    def test_categorical_equalities(self, mixed_table):
        cands = candidate_predicates(mixed_table)
        marital = [p for p in cands if p.attribute == "marital"]
        assert {p.value for p in marital} == {"single", "married", "divorced"}
        assert all(p.operator == "==" for p in marital)

    def test_all_masks_evaluable(self, mixed_table):
        for p in candidate_predicates(mixed_table, n_thresholds=3):
            assert p.mask(mixed_table).dtype == bool


class TestGreedyRuleLearner:
    def test_recovers_planted_threshold_rule(self, mixed_table):
        y = (mixed_table.column("age") < 40.0).astype(np.int64)
        rules = GreedyRuleLearner().learn(mixed_table, y, 2, classes=[1])
        assert rules, "no rule learned"
        top = rules[0]
        assert top.target_class == 1
        # The rule's coverage must be mostly the positive region.
        mask = top.coverage_mask(mixed_table)
        precision = y[mask].mean()
        assert precision > 0.9

    def test_recovers_categorical_rule(self, mixed_table):
        y = (mixed_table.column("marital") == 1).astype(np.int64)
        rules = GreedyRuleLearner().learn(mixed_table, y, 2, classes=[1])
        assert rules
        preds = rules[0].clause.predicates
        assert any(p.attribute == "marital" and p.value == "married" for p in preds)

    def test_rules_for_all_classes_by_default(self, mixed_table):
        rng = np.random.default_rng(0)
        y = rng.integers(0, 2, mixed_table.n_rows)
        y[mixed_table.column("age") < 30.0] = 1
        rules = GreedyRuleLearner().learn(mixed_table, y, 2)
        assert {r.target_class for r in rules} <= {0, 1}

    def test_max_conditions_respected(self, mixed_table):
        y = (
            (mixed_table.column("age") < 40.0)
            & (mixed_table.column("income") > 100.0)
        ).astype(np.int64)
        learner = GreedyRuleLearner(max_conditions=2)
        for r in learner.learn(mixed_table, y, 2):
            assert len(r.clause) <= 2

    def test_max_rules_respected(self, mixed_table):
        rng = np.random.default_rng(1)
        y = rng.integers(0, 2, mixed_table.n_rows)
        learner = GreedyRuleLearner(max_rules_per_class=2)
        rules = learner.learn(mixed_table, y, 2)
        per_class = {}
        for r in rules:
            per_class[r.target_class] = per_class.get(r.target_class, 0) + 1
        assert all(v <= 2 for v in per_class.values())

    def test_label_length_mismatch_raises(self, mixed_table):
        with pytest.raises(ValueError, match="length"):
            GreedyRuleLearner().learn(mixed_table, np.zeros(3, dtype=int), 2)

    def test_learn_model_explanation_wrapper(self, mixed_dataset):
        preds = mixed_dataset.y  # pretend model predictions
        rules = learn_model_explanation(mixed_dataset, preds)
        assert rules
        assert all(r.n_classes == 2 for r in rules)

    def test_learned_rules_have_names(self, mixed_table):
        y = (mixed_table.column("age") < 40.0).astype(np.int64)
        rules = GreedyRuleLearner().learn(mixed_table, y, 2)
        assert all(r.name.startswith("learned[") for r in rules)
