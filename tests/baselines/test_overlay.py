"""Tests for the Overlay baseline."""

import numpy as np
import pytest

from repro.baselines import HARD, SOFT, Overlay
from repro.models import LogisticRegression, make_algorithm
from repro.rules import FeedbackRule, FeedbackRuleSet, Predicate, clause


@pytest.fixture
def model(mixed_dataset):
    return make_algorithm(lambda: LogisticRegression())(mixed_dataset)


@pytest.fixture
def feedback(mixed_dataset):
    """Feedback contradicting the data: young high-earners -> deny."""
    return FeedbackRuleSet(
        (
            FeedbackRule.deterministic(
                clause(
                    Predicate("age", "<", 35.0),
                    Predicate("income", ">", 120.0),
                ),
                0,
                2,
            ),
        )
    )


class TestHard:
    def test_feedback_rule_enforced_in_coverage(self, mixed_dataset, model, feedback):
        overlay = Overlay(model, feedback, mixed_dataset.X, mode=HARD)
        pred = overlay.predict(mixed_dataset.X)
        cov = feedback[0].coverage_mask(mixed_dataset.X)
        assert (pred[cov] == 0).all()

    def test_model_rules_applied_outside_feedback(self, mixed_dataset, model, feedback):
        overlay = Overlay(model, feedback, mixed_dataset.X, mode=HARD)
        pred = overlay.predict(mixed_dataset.X)
        # Hard mode is a rule surrogate: predictions may deviate from the
        # model outside feedback coverage (that is its failure mode).
        assert pred.shape == (mixed_dataset.n,)

    def test_feedback_has_priority_over_model_rules(self, mixed_dataset, model):
        # Feedback covering everything: every prediction must be class 1.
        frs = FeedbackRuleSet(
            (FeedbackRule.deterministic(clause(Predicate("age", ">=", 0.0)), 1, 2),)
        )
        overlay = Overlay(model, frs, mixed_dataset.X, mode=HARD)
        assert (overlay.predict(mixed_dataset.X) == 1).all()


class TestSoft:
    def test_outside_coverage_matches_model(self, mixed_dataset, model, feedback):
        overlay = Overlay(model, feedback, mixed_dataset.X, mode=SOFT)
        pred = overlay.predict(mixed_dataset.X)
        cov = feedback[0].coverage_mask(mixed_dataset.X)
        np.testing.assert_array_equal(
            pred[~cov], model.predict(mixed_dataset.X)[~cov]
        )

    def test_coverage_predictions_use_transformed_inputs(
        self, mixed_dataset, model, feedback
    ):
        overlay = Overlay(model, feedback, mixed_dataset.X, mode=SOFT)
        pred_soft = overlay.predict(mixed_dataset.X)
        assert pred_soft.shape == (mixed_dataset.n,)

    def test_no_covered_rows_is_pure_model(self, mixed_dataset, model):
        frs = FeedbackRuleSet(
            (FeedbackRule.deterministic(clause(Predicate("age", ">", 999.0)), 0, 2),)
        )
        overlay = Overlay(model, frs, mixed_dataset.X, mode=SOFT)
        np.testing.assert_array_equal(
            overlay.predict(mixed_dataset.X), model.predict(mixed_dataset.X)
        )


class TestValidation:
    def test_unknown_mode_raises(self, mixed_dataset, model, feedback):
        with pytest.raises(ValueError, match="mode"):
            Overlay(model, feedback, mixed_dataset.X, mode="medium")

    def test_unfitted_model_raises(self, mixed_dataset, feedback):
        from repro.models import TableModel

        with pytest.raises(ValueError, match="fitted"):
            Overlay(
                TableModel(LogisticRegression()), feedback, mixed_dataset.X
            )

    def test_model_rules_learned(self, mixed_dataset, model, feedback):
        overlay = Overlay(model, feedback, mixed_dataset.X, mode=SOFT)
        assert overlay.model_rules, "FKRS must contain model-explanation rules"
